//! Columnar replay-log storage — the v4 container's event representation.
//!
//! Container v3 stores each [`ReplayEvent`] as an owned `binser` record, so
//! every load materializes a tree per event. v4 instead stores the log as
//! parallel columns — one array per field — which decode with a handful of
//! bulk varint scans and are *borrowed* by the replayer, the slicer's trace
//! builds, and the relogger via [`EventRef`] without ever materializing
//! `Vec<ReplayEvent>` (the iReplayer "read the recorded bytes in place"
//! principle, PAPERS.md).
//!
//! Column layout, per event `i`:
//!
//! | column      | type  | meaning                                          |
//! |-------------|-------|--------------------------------------------------|
//! | `kinds[i]`  | `u8`  | 0 = `Run`, 1 = `Skip`, 2 = `Inject`              |
//! | `tids[i]`   | `u32` | scheduled thread (`0` for `Inject`)              |
//! | `args[i]`   | `u64` | `Run`: steps · `Skip`: `to_pc` · `Inject`: 0     |
//! | `pair_ends[i]` | `u32` | end offset of this event's pairs             |
//!
//! and two shared pair columns indexed by `pair_ends[i-1]..pair_ends[i]`:
//! `pair_keys` (`Skip`: register number, `Inject`: address) and `pair_vals`
//! (the injected value). The wire encoding is varint-packed (kinds raw,
//! ends delta-coded, values zigzagged), so an events frame is both smaller
//! than the v3 record stream *and* cheaper to decode.

use pinzip::varint;
use serde::{Deserialize, Serialize};

use minivm::{Addr, Pc, Reg, Tid};

use crate::pinball::ReplayEvent;

/// Column code for [`ReplayEvent::Run`].
pub const KIND_RUN: u8 = 0;
/// Column code for [`ReplayEvent::Skip`].
pub const KIND_SKIP: u8 = 1;
/// Column code for [`ReplayEvent::Inject`].
pub const KIND_INJECT: u8 = 2;

/// A replay log stored as parallel columns (see module docs for layout).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventColumns {
    /// Event kind codes ([`KIND_RUN`] / [`KIND_SKIP`] / [`KIND_INJECT`]).
    pub kinds: Vec<u8>,
    /// Scheduled thread per event (0 for `Inject`).
    pub tids: Vec<Tid>,
    /// `Run` steps or `Skip` target pc, per event.
    pub args: Vec<u64>,
    /// Exclusive end offset of each event's pair range.
    pub pair_ends: Vec<u32>,
    /// Pair keys: register number (`Skip`) or address (`Inject`).
    pub pair_keys: Vec<u64>,
    /// Pair values.
    pub pair_vals: Vec<i64>,
}

impl EventColumns {
    /// Creates an empty column set.
    pub fn new() -> EventColumns {
        EventColumns::default()
    }

    /// Number of events held.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Builds columns from an owned event slice.
    pub fn from_events(events: &[ReplayEvent]) -> EventColumns {
        let mut c = EventColumns::new();
        c.kinds.reserve(events.len());
        c.tids.reserve(events.len());
        c.args.reserve(events.len());
        c.pair_ends.reserve(events.len());
        for e in events {
            c.push_event(e);
        }
        c
    }

    /// Appends one event.
    pub fn push_event(&mut self, event: &ReplayEvent) {
        match event {
            ReplayEvent::Run { tid, steps } => {
                self.kinds.push(KIND_RUN);
                self.tids.push(*tid);
                self.args.push(*steps);
            }
            ReplayEvent::Skip { tid, to_pc, regs } => {
                self.kinds.push(KIND_SKIP);
                self.tids.push(*tid);
                self.args.push(u64::from(*to_pc));
                for (r, v) in regs {
                    self.pair_keys.push(u64::from(r.0));
                    self.pair_vals.push(*v);
                }
            }
            ReplayEvent::Inject { mems } => {
                self.kinds.push(KIND_INJECT);
                self.tids.push(0);
                self.args.push(0);
                for (a, v) in mems {
                    self.pair_keys.push(*a);
                    self.pair_vals.push(*v);
                }
            }
        }
        self.pair_ends.push(self.pair_keys.len() as u32);
    }

    /// Borrows event `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()` — same contract as slice indexing.
    pub fn get(&self, i: usize) -> EventRef<'_> {
        let end = self.pair_ends[i] as usize;
        let start = if i == 0 {
            0
        } else {
            self.pair_ends[i - 1] as usize
        };
        let pairs = PairsRef::Split {
            keys: &self.pair_keys[start..end],
            vals: &self.pair_vals[start..end],
        };
        match self.kinds[i] {
            KIND_RUN => EventRef::Run {
                tid: self.tids[i],
                steps: self.args[i],
            },
            KIND_SKIP => EventRef::Skip {
                tid: self.tids[i],
                to_pc: self.args[i] as Pc,
                regs: pairs,
            },
            _ => EventRef::Inject { mems: pairs },
        }
    }

    /// Iterates all events as borrows.
    pub fn iter(&self) -> impl Iterator<Item = EventRef<'_>> {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Materializes the owned event vector (the v3-compatible view).
    pub fn to_events(&self) -> Vec<ReplayEvent> {
        (0..self.len()).map(|i| self.get(i).to_owned()).collect()
    }

    /// Number of threads the schedule log mentions (highest scheduled tid
    /// plus one; 1 for an empty or inject-only log).
    pub fn thread_count(&self) -> usize {
        self.tids.iter().max().map_or(1, |t| *t as usize + 1)
    }

    /// Total instructions the log retires (sum of `Run` steps).
    pub fn instructions(&self) -> u64 {
        self.kinds
            .iter()
            .zip(&self.args)
            .filter(|(k, _)| **k == KIND_RUN)
            .map(|(_, a)| *a)
            .sum()
    }

    /// Appends all of `other`'s events, re-basing its pair offsets.
    pub fn extend_from(&mut self, other: &EventColumns) {
        let base = self.pair_keys.len() as u32;
        self.kinds.extend_from_slice(&other.kinds);
        self.tids.extend_from_slice(&other.tids);
        self.args.extend_from_slice(&other.args);
        self.pair_ends
            .extend(other.pair_ends.iter().map(|e| base + e));
        self.pair_keys.extend_from_slice(&other.pair_keys);
        self.pair_vals.extend_from_slice(&other.pair_vals);
    }

    /// Varint-packs the columns into `out` (the v4 `Columnar` frame payload).
    pub fn encode(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, self.len() as u64);
        varint::write_u64(out, self.pair_keys.len() as u64);
        out.extend_from_slice(&self.kinds);
        for t in &self.tids {
            varint::write_u64(out, u64::from(*t));
        }
        for a in &self.args {
            varint::write_u64(out, *a);
        }
        let mut prev = 0u32;
        for e in &self.pair_ends {
            varint::write_u64(out, u64::from(e - prev));
            prev = *e;
        }
        for k in &self.pair_keys {
            varint::write_u64(out, *k);
        }
        for v in &self.pair_vals {
            varint::write_i64(out, *v);
        }
    }

    /// Encodes into a fresh buffer.
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len() * 3 + self.pair_keys.len() * 6 + 10);
        self.encode(&mut out);
        out
    }

    /// Decodes a varint-packed column payload, validating every field:
    /// unknown kind codes, non-monotonic or overflowing offsets, truncated
    /// varints, and trailing garbage all return `Err` — never panic.
    pub fn decode(buf: &[u8]) -> Result<EventColumns, String> {
        use pinzip::column::{
            read_byte_column, read_i64_column, read_prefix_sum_column, read_u32_column,
            read_u64_column, ColumnError,
        };

        let mut pos = 0usize;
        let n = varint::read_u64(buf, &mut pos).ok_or("truncated event count")? as usize;
        let npairs = varint::read_u64(buf, &mut pos).ok_or("truncated pair count")? as usize;
        // Each event costs at least 1 kind byte; each pair at least 2 varint
        // bytes. Reject counts the buffer cannot possibly hold before
        // allocating.
        if n > buf.len().saturating_sub(pos) {
            return Err(format!("event count {n} exceeds payload size"));
        }
        if npairs > buf.len() {
            return Err(format!("pair count {npairs} exceeds payload size"));
        }
        // Bulk column decodes — one pinzip call per column keeps the hot
        // varint loops inside the codec crate.
        let kinds = read_byte_column(buf, &mut pos, n, KIND_INJECT).map_err(|e| match e {
            ColumnError::Truncated { .. } => "truncated kind column".to_string(),
            ColumnError::Range { index, value } => {
                format!("event {index}: unknown kind code {value}")
            }
        })?;
        let tids = read_u32_column(buf, &mut pos, n).map_err(|e| match e {
            ColumnError::Truncated { index } => format!("event {index}: truncated tid column"),
            ColumnError::Range { index, value } => {
                format!("event {index}: tid {value} overflows u32")
            }
        })?;
        let args = read_u64_column(buf, &mut pos, n)
            .map_err(|e| format!("event {}: truncated arg column", truncated_index(e)))?;
        let pair_ends =
            read_prefix_sum_column(buf, &mut pos, n, npairs as u64).map_err(|e| match e {
                ColumnError::Truncated { index } => {
                    format!("event {index}: truncated pair-end column")
                }
                ColumnError::Range { index, .. } => {
                    format!("event {index}: pair offset exceeds pair count {npairs}")
                }
            })?;
        let end = pair_ends.last().copied().unwrap_or(0);
        if u64::from(end) != npairs as u64 {
            return Err(format!(
                "pair columns hold {npairs} entries but events claim {end}"
            ));
        }
        let pair_keys = read_u64_column(buf, &mut pos, npairs)
            .map_err(|e| format!("pair {}: truncated key column", truncated_index(e)))?;
        let pair_vals = read_i64_column(buf, &mut pos, npairs)
            .map_err(|e| format!("pair {}: truncated value column", truncated_index(e)))?;
        if pos != buf.len() {
            return Err(format!("{} trailing bytes after columns", buf.len() - pos));
        }

        // Cross-column semantic checks, one pass: runs carry no pairs,
        // skip targets are pcs, skip pair keys are register numbers.
        let mut prev = 0u32;
        for i in 0..n {
            match kinds[i] {
                KIND_RUN if pair_ends[i] != prev => {
                    let d = pair_ends[i] - prev;
                    return Err(format!("event {i}: run event carries {d} pairs"));
                }
                KIND_SKIP => {
                    if u32::try_from(args[i]).is_err() {
                        return Err(format!(
                            "event {i}: skip target pc {} overflows u32",
                            args[i]
                        ));
                    }
                    for (j, k) in pair_keys[prev as usize..pair_ends[i] as usize]
                        .iter()
                        .enumerate()
                    {
                        if u8::try_from(*k).is_err() {
                            return Err(format!("event {i} pair {j}: register {k} overflows u8"));
                        }
                    }
                }
                _ => {}
            }
            prev = pair_ends[i];
        }

        Ok(EventColumns {
            kinds,
            tids,
            args,
            pair_ends,
            pair_keys,
            pair_vals,
        })
    }
}

/// The element index out of a [`pinzip::ColumnError`] whose only
/// possible variant here is `Truncated`.
fn truncated_index(e: pinzip::ColumnError) -> usize {
    match e {
        pinzip::ColumnError::Truncated { index } | pinzip::ColumnError::Range { index, .. } => {
            index
        }
    }
}

/// Encoded byte size of each column of a columnar events payload — the
/// per-column rows of the CLI's `info container` report for v4 files.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnSizes {
    /// Kind column (1 raw byte per event).
    pub kinds: usize,
    /// Thread-id column (varint).
    pub tids: usize,
    /// Steps / target-pc column (varint).
    pub args: usize,
    /// Pair-end offset column (delta varint).
    pub pair_ends: usize,
    /// Pair key column (varint).
    pub pair_keys: usize,
    /// Pair value column (zigzag varint).
    pub pair_vals: usize,
}

impl ColumnSizes {
    /// Sum over all columns (excludes the two leading count varints).
    pub fn total(&self) -> usize {
        self.kinds + self.tids + self.args + self.pair_ends + self.pair_keys + self.pair_vals
    }

    /// Accumulates another frame's column sizes into this one.
    pub fn add(&mut self, other: &ColumnSizes) {
        self.kinds += other.kinds;
        self.tids += other.tids;
        self.args += other.args;
        self.pair_ends += other.pair_ends;
        self.pair_keys += other.pair_keys;
        self.pair_vals += other.pair_vals;
    }
}

/// Encoded length of `v` as a varint.
fn varint_len(v: u64) -> usize {
    let bits = 64 - v.leading_zeros().min(63) as usize;
    bits.max(1).div_ceil(7)
}

impl EventColumns {
    /// Computes the encoded byte size of each column, as
    /// [`EventColumns::encode`] would write them.
    pub fn column_sizes(&self) -> ColumnSizes {
        let mut prev = 0u32;
        let mut pair_ends = 0usize;
        for e in &self.pair_ends {
            pair_ends += varint_len(u64::from(e - prev));
            prev = *e;
        }
        ColumnSizes {
            kinds: self.kinds.len(),
            tids: self.tids.iter().map(|t| varint_len(u64::from(*t))).sum(),
            args: self.args.iter().map(|a| varint_len(*a)).sum(),
            pair_ends,
            pair_keys: self.pair_keys.iter().map(|k| varint_len(*k)).sum(),
            pair_vals: self
                .pair_vals
                .iter()
                .map(|v| varint_len(pinzip::varint::zigzag(*v)))
                .sum(),
        }
    }
}

/// A borrowed view of one replay event — field-for-field the same data as
/// [`ReplayEvent`], but the pair lists alias the backing store instead of
/// being owned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventRef<'a> {
    /// Thread `tid` retires `steps` instructions.
    Run {
        /// Scheduled thread.
        tid: Tid,
        /// Instructions to retire.
        steps: u64,
    },
    /// Thread `tid` skips an excluded region to `to_pc`, restoring `regs`.
    Skip {
        /// Thread whose region is skipped.
        tid: Tid,
        /// First pc after the excluded region.
        to_pc: Pc,
        /// `(register, value)` side effects.
        regs: PairsRef<'a>,
    },
    /// Memory side effects of excluded code, injected in place.
    Inject {
        /// `(address, value)` writes, in recorded order.
        mems: PairsRef<'a>,
    },
}

impl EventRef<'_> {
    /// Borrows an owned [`ReplayEvent`] as an [`EventRef`] (free — no copy).
    pub fn of(event: &ReplayEvent) -> EventRef<'_> {
        match event {
            ReplayEvent::Run { tid, steps } => EventRef::Run {
                tid: *tid,
                steps: *steps,
            },
            ReplayEvent::Skip { tid, to_pc, regs } => EventRef::Skip {
                tid: *tid,
                to_pc: *to_pc,
                regs: PairsRef::RegTuples(regs),
            },
            ReplayEvent::Inject { mems } => EventRef::Inject {
                mems: PairsRef::AddrTuples(mems),
            },
        }
    }

    /// Materializes the owned event.
    pub fn to_owned(&self) -> ReplayEvent {
        match self {
            EventRef::Run { tid, steps } => ReplayEvent::Run {
                tid: *tid,
                steps: *steps,
            },
            EventRef::Skip { tid, to_pc, regs } => ReplayEvent::Skip {
                tid: *tid,
                to_pc: *to_pc,
                regs: regs.iter().map(|(k, v)| (Reg(k as u8), v)).collect(),
            },
            EventRef::Inject { mems } => ReplayEvent::Inject {
                mems: mems.iter().collect(),
            },
        }
    }
}

/// A borrowed `(key, value)` pair list — either split columns (the v4
/// layout) or the owned tuple vectors inside a [`ReplayEvent`].
///
/// Equality is logical (same pairs in the same order), not representational
/// — a `Split` view and a tuple view of the same pairs compare equal.
#[derive(Debug, Clone, Copy)]
pub enum PairsRef<'a> {
    /// Parallel key/value columns (columnar store).
    Split {
        /// Keys: register number or address.
        keys: &'a [u64],
        /// Values.
        vals: &'a [i64],
    },
    /// Register tuples borrowed from an owned `Skip` event.
    RegTuples(&'a [(Reg, i64)]),
    /// Address tuples borrowed from an owned `Inject` event.
    AddrTuples(&'a [(Addr, i64)]),
}

impl PartialEq for PairsRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for PairsRef<'_> {}

impl<'a> PairsRef<'a> {
    /// Number of pairs.
    pub fn len(&self) -> usize {
        match self {
            PairsRef::Split { keys, .. } => keys.len(),
            PairsRef::RegTuples(t) => t.len(),
            PairsRef::AddrTuples(t) => t.len(),
        }
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pair `i` as `(key, value)` — registers widen to `u64`.
    pub fn get(&self, i: usize) -> (u64, i64) {
        match self {
            PairsRef::Split { keys, vals } => (keys[i], vals[i]),
            PairsRef::RegTuples(t) => (u64::from(t[i].0 .0), t[i].1),
            PairsRef::AddrTuples(t) => (t[i].0, t[i].1),
        }
    }

    /// Iterates pairs as `(key, value)`.
    pub fn iter(&self) -> PairsIter<'a> {
        PairsIter {
            pairs: *self,
            next: 0,
        }
    }
}

/// Iterator over a [`PairsRef`].
#[derive(Debug, Clone)]
pub struct PairsIter<'a> {
    pairs: PairsRef<'a>,
    next: usize,
}

impl Iterator for PairsIter<'_> {
    type Item = (u64, i64);

    fn next(&mut self) -> Option<(u64, i64)> {
        if self.next >= self.pairs.len() {
            return None;
        }
        let p = self.pairs.get(self.next);
        self.next += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.pairs.len() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for PairsIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<ReplayEvent> {
        vec![
            ReplayEvent::Run { tid: 0, steps: 10 },
            ReplayEvent::Skip {
                tid: 1,
                to_pc: 99,
                regs: vec![(Reg(2), -5), (Reg(7), 1 << 40)],
            },
            ReplayEvent::Inject {
                mems: vec![(0x1000, 42), (0xffff_ffff_0000, -1)],
            },
            ReplayEvent::Run { tid: 3, steps: 1 },
            ReplayEvent::Skip {
                tid: 0,
                to_pc: 0,
                regs: vec![],
            },
        ]
    }

    #[test]
    fn columns_roundtrip_events() {
        let events = sample_events();
        let c = EventColumns::from_events(&events);
        assert_eq!(c.len(), events.len());
        assert_eq!(c.to_events(), events);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(c.get(i).to_owned(), *e);
            assert_eq!(c.get(i), EventRef::of(e), "borrowed views compare equal");
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = EventColumns::from_events(&sample_events());
        let bytes = c.encode_to_vec();
        let d = EventColumns::decode(&bytes).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn empty_roundtrip() {
        let c = EventColumns::new();
        let d = EventColumns::decode(&c.encode_to_vec()).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.to_events(), Vec::<ReplayEvent>::new());
    }

    #[test]
    fn instructions_counts_run_steps() {
        let c = EventColumns::from_events(&sample_events());
        assert_eq!(c.instructions(), 11);
    }

    #[test]
    fn extend_rebases_pair_offsets() {
        let events = sample_events();
        let mut a = EventColumns::from_events(&events[..2]);
        let b = EventColumns::from_events(&events[2..]);
        a.extend_from(&b);
        assert_eq!(a.to_events(), events);
        assert_eq!(a, EventColumns::from_events(&events));
    }

    #[test]
    fn decode_rejects_every_truncation() {
        let bytes = EventColumns::from_events(&sample_events()).encode_to_vec();
        for cut in 0..bytes.len() {
            assert!(
                EventColumns::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
    }

    #[test]
    fn decode_never_panics_on_bit_flips() {
        let bytes = EventColumns::from_events(&sample_events()).encode_to_vec();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[i] ^= 1 << bit;
                // Either a typed error or a successful decode of different
                // (but structurally valid) columns — never a panic.
                let _ = EventColumns::decode(&m);
            }
        }
    }

    #[test]
    fn decode_rejects_oversized_counts() {
        let mut bytes = Vec::new();
        pinzip::varint::write_u64(&mut bytes, u64::MAX);
        assert!(EventColumns::decode(&bytes).is_err());
        let mut bytes = Vec::new();
        pinzip::varint::write_u64(&mut bytes, 0);
        pinzip::varint::write_u64(&mut bytes, u64::MAX);
        assert!(EventColumns::decode(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_run_with_pairs() {
        // n=1, npairs=1, kind=Run, tid=0, arg=0, delta=1, key=0, val=0.
        let mut bytes = Vec::new();
        for v in [1u64, 1, 0] {
            pinzip::varint::write_u64(&mut bytes, v);
        }
        bytes.insert(2, KIND_RUN); // kinds column sits after the two counts
        pinzip::varint::write_u64(&mut bytes, 0); // arg
        pinzip::varint::write_u64(&mut bytes, 1); // pair delta
        pinzip::varint::write_u64(&mut bytes, 0); // key
        pinzip::varint::write_i64(&mut bytes, 0); // val
        let err = EventColumns::decode(&bytes).unwrap_err();
        assert!(err.contains("run event carries"), "{err}");
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut bytes = EventColumns::from_events(&sample_events()).encode_to_vec();
        bytes.push(0);
        let err = EventColumns::decode(&bytes).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }

    #[test]
    fn column_sizes_account_for_every_encoded_byte() {
        let c = EventColumns::from_events(&sample_events());
        let encoded = c.encode_to_vec();
        let counts = varint_len(c.len() as u64) + varint_len(c.pair_keys.len() as u64);
        assert_eq!(c.column_sizes().total() + counts, encoded.len());
    }

    #[test]
    fn pairs_iter_views_agree() {
        let e = ReplayEvent::Skip {
            tid: 0,
            to_pc: 5,
            regs: vec![(Reg(1), 10), (Reg(2), 20)],
        };
        let c = EventColumns::from_events(std::slice::from_ref(&e));
        let (col, own) = (c.get(0), EventRef::of(&e));
        let pairs = |r: EventRef<'_>| match r {
            EventRef::Skip { regs, .. } => regs.iter().collect::<Vec<_>>(),
            _ => panic!("expected skip"),
        };
        assert_eq!(pairs(col), vec![(1, 10), (2, 20)]);
        assert_eq!(pairs(col), pairs(own));
    }
}
