//! The relogger: turn a region pinball + exclusion regions into a slice
//! pinball.
//!
//! Paper §4: "PinPlay's relogger can run off a pinball and then generate a
//! new pinball by excluding some code regions. ... Given an exclusion code
//! region `[startPc:sinstance:tid, endPc:einstance:tid)` for thread `tid`,
//! relogger sets the exclusion flag and turns on the side-effects detection
//! when the `sinstance`-th execution of `startPc` is encountered, and then
//! resets the flag when the `einstance`-th execution of `endPc` is reached."
//!
//! Implementation: the region pinball is replayed once; per-thread exclusion
//! flags are flipped at the markers; schedule entries inside excluded spans
//! are dropped from the new log and their register/memory side effects are
//! accumulated into a [`ReplayEvent::Skip`] emitted at the span's end. The
//! relogger also re-derives per-thread syscall logs containing only the
//! *included* syscalls, since excluded code never executes under the slice
//! pinball.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use minivm::{InsEvent, Loc, Pc, Program, Reg, Tid, ToolControl};

use crate::container::PinballContainer;
use crate::pinball::{Pinball, PinballMeta, ReplayEvent, ScheduleBuilder};
use crate::replay::{ReplayStatus, Replayer};

/// A per-thread code exclusion region, half-open:
/// `[start_pc:start_instance, end_pc:end_instance)` with region-relative,
/// 1-based instance counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExclusionRegion {
    /// Thread the region applies to.
    pub tid: Tid,
    /// First excluded program point.
    pub start_pc: Pc,
    /// 1-based region-relative instance of `start_pc` that opens the span.
    pub start_instance: u64,
    /// First program point *after* the span (not excluded).
    pub end_pc: Pc,
    /// 1-based region-relative instance of `end_pc` that closes the span.
    pub end_instance: u64,
}

#[derive(Debug, Default)]
struct ThreadExclusion {
    excluded: bool,
    regs: BTreeMap<Reg, i64>,
}

/// Statistics from a relogging pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelogStats {
    /// Instructions of the region pinball kept in the slice pinball.
    pub included: u64,
    /// Instructions dropped (their side effects became injections).
    pub excluded: u64,
}

/// Replays `region_pinball` and produces the slice pinball that skips the
/// given exclusion regions (paper Fig. 4(b)).
///
/// The caller (the slicer's exclusion-region builder) must never exclude
/// synchronization or thread-lifecycle instructions (`lock`, `unlock`,
/// `spawn`, `join`, `halt`): their effects on scheduling cannot be injected
/// as plain register/memory side effects, and keeping them preserves the
/// recorded schedule's validity under the slice pinball.
pub fn relog(
    program: Arc<Program>,
    region_pinball: &Pinball,
    exclusions: &[ExclusionRegion],
) -> (Pinball, RelogStats) {
    let starts: HashSet<(Tid, Pc, u64)> = exclusions
        .iter()
        .map(|e| (e.tid, e.start_pc, e.start_instance))
        .collect();
    let ends: HashSet<(Tid, Pc, u64)> = exclusions
        .iter()
        .map(|e| (e.tid, e.end_pc, e.end_instance))
        .collect();

    let mut threads: HashMap<Tid, ThreadExclusion> = HashMap::new();
    let mut schedule = ScheduleBuilder::new();
    let mut syscalls: Vec<Vec<i64>> = Vec::new();
    let mut stats = RelogStats::default();

    {
        let mut on_event = |ev: &InsEvent| -> ToolControl {
            let st = threads.entry(ev.tid).or_default();
            if st.excluded && ends.contains(&(ev.tid, ev.pc, ev.instance)) {
                // Close the span: emit the Skip with the accumulated
                // register side effects; this event itself is included
                // again. (Memory side effects were already injected in
                // place, below.)
                schedule.skip(
                    ev.tid,
                    ev.pc,
                    st.regs.iter().map(|(r, v)| (*r, *v)).collect(),
                );
                st.excluded = false;
                st.regs.clear();
            } else if !st.excluded && starts.contains(&(ev.tid, ev.pc, ev.instance)) {
                st.excluded = true;
            }

            if st.excluded {
                stats.excluded += 1;
                for (loc, val) in ev.defs.iter() {
                    match loc {
                        Loc::Reg(r) => {
                            st.regs.insert(r, val);
                        }
                        Loc::Mem(a) => {
                            // Inject at the write's original position in
                            // the global order, so included reads of other
                            // threads observe the recorded values.
                            schedule.inject(a, val);
                        }
                    }
                }
            } else {
                stats.included += 1;
                schedule.step(ev.tid);
                if let Some(v) = ev.sys_result {
                    let t = ev.tid as usize;
                    if syscalls.len() <= t {
                        syscalls.resize_with(t + 1, Vec::new);
                    }
                    syscalls[t].push(v);
                }
            }
            ToolControl::Continue
        };

        let mut replayer = Replayer::new(Arc::clone(&program), region_pinball);
        match replayer.run(&mut on_event) {
            ReplayStatus::Completed | ReplayStatus::Trapped(_) => {}
            ReplayStatus::Paused => unreachable!("relog tool never pauses"),
        }

        // Threads whose exclusion span reaches the region end: flush a final
        // Skip so their side effects and final pc still materialise.
        let mut open: Vec<Tid> = threads
            .iter()
            .filter(|(_, st)| st.excluded)
            .map(|(tid, _)| *tid)
            .collect();
        open.sort_unstable();
        for tid in open {
            let st = threads.get_mut(&tid).expect("tid collected above");
            let final_pc = replayer.exec().thread(tid).pc;
            schedule.skip(
                tid,
                final_pc,
                st.regs.iter().map(|(r, v)| (*r, *v)).collect(),
            );
        }
    }

    let events: Vec<ReplayEvent> = schedule.finish();
    let pinball = Pinball {
        meta: PinballMeta {
            program: region_pinball.meta.program.clone(),
            region: format!("{} [slice]", region_pinball.meta.region),
            is_slice: true,
        },
        snapshot: region_pinball.snapshot.clone(),
        events,
        syscalls,
        exit: region_pinball.exit,
    };
    (pinball, stats)
}

/// [`relog`], lifted to the v3 container: replays the container's region
/// pinball under the exclusions and packages the resulting slice pinball as
/// a [`PinballContainer`] with embedded checkpoints at `checkpoint_interval`
/// retired instructions — so the slice pinball is immediately seekable,
/// serializable ([`PinballContainer::to_bytes`]), and content-addressed
/// (`container.digest()`), exactly like a freshly recorded region.
///
/// This is the entry point the debugger and drserve use; [`relog`] remains
/// the pinball-level primitive.
pub fn relog_container(
    program: Arc<Program>,
    region: &PinballContainer,
    exclusions: &[ExclusionRegion],
    checkpoint_interval: u64,
) -> (PinballContainer, RelogStats) {
    let (pinball, stats) = relog(Arc::clone(&program), &region.pinball, exclusions);
    let container = PinballContainer::with_checkpoints(pinball, &program, checkpoint_interval);
    (container, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{assemble, LiveEnv, NullTool, Reg, RoundRobin};

    use crate::logger::record_whole_program;

    /// Program where a middle block computes values the tail never uses.
    const PROG: &str = r"
        .data
        out: .word 0
        .text
        .func main
            movi r1, 10      ; pc 0 : included
            movi r2, 0       ; pc 1 : included
            ; --- irrelevant block (pcs 2..5) ---
            movi r3, 1       ; pc 2
            addi r3, r3, 2   ; pc 3
            muli r3, r3, 3   ; pc 4
            movi r4, 7       ; pc 5
            ; --- end irrelevant block ---
            add  r2, r2, r1  ; pc 6 : included
            la   r5, out     ; pc 7
            store r2, r5, 0  ; pc 8
            halt             ; pc 9
        .endfunc
        ";

    fn record() -> (Arc<minivm::Program>, Pinball) {
        let program = Arc::new(assemble(PROG).unwrap());
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(0),
            10_000,
            "relog-demo",
        )
        .unwrap();
        (program, rec.pinball)
    }

    #[test]
    fn relog_skips_block_and_preserves_result() {
        let (program, region) = record();
        let exclusions = vec![ExclusionRegion {
            tid: 0,
            start_pc: 2,
            start_instance: 1,
            end_pc: 6,
            end_instance: 1,
        }];
        let (slice_pb, stats) = relog(Arc::clone(&program), &region, &exclusions);
        assert!(slice_pb.meta.is_slice);
        assert_eq!(stats.excluded, 4);
        assert_eq!(stats.included, region.logged_instructions() - 4);

        let mut rep = Replayer::new(Arc::clone(&program), &slice_pb);
        rep.run(&mut NullTool);
        let out = program.symbol("out").unwrap();
        assert_eq!(rep.exec().read_mem(out), 10, "included computation intact");
        assert_eq!(
            rep.replayed_instructions(),
            stats.included,
            "excluded instructions are never executed during slice replay"
        );
        // Side effects of the excluded block were injected.
        assert_eq!(rep.exec().read_reg(0, Reg(3)), 9);
        assert_eq!(rep.exec().read_reg(0, Reg(4)), 7);
    }

    #[test]
    fn relog_without_exclusions_is_identity_modulo_meta() {
        let (program, region) = record();
        let (slice_pb, stats) = relog(Arc::clone(&program), &region, &[]);
        assert_eq!(stats.excluded, 0);
        assert_eq!(slice_pb.events, region.events);
        assert_eq!(slice_pb.syscalls, region.syscalls);
    }

    #[test]
    fn span_open_at_region_end_flushes_final_skip() {
        let (program, region) = record();
        // Exclude from pc 7 to a marker that never occurs (pc 0 instance 2).
        let exclusions = vec![ExclusionRegion {
            tid: 0,
            start_pc: 7,
            start_instance: 1,
            end_pc: 0,
            end_instance: 2,
        }];
        let (slice_pb, _) = relog(Arc::clone(&program), &region, &exclusions);
        assert!(
            matches!(
                slice_pb.events.last(),
                Some(ReplayEvent::Skip { tid: 0, .. })
            ),
            "open span must end with a Skip, got {:?}",
            slice_pb.events.last()
        );
        // The store's memory side effect was injected in place.
        let out = program.symbol("out").unwrap();
        let injected = slice_pb.events.iter().any(|e| {
            matches!(e, ReplayEvent::Inject { mems } if mems.iter().any(|(a, v)| *a == out && *v == 10))
        });
        assert!(injected, "excluded store injected: {:?}", slice_pb.events);
    }
}

#[cfg(test)]
mod multi_span_tests {
    use super::*;
    use minivm::{assemble, LiveEnv, NullTool, RoundRobin};
    use std::sync::Arc;

    use crate::logger::record_whole_program;
    use crate::replay::Replayer;

    /// Two separate exclusion spans in one thread, with included code
    /// between them.
    #[test]
    fn multiple_spans_in_one_thread() {
        let program = Arc::new(
            assemble(
                r"
                .data
                out: .word 0
                .text
                .func main
                    movi r1, 1      ; 0 included
                    movi r8, 100    ; 1 EXCLUDED span A
                    addi r8, r8, 1  ; 2 EXCLUDED span A
                    addi r1, r1, 10 ; 3 included
                    mul  r8, r8, r8 ; 4 EXCLUDED span B
                    addi r1, r1, 100; 5 included
                    la r2, out      ; 6 included
                    store r1, r2, 0 ; 7 included
                    halt            ; 8
                .endfunc
                ",
            )
            .unwrap(),
        );
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(0),
            10_000,
            "multi-span",
        )
        .unwrap();
        let exclusions = vec![
            ExclusionRegion {
                tid: 0,
                start_pc: 1,
                start_instance: 1,
                end_pc: 3,
                end_instance: 1,
            },
            ExclusionRegion {
                tid: 0,
                start_pc: 4,
                start_instance: 1,
                end_pc: 5,
                end_instance: 1,
            },
        ];
        let (slice_pb, stats) = relog(Arc::clone(&program), &rec.pinball, &exclusions);
        assert_eq!(stats.excluded, 3);
        let skips = slice_pb
            .events
            .iter()
            .filter(|e| matches!(e, ReplayEvent::Skip { .. }))
            .count();
        assert_eq!(skips, 2, "one Skip per span: {:?}", slice_pb.events);

        let mut rep = Replayer::new(Arc::clone(&program), &slice_pb);
        rep.run(&mut NullTool);
        let out = program.symbol("out").unwrap();
        assert_eq!(rep.exec().read_mem(out), 111, "included chain intact");
        assert_eq!(
            rep.exec().read_reg(0, minivm::Reg(8)),
            101 * 101,
            "both spans' register side effects injected"
        );
        assert_eq!(
            rep.replayed_instructions(),
            rec.pinball.logged_instructions() - 3
        );
    }

    /// An exclusion span whose start marker never fires leaves the log
    /// untouched.
    #[test]
    fn unmatched_start_marker_is_inert() {
        let program = Arc::new(
            assemble(
                r"
                .text
                .func main
                    movi r1, 1
                    halt
                .endfunc
                ",
            )
            .unwrap(),
        );
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(0),
            10_000,
            "inert",
        )
        .unwrap();
        let exclusions = vec![ExclusionRegion {
            tid: 0,
            start_pc: 0,
            start_instance: 99, // never reached
            end_pc: 1,
            end_instance: 1,
        }];
        let (slice_pb, stats) = relog(Arc::clone(&program), &rec.pinball, &exclusions);
        assert_eq!(stats.excluded, 0);
        assert_eq!(slice_pb.events, rec.pinball.events);
    }
}
