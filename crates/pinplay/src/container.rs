//! The v2 pinball container: chunked, checksummed, seekable.
//!
//! The v1 format compresses the whole pinball as one LZSS blob, so any
//! damage loses the entire recording and every seek restarts replay from
//! the region snapshot. The v2 container fixes both:
//!
//! * the replay log is split into **frames** (see [`pinzip::frame`]), each
//!   independently compressed and protected by a CRC-32 of its compressed
//!   payload — a flipped bit or truncated tail is detected *per chunk*, the
//!   loader names the damaged chunk in a typed [`PinballError::Chunk`], and
//!   [`PinballContainer::from_bytes_lossy`] still recovers the intact
//!   prefix;
//! * **checkpoints** — serialized replayer state captured every
//!   `checkpoint_interval` retired instructions — are embedded between
//!   event chunks, so [`Replayer::seek_to`] restores the nearest preceding
//!   checkpoint and replays only the tail chunk instead of the whole
//!   region: O(chunk) instead of O(region).
//!
//! # Wire layout
//!
//! ```text
//! +--------+          magic  b"DRPB2\n"                     (6 bytes)
//! | magic  |
//! +--------+
//! | frame  |  kind 1: header — meta, snapshot, syscalls,
//! |        |          exit, event count, checkpoint interval
//! +--------+
//! | frame  |  kind 3: checkpoint at chunk k's start (optional)
//! +--------+
//! | frame  |  kind 2: events chunk k (a subslice of the log)
//! +--------+
//! |  ...   |  ... checkpoint/events pairs repeat ...
//! +--------+
//! | frame  |  kind 4: index — offset/instr/ordinal of every frame
//! +--------+
//! | trailer|  u64 LE offset of the index frame + b"PBIX"    (12 bytes)
//! +--------+
//! ```
//!
//! Each frame is `[kind u8][varint clen][crc32 LE][LZSS payload]`; payloads
//! are JSON. Chunk boundaries fall on *event* boundaries (a chunk closes
//! once it has retired `checkpoint_interval` instructions), computed
//! deterministically from the log alone — so load → save round-trips
//! byte-identically, and a plain [`Pinball::to_bytes`] (no checkpoints)
//! emits the same chunking a checkpointed container uses.
//!
//! # v1 compatibility
//!
//! [`PinballContainer::from_bytes`] (and [`Pinball::from_bytes`])
//! auto-detect the format by the magic: bytes without it take the v1
//! single-blob path. [`migrate_v1`] rewrites a v1 blob as a v2 container;
//! [`Pinball::to_bytes_v1`] still writes the old format.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use minivm::{ExecState, Program, Snapshot};
use pinzip::crc32::crc32;
use pinzip::frame::{read_frame, write_frame};

use crate::pinball::{Pinball, PinballError, PinballMeta, RecordedExit, ReplayEvent};
use crate::replay::Replayer;

/// Magic bytes opening a v2 container.
pub const MAGIC: &[u8; 6] = b"DRPB2\n";
/// Magic bytes closing the 12-byte trailer.
pub const TRAILER_MAGIC: &[u8; 4] = b"PBIX";
/// Default checkpoint cadence, in retired instructions per chunk.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 4096;

const KIND_HEADER: u8 = 1;
const KIND_EVENTS: u8 = 2;
const KIND_CHECKPOINT: u8 = 3;
const KIND_INDEX: u8 = 4;

/// What a container frame holds — used by [`PinballError::Chunk`] to name
/// the damaged frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkKind {
    /// The header frame (metadata, snapshot, syscalls, exit).
    Header,
    /// An events chunk (a subslice of the replay log).
    Events,
    /// An embedded replay checkpoint.
    Checkpoint,
    /// The footer index frame.
    Index,
    /// The frame was too damaged to tell (kind byte unreadable or invalid).
    Unknown,
}

impl fmt::Display for ChunkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ChunkKind::Header => "header",
            ChunkKind::Events => "events",
            ChunkKind::Checkpoint => "checkpoint",
            ChunkKind::Index => "index",
            ChunkKind::Unknown => "unknown",
        })
    }
}

fn kind_of(byte: u8) -> ChunkKind {
    match byte {
        KIND_HEADER => ChunkKind::Header,
        KIND_EVENTS => ChunkKind::Events,
        KIND_CHECKPOINT => ChunkKind::Checkpoint,
        KIND_INDEX => ChunkKind::Index,
        _ => ChunkKind::Unknown,
    }
}

/// Content address of a pinball: a fold of the CRC-32s of its canonical
/// chunk payloads.
///
/// The digest covers everything replay depends on — metadata, the entry
/// snapshot, the syscall queues, the exit, and every events chunk (split at
/// the canonical [`DEFAULT_CHECKPOINT_INTERVAL`] cadence regardless of the
/// container's own interval) — and deliberately excludes embedded
/// checkpoints. Two containers holding the same recording therefore share a
/// digest even when one carries checkpoints and the other does not, which
/// is what lets a content-addressed store (the `drserve` pinball store and
/// slice cache) dedupe repeated uploads of the same pinball.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PinballDigest(pub u64);

impl fmt::Display for PinballDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a over a byte stream — the digest's CRC combiner.
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Serialized replayer state at a known log position: restoring one and
/// replaying forward reproduces the execution exactly, because the VM is
/// deterministic given the log and the remaining syscall queues.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayCheckpoint {
    /// Instructions retired when the checkpoint was taken.
    pub instr: u64,
    /// Replay log position (event index).
    pub pos: usize,
    /// Instructions already retired inside event `pos` (0 at an event
    /// boundary — where embedded checkpoints always sit).
    pub done_in_event: u64,
    /// Full executor state, including the region-relative counters that a
    /// plain [`Snapshot`] deliberately resets.
    pub exec: ExecState,
    /// Remaining unconsumed syscall results, per thread.
    pub env: Vec<Vec<i64>>,
}

/// The header frame's payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ContainerHeader {
    meta: PinballMeta,
    snapshot: Snapshot,
    syscalls: Vec<Vec<i64>>,
    exit: RecordedExit,
    num_events: u64,
    checkpoint_interval: u64,
}

/// One entry of the footer index: where a frame lives and what it covers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexEntry {
    /// Frame ordinal in the file (0 = header).
    pub chunk: usize,
    /// What the frame holds.
    pub kind: ChunkKind,
    /// Byte offset of the frame in the file.
    pub offset: u64,
    /// First retired-instruction count the frame covers (events chunks and
    /// checkpoints; 0 for header and index).
    pub instr: u64,
}

/// A pinball plus its embedded checkpoints — the in-memory form of a v2
/// container. Loading preserves the checkpoints, so a load → save cycle is
/// byte-identical without replaying anything.
#[derive(Debug, Clone, PartialEq)]
pub struct PinballContainer {
    /// The recorded region.
    pub pinball: Pinball,
    /// Embedded checkpoints, ascending by `instr`, each sitting at a chunk
    /// boundary of the serialized form.
    pub checkpoints: Vec<ReplayCheckpoint>,
    /// Chunk cadence in retired instructions.
    pub checkpoint_interval: u64,
}

/// The result of a best-effort load: the intact prefix plus what was lost.
#[derive(Debug, Clone)]
pub struct LossyLoad {
    /// Container holding the recovered prefix of the log (and every
    /// checkpoint that precedes the damage).
    pub container: PinballContainer,
    /// The damage that ended the scan, if any (`None` means the file was
    /// fully intact).
    pub damage: Option<PinballError>,
    /// Events recovered from intact chunks.
    pub events_recovered: usize,
    /// Events the header promised.
    pub events_expected: usize,
}

impl PinballContainer {
    /// Wraps a pinball with no checkpoints at the default cadence.
    pub fn new(pinball: Pinball) -> PinballContainer {
        PinballContainer {
            pinball,
            checkpoints: Vec::new(),
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
        }
    }

    /// Wraps a pinball and captures a checkpoint at every chunk boundary by
    /// replaying it once under `program`. `interval` is the chunk cadence
    /// in retired instructions (clamped to at least 1).
    ///
    /// # Panics
    ///
    /// Panics on replay divergence, like [`Replayer::run`] — a pinball that
    /// cannot replay cannot be checkpointed.
    pub fn with_checkpoints(
        pinball: Pinball,
        program: &Arc<Program>,
        interval: u64,
    ) -> PinballContainer {
        let interval = interval.max(1);
        let ranges = chunk_ranges(&pinball.events, interval);
        let mut replayer = Replayer::new(Arc::clone(program), &pinball);
        let mut checkpoints = Vec::new();
        for &(start_ev, _end_ev, _start_instr) in ranges.iter().skip(1) {
            replayer.run_to_event(start_ev);
            checkpoints.push(replayer.checkpoint());
        }
        PinballContainer {
            pinball,
            checkpoints,
            checkpoint_interval: interval,
        }
    }

    /// The container's content digest — see [`PinballDigest`]. Embedded
    /// checkpoints do not contribute: a checkpointed and a checkpoint-free
    /// container over the same recording digest identically.
    pub fn digest(&self) -> PinballDigest {
        digest_pinball(&self.pinball)
    }

    /// The checkpoint with the greatest `instr` not exceeding `target`, if
    /// any.
    pub fn nearest_checkpoint(&self, target: u64) -> Option<&ReplayCheckpoint> {
        self.checkpoints
            .iter()
            .take_while(|cp| cp.instr <= target)
            .last()
    }

    /// Serializes the container (v2 format).
    ///
    /// # Errors
    ///
    /// Returns [`PinballError::Serialize`] when JSON encoding fails.
    pub fn to_bytes(&self) -> Result<Vec<u8>, PinballError> {
        write_container(&self.pinball, &self.checkpoints, self.checkpoint_interval)
    }

    /// Deserializes a container, auto-detecting the format: v2 bytes load
    /// strictly (any damaged frame is an error naming the chunk); v1 blobs
    /// load as a container with no checkpoints.
    ///
    /// # Errors
    ///
    /// Returns a typed [`PinballError`]: [`PinballError::Chunk`] for a
    /// damaged v2 frame, [`PinballError::Format`] for structural problems,
    /// or the v1 errors for v1 blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<PinballContainer, PinballError> {
        if !bytes.starts_with(MAGIC) {
            return Ok(PinballContainer::new(Pinball::from_bytes_v1(bytes)?));
        }
        let loaded = scan(bytes)?;
        match loaded.damage {
            None => Ok(loaded.container),
            Some(e) => Err(e),
        }
    }

    /// Best-effort deserialization: verifies frames in order and returns
    /// the intact prefix together with the damage that ended the scan (if
    /// any). Replay of the recovered container reproduces the recording up
    /// to the damaged chunk.
    ///
    /// # Errors
    ///
    /// Returns an error only when nothing is recoverable: the magic or the
    /// header frame itself is damaged (or the bytes are a damaged v1 blob,
    /// which has no intact prefix to salvage).
    pub fn from_bytes_lossy(bytes: &[u8]) -> Result<LossyLoad, PinballError> {
        if !bytes.starts_with(MAGIC) {
            let pinball = Pinball::from_bytes_v1(bytes)?;
            let expected = pinball.events.len();
            return Ok(LossyLoad {
                container: PinballContainer::new(pinball),
                damage: None,
                events_recovered: expected,
                events_expected: expected,
            });
        }
        scan(bytes)
    }

    /// Writes the container to a file.
    ///
    /// # Errors
    ///
    /// Returns [`PinballError::Io`] on filesystem errors and
    /// [`PinballError::Serialize`] on encoding errors.
    pub fn save(&self, path: &std::path::Path) -> Result<(), PinballError> {
        std::fs::write(path, self.to_bytes()?).map_err(|e| PinballError::Io(e.to_string()))
    }

    /// Reads a container from a file (v1 or v2, auto-detected).
    ///
    /// # Errors
    ///
    /// As [`PinballContainer::from_bytes`], plus [`PinballError::Io`].
    pub fn load(path: &std::path::Path) -> Result<PinballContainer, PinballError> {
        let bytes = std::fs::read(path).map_err(|e| PinballError::Io(e.to_string()))?;
        PinballContainer::from_bytes(&bytes)
    }
}

/// Rewrites a v1 single-blob pinball as a v2 container (no checkpoints —
/// replay it through [`PinballContainer::with_checkpoints`] to add them).
///
/// # Errors
///
/// Returns the v1 decode errors, or [`PinballError::Format`] when `bytes`
/// is already a v2 container.
pub fn migrate_v1(bytes: &[u8]) -> Result<Vec<u8>, PinballError> {
    if bytes.starts_with(MAGIC) {
        return Err(PinballError::Format(
            "already a v2 container; nothing to migrate".into(),
        ));
    }
    PinballContainer::new(Pinball::from_bytes_v1(bytes)?).to_bytes()
}

/// Computes a pinball's content digest: the CRC-32 of each canonical chunk
/// payload (header fields, then every events chunk at the
/// [`DEFAULT_CHECKPOINT_INTERVAL`] cadence), folded with FNV-1a.
///
/// Chunking is recomputed at the canonical interval rather than taken from
/// any particular container, so the digest is a function of the recording
/// alone. Serialization of these plain data types cannot fail (the same
/// encoding backs [`Pinball::to_bytes`]), so the digest is infallible.
pub(crate) fn digest_pinball(pinball: &Pinball) -> PinballDigest {
    let part = |value: &dyn erased_ser::ErasedSer| -> u32 {
        crc32(&value.to_json().expect("pinball fields JSON-serialize"))
    };
    let mut h = FNV_OFFSET;
    for crc in [
        part(&pinball.meta),
        part(&pinball.snapshot),
        part(&pinball.syscalls),
        part(&pinball.exit),
    ] {
        h = fnv1a(h, &crc.to_le_bytes());
    }
    for (start_ev, end_ev, _) in chunk_ranges(&pinball.events, DEFAULT_CHECKPOINT_INTERVAL) {
        let crc = part(&&pinball.events[start_ev..end_ev]);
        h = fnv1a(h, &crc.to_le_bytes());
    }
    PinballDigest(h)
}

/// Object-safe serialization shim so [`digest_pinball`] can CRC
/// heterogeneous fields through one closure.
mod erased_ser {
    use serde::Serialize;

    pub(crate) trait ErasedSer {
        fn to_json(&self) -> Result<Vec<u8>, serde_json::Error>;
    }

    impl<T: Serialize> ErasedSer for T {
        fn to_json(&self) -> Result<Vec<u8>, serde_json::Error> {
            serde_json::to_vec(self)
        }
    }
}

/// Splits the log into chunks of at least `interval` retired instructions,
/// closed at event boundaries: `(start_event, end_event, start_instr)` per
/// chunk. Deterministic in the log and interval alone, so serialization is
/// reproducible. An empty log yields no chunks.
fn chunk_ranges(events: &[ReplayEvent], interval: u64) -> Vec<(usize, usize, u64)> {
    let mut ranges = Vec::new();
    let mut start_ev = 0usize;
    let mut start_instr = 0u64;
    let mut instr = 0u64;
    for (i, ev) in events.iter().enumerate() {
        if let ReplayEvent::Run { steps, .. } = ev {
            instr += steps;
        }
        if instr - start_instr >= interval {
            ranges.push((start_ev, i + 1, start_instr));
            start_ev = i + 1;
            start_instr = instr;
        }
    }
    if start_ev < events.len() {
        ranges.push((start_ev, events.len(), start_instr));
    }
    ranges
}

fn ser<T: Serialize>(value: &T) -> Result<Vec<u8>, PinballError> {
    serde_json::to_vec(value).map_err(|e| PinballError::Serialize(e.to_string()))
}

/// Serializes a pinball (plus optional checkpoints) into v2 container
/// bytes. A checkpoint is emitted immediately before the events chunk
/// whose start position equals its `pos`.
pub(crate) fn write_container(
    pinball: &Pinball,
    checkpoints: &[ReplayCheckpoint],
    interval: u64,
) -> Result<Vec<u8>, PinballError> {
    let interval = interval.max(1);
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let mut index = Vec::new();
    let mut chunk = 0usize;
    let header = ContainerHeader {
        meta: pinball.meta.clone(),
        snapshot: pinball.snapshot.clone(),
        syscalls: pinball.syscalls.clone(),
        exit: pinball.exit,
        num_events: pinball.events.len() as u64,
        checkpoint_interval: interval,
    };
    let off = write_frame(&mut out, KIND_HEADER, &ser(&header)?);
    index.push(IndexEntry {
        chunk,
        kind: ChunkKind::Header,
        offset: off as u64,
        instr: 0,
    });
    chunk += 1;
    for (start_ev, end_ev, start_instr) in chunk_ranges(&pinball.events, interval) {
        if let Some(cp) = checkpoints.iter().find(|cp| cp.pos == start_ev) {
            let off = write_frame(&mut out, KIND_CHECKPOINT, &ser(cp)?);
            index.push(IndexEntry {
                chunk,
                kind: ChunkKind::Checkpoint,
                offset: off as u64,
                instr: cp.instr,
            });
            chunk += 1;
        }
        let chunk_events: &[ReplayEvent] = &pinball.events[start_ev..end_ev];
        let off = write_frame(&mut out, KIND_EVENTS, &ser(&chunk_events)?);
        index.push(IndexEntry {
            chunk,
            kind: ChunkKind::Events,
            offset: off as u64,
            instr: start_instr,
        });
        chunk += 1;
    }
    index.push(IndexEntry {
        chunk,
        kind: ChunkKind::Index,
        offset: 0, // patched below: the index cannot know its own offset
        instr: 0,
    });
    let index_off = out.len() as u64;
    if let Some(last) = index.last_mut() {
        last.offset = index_off;
    }
    write_frame(&mut out, KIND_INDEX, &ser(&index)?);
    out.extend_from_slice(&index_off.to_le_bytes());
    out.extend_from_slice(TRAILER_MAGIC);
    Ok(out)
}

fn chunk_err(chunk: usize, kind: ChunkKind, reason: impl fmt::Display) -> PinballError {
    PinballError::Chunk {
        chunk,
        kind,
        reason: reason.to_string(),
    }
}

/// Sequentially scans a v2 container, verifying every frame's CRC, and
/// returns the recovered prefix plus the first damage found (as
/// [`LossyLoad::damage`]). The header frame must be intact — without it
/// there is no snapshot to replay from, so damage there is a hard error.
fn scan(bytes: &[u8]) -> Result<LossyLoad, PinballError> {
    let mut pos = MAGIC.len();
    let mut chunk = 0usize;

    // Header frame: required.
    let header: ContainerHeader = {
        let frame = read_frame(bytes, &mut pos)
            .map_err(|e| chunk_err(0, peek_kind(bytes, MAGIC.len()), e))?;
        if frame.kind != KIND_HEADER {
            return Err(chunk_err(
                0,
                kind_of(frame.kind),
                "first frame is not the container header",
            ));
        }
        serde_json::from_slice(&frame.payload)
            .map_err(|e| chunk_err(0, ChunkKind::Header, format!("bad header payload: {e}")))?
    };
    chunk += 1;

    let mut events: Vec<ReplayEvent> = Vec::new();
    let mut checkpoints: Vec<ReplayCheckpoint> = Vec::new();
    let mut damage: Option<PinballError> = None;
    let mut index_frame_off: Option<usize> = None;

    while damage.is_none() {
        if pos >= bytes.len() {
            damage = Some(chunk_err(chunk, ChunkKind::Unknown, "missing index frame"));
            break;
        }
        let frame_off = pos;
        let frame = match read_frame(bytes, &mut pos) {
            Ok(f) => f,
            Err(e) => {
                damage = Some(chunk_err(chunk, peek_kind(bytes, frame_off), e));
                break;
            }
        };
        match frame.kind {
            KIND_EVENTS => match serde_json::from_slice::<Vec<ReplayEvent>>(&frame.payload) {
                Ok(mut evs) => events.append(&mut evs),
                Err(e) => {
                    damage = Some(chunk_err(
                        chunk,
                        ChunkKind::Events,
                        format!("bad events payload: {e}"),
                    ));
                    break;
                }
            },
            KIND_CHECKPOINT => match serde_json::from_slice::<ReplayCheckpoint>(&frame.payload) {
                Ok(cp) => checkpoints.push(cp),
                Err(e) => {
                    damage = Some(chunk_err(
                        chunk,
                        ChunkKind::Checkpoint,
                        format!("bad checkpoint payload: {e}"),
                    ));
                    break;
                }
            },
            KIND_INDEX => {
                index_frame_off = Some(frame_off);
                chunk += 1;
                break;
            }
            other => {
                damage = Some(chunk_err(
                    chunk,
                    kind_of(other),
                    format!("unexpected frame kind {other}"),
                ));
                break;
            }
        }
        chunk += 1;
    }

    // Trailer: index offset + magic. Only meaningful when the scan reached
    // the index frame.
    if damage.is_none() {
        if let Some(index_off) = index_frame_off {
            let trailer = &bytes[pos..];
            let ok = trailer.len() == 12
                && &trailer[8..] == TRAILER_MAGIC
                && u64::from_le_bytes(trailer[..8].try_into().expect("8-byte slice"))
                    == index_off as u64;
            if !ok {
                damage = Some(chunk_err(
                    chunk.saturating_sub(1),
                    ChunkKind::Index,
                    "bad trailer (index offset or magic mismatch)",
                ));
            }
        }
    }

    if damage.is_none() && events.len() as u64 != header.num_events {
        damage = Some(PinballError::Format(format!(
            "event count mismatch: header promises {}, chunks hold {}",
            header.num_events,
            events.len()
        )));
    }

    // Keep only checkpoints the recovered prefix actually reaches.
    checkpoints.retain(|cp| cp.pos <= events.len());

    let events_recovered = events.len();
    let container = PinballContainer {
        pinball: Pinball {
            meta: header.meta,
            snapshot: header.snapshot,
            events,
            syscalls: header.syscalls,
            exit: header.exit,
        },
        checkpoints,
        checkpoint_interval: header.checkpoint_interval.max(1),
    };
    Ok(LossyLoad {
        container,
        damage,
        events_recovered,
        events_expected: header.num_events as usize,
    })
}

/// Best-effort kind of the frame starting at `offset` (for error reports
/// when the frame itself cannot be read).
fn peek_kind(bytes: &[u8], offset: usize) -> ChunkKind {
    bytes
        .get(offset)
        .map_or(ChunkKind::Unknown, |&b| kind_of(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{assemble, LiveEnv, NullTool, RoundRobin};

    use crate::logger::record_whole_program;
    use crate::replay::ReplayStatus;

    const PROG: &str = r"
        .data
        acc: .word 0
        .text
        .func main
            movi r1, 1
            spawn r2, worker, r1
            movi r1, 2
            spawn r3, worker, r1
            join r2
            join r3
            la r4, acc
            load r5, r4, 0
            rand r6
            print r5
            halt
        .endfunc
        .func worker
            movi r3, 200
        loop:
            la r1, acc
            xadd r2, r1, r0
            subi r3, r3, 1
            bgti r3, 0, loop
            halt
        .endfunc
        ";

    fn record() -> (Arc<Program>, Pinball) {
        let program = Arc::new(assemble(PROG).unwrap());
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(7),
            &mut LiveEnv::new(42),
            1_000_000,
            "container-demo",
        )
        .unwrap();
        (program, rec.pinball)
    }

    #[test]
    fn chunk_ranges_cover_the_log_exactly() {
        let (_, pinball) = record();
        let ranges = chunk_ranges(&pinball.events, 64);
        assert!(ranges.len() > 2, "log should split into several chunks");
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges.last().unwrap().1, pinball.events.len());
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "chunks are contiguous");
            assert!(
                w[1].2 - w[0].2 >= 64,
                "each closed chunk holds >= interval instrs"
            );
        }
    }

    #[test]
    fn v2_roundtrip_preserves_pinball_and_checkpoints() {
        let (program, pinball) = record();
        let c = PinballContainer::with_checkpoints(pinball, &program, 128);
        assert!(!c.checkpoints.is_empty());
        let bytes = c.to_bytes().unwrap();
        assert!(bytes.starts_with(MAGIC));
        let d = PinballContainer::from_bytes(&bytes).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn load_save_is_byte_identical() {
        let (program, pinball) = record();
        let bytes = PinballContainer::with_checkpoints(pinball, &program, 256)
            .to_bytes()
            .unwrap();
        let reloaded = PinballContainer::from_bytes(&bytes).unwrap();
        assert_eq!(reloaded.to_bytes().unwrap(), bytes);
    }

    #[test]
    fn v1_blob_autodetects() {
        let (_, pinball) = record();
        let v1 = pinball.to_bytes_v1().unwrap();
        assert!(!v1.starts_with(MAGIC));
        let c = PinballContainer::from_bytes(&v1).unwrap();
        assert_eq!(c.pinball, pinball);
        assert!(c.checkpoints.is_empty());
    }

    #[test]
    fn migrate_v1_produces_loadable_v2() {
        let (_, pinball) = record();
        let v1 = pinball.to_bytes_v1().unwrap();
        let v2 = migrate_v1(&v1).unwrap();
        assert!(v2.starts_with(MAGIC));
        assert_eq!(PinballContainer::from_bytes(&v2).unwrap().pinball, pinball);
        assert!(matches!(migrate_v1(&v2), Err(PinballError::Format(_))));
    }

    #[test]
    fn corrupt_chunk_is_named() {
        let (program, pinball) = record();
        let bytes = PinballContainer::with_checkpoints(pinball, &program, 128)
            .to_bytes()
            .unwrap();
        // Flip a bit well past the header frame.
        let mut bad = bytes.clone();
        let target = bytes.len() * 3 / 4;
        bad[target] ^= 0x10;
        let err = PinballContainer::from_bytes(&bad).unwrap_err();
        match err {
            PinballError::Chunk { chunk, .. } => assert!(chunk > 0),
            other => panic!("expected Chunk error, got {other:?}"),
        }
    }

    #[test]
    fn lossy_load_recovers_intact_prefix() {
        let (program, pinball) = record();
        let total_events = pinball.events.len();
        let total_instrs = pinball.logged_instructions();
        let bytes = PinballContainer::with_checkpoints(pinball, &program, 128)
            .to_bytes()
            .unwrap();
        // Truncate mid-file: everything before the cut must replay.
        let cut = bytes.len() / 2;
        let loaded = PinballContainer::from_bytes_lossy(&bytes[..cut]).unwrap();
        assert!(loaded.damage.is_some());
        assert!(loaded.events_recovered < total_events);
        assert!(loaded.events_recovered > 0);
        assert_eq!(loaded.events_expected, total_events);
        let mut rep = Replayer::new(Arc::clone(&program), &loaded.container.pinball);
        assert_eq!(rep.run(&mut NullTool), ReplayStatus::Completed);
        assert!(rep.replayed_instructions() <= total_instrs);
    }

    #[test]
    fn digest_is_checkpoint_and_interval_independent() {
        let (program, pinball) = record();
        let plain = PinballContainer::new(pinball.clone());
        let ckpt_a = PinballContainer::with_checkpoints(pinball.clone(), &program, 64);
        let ckpt_b = PinballContainer::with_checkpoints(pinball.clone(), &program, 256);
        assert_eq!(plain.digest(), ckpt_a.digest());
        assert_eq!(ckpt_a.digest(), ckpt_b.digest());
        assert_eq!(plain.digest(), pinball.digest());
    }

    #[test]
    fn digest_distinguishes_different_recordings() {
        let (_, pinball) = record();
        let base = pinball.digest();
        // Any content change — metadata, log, syscalls — moves the digest.
        let mut renamed = pinball.clone();
        renamed.meta.region = "elsewhere".into();
        assert_ne!(base, renamed.digest());
        let mut shorter = pinball.clone();
        shorter.events.pop();
        assert_ne!(base, shorter.digest());
        // And a round-trip through the v2 format preserves it.
        let bytes = PinballContainer::new(pinball).to_bytes().unwrap();
        let reloaded = PinballContainer::from_bytes(&bytes).unwrap();
        assert_eq!(base, reloaded.digest());
    }

    #[test]
    fn empty_log_roundtrips() {
        let (_, mut pinball) = record();
        pinball.events.clear();
        let c = PinballContainer::new(pinball);
        let bytes = c.to_bytes().unwrap();
        assert_eq!(PinballContainer::from_bytes(&bytes).unwrap(), c);
    }
}
