//! The chunked, checksummed, seekable pinball container (v2, v3, and v4).
//!
//! The v1 format compresses the whole pinball as one LZSS blob, so any
//! damage loses the entire recording and every seek restarts replay from
//! the region snapshot. The chunked container fixes both:
//!
//! * the replay log is split into **frames** (see [`pinzip::frame`]), each
//!   independently compressed and protected by a CRC-32 of its compressed
//!   payload — a flipped bit or truncated tail is detected *per chunk*, the
//!   loader names the damaged chunk in a typed [`PinballError::Chunk`], and
//!   [`PinballContainer::from_bytes_lossy`] still recovers the intact
//!   prefix;
//! * **checkpoints** — serialized replayer state captured every
//!   `checkpoint_interval` retired instructions — are embedded between
//!   event chunks, so [`Replayer::seek_to`] restores the nearest preceding
//!   checkpoint and replays only the tail chunk instead of the whole
//!   region: O(chunk) instead of O(region).
//!
//! # Wire layout
//!
//! ```text
//! +--------+          magic  b"DRPB2\n" (v2) / b"DRPB3\n" (v3)  (6 bytes)
//! | magic  |
//! +--------+
//! | frame  |  kind 1: header — meta, snapshot, syscalls,
//! |        |          exit, event count, checkpoint interval
//! +--------+
//! | frame  |  kind 3: checkpoint at chunk k's start (optional)
//! +--------+
//! | frame  |  kind 2: events chunk k (a subslice of the log)
//! +--------+
//! |  ...   |  ... checkpoint/events pairs repeat ...
//! +--------+
//! | frame  |  kind 4: index — offset/instr/ordinal of every frame
//! +--------+
//! | trailer|  u64 LE offset of the index frame + b"PBIX"    (12 bytes)
//! +--------+
//! ```
//!
//! A v2 frame is `[kind u8][varint clen][crc32 LE][LZSS payload]` with a
//! JSON payload. A v3 frame adds one **codec byte** after the kind —
//! `[kind][codec][varint clen][crc32 LE][LZSS payload]` — naming how the
//! payload was serialized before compression (see [`PayloadCodec`]): 0 is
//! JSON, 1 is the [`pinzip::binser`] binary record codec. The v3 writer
//! emits binser payloads (smaller before compression, and much faster to
//! encode and parse than JSON text); the reader dispatches per frame, so a
//! future writer could mix codecs within one file.
//!
//! # v4: columnar events and the shared dictionary
//!
//! **v4** (`DRPB4\n`) keeps the v3 frame wire but changes what the frames
//! hold on the hot path:
//!
//! * events chunks use [`PayloadCodec::Columnar`]: the chunk's events are
//!   packed as parallel field columns (see [`EventColumns`]) rather than a
//!   stream of per-record trees, so a load is a handful of bulk varint
//!   scans and the replayer / slicer / relogger *borrow* records in place
//!   via [`EventRef`](crate::columns::EventRef) — no owned-tree decode;
//! * frame 1 is a [`ChunkKind::Dict`] frame holding the **shared LZSS
//!   dictionary** (trained deterministically on the header strings plus a
//!   prefix of the first chunk's columnar payload, capped at
//!   [`pinzip::DICT_MAX`]); every `Columnar` frame is compressed against
//!   it, clawing back the redundancy per-chunk framing loses. Non-events
//!   frames (header, checkpoints, index, the dict itself) stay
//!   plain-compressed so each decodes without the dictionary;
//! * strings appear only in the header frame, interned once by the
//!   [`pinzip::binser`] string table — event columns are pure integers.
//!
//! [`PinballContainer::open_mapped`] adds a paged load mode for v4 files:
//! the trailer, index, header, and dictionary are read eagerly (all
//! small), and events chunks are paged in on demand, so multi-GiB pinballs
//! replay without ever holding the whole log in memory.
//!
//! [`EventColumns`]: crate::columns::EventColumns
//!
//! Chunk boundaries fall on *event* boundaries (a chunk closes once it has
//! retired `checkpoint_interval` instructions), computed deterministically
//! from the log alone — so load → save round-trips byte-identically, and a
//! plain [`Pinball::to_bytes`] (no checkpoints) emits the same chunking a
//! checkpointed container uses.
//!
//! # The parallel chunk pipeline
//!
//! Because every frame is self-contained, the expensive per-chunk work
//! parallelizes. The v3 writer fans chunk encoding (binser serialize →
//! LZSS compress → CRC) across a worker pool and reassembles the frames in
//! order, so the output is **byte-identical** to the serial reference
//! encoder ([`PinballContainer::to_bytes_serial`]). The reader walks frame
//! *headers* sequentially with [`pinzip::frame::peek_frame`] (cheap — no
//! payload bytes touched), then fans the CRC verify + decompress +
//! deserialize of every body frame across the pool, and reassembles in
//! order with earliest-damage-wins semantics so the error taxonomy matches
//! the serial scan exactly.
//!
//! # Compatibility
//!
//! [`PinballContainer::from_bytes`] (and [`Pinball::from_bytes`])
//! auto-detect the format by the magic: v3, v2, then the v1 single-blob
//! fallback — see [`detect_version`]. [`migrate`] rewrites any older
//! format as v3 (preserving embedded checkpoints); [`migrate_v1`] still
//! rewrites a v1 blob as v2 for tooling pinned to that format, and
//! [`Pinball::to_bytes_v1`] / [`PinballContainer::to_bytes_v2`] still
//! write the old formats. The content digest ([`PinballDigest`]) is a
//! function of the recording alone, so the same pinball digests
//! identically whichever container version holds it.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use minivm::{ExecState, Program, Snapshot};
use pinzip::binser;
use pinzip::crc32::crc32;
use pinzip::frame::{
    decode_payload, decode_payload_with_dict, peek_frame, write_coded_frame,
    write_coded_frame_with_dict, write_frame, RawFrame,
};

use crate::columns::EventColumns;
use crate::pinball::{Pinball, PinballError, PinballMeta, RecordedExit, ReplayEvent};
use crate::replay::Replayer;

/// Magic bytes opening a v2 container.
pub const MAGIC: &[u8; 6] = b"DRPB2\n";
/// Magic bytes opening a v3 container.
pub const MAGIC_V3: &[u8; 6] = b"DRPB3\n";
/// Magic bytes opening a v4 container.
pub const MAGIC_V4: &[u8; 6] = b"DRPB4\n";
/// Magic bytes closing the 12-byte trailer.
pub const TRAILER_MAGIC: &[u8; 4] = b"PBIX";
/// Default checkpoint cadence, in retired instructions per chunk.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 4096;

pub(crate) const KIND_HEADER: u8 = 1;
pub(crate) const KIND_EVENTS: u8 = 2;
pub(crate) const KIND_CHECKPOINT: u8 = 3;
pub(crate) const KIND_INDEX: u8 = 4;
pub(crate) const KIND_DICT: u8 = 5;

/// Container format generations, as detected from leading bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContainerVersion {
    /// Single LZSS blob over the JSON pinball (no magic).
    V1,
    /// Chunked frames with JSON payloads, magic `DRPB2\n`.
    V2,
    /// Chunked frames with a per-frame codec byte, magic `DRPB3\n`.
    V3,
    /// Columnar events and a shared LZSS dictionary, magic `DRPB4\n`.
    V4,
}

impl fmt::Display for ContainerVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ContainerVersion::V1 => "v1",
            ContainerVersion::V2 => "v2",
            ContainerVersion::V3 => "v3",
            ContainerVersion::V4 => "v4",
        })
    }
}

/// Detects the container generation from the magic bytes. Anything without
/// a container magic is assumed to be a v1 blob (the v1 format has no
/// magic of its own).
pub fn detect_version(bytes: &[u8]) -> ContainerVersion {
    if bytes.starts_with(MAGIC_V4) {
        ContainerVersion::V4
    } else if bytes.starts_with(MAGIC_V3) {
        ContainerVersion::V3
    } else if bytes.starts_with(MAGIC) {
        ContainerVersion::V2
    } else {
        ContainerVersion::V1
    }
}

/// True when `bytes` open with a chunked-container magic (v2 or v3).
pub(crate) fn has_container_magic(bytes: &[u8]) -> bool {
    detect_version(bytes) != ContainerVersion::V1
}

/// How a frame's payload was serialized before LZSS compression — the v3
/// codec byte. v2 frames carry no codec byte and are implicitly
/// [`PayloadCodec::Json`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PayloadCodec {
    /// JSON text (codec byte 0).
    Json,
    /// [`pinzip::binser`] binary records (codec byte 1).
    Binary,
    /// Varint-packed parallel field columns (codec byte 2, v4 events
    /// frames) — see [`EventColumns`]. The
    /// only codec compressed against the container's shared dictionary.
    Columnar,
}

impl PayloadCodec {
    /// The wire byte naming this codec in a v3 frame header.
    pub const fn byte(self) -> u8 {
        match self {
            PayloadCodec::Json => 0,
            PayloadCodec::Binary => 1,
            PayloadCodec::Columnar => 2,
        }
    }

    /// Parses a wire codec byte; `None` for unassigned values.
    pub fn from_byte(b: u8) -> Option<PayloadCodec> {
        match b {
            0 => Some(PayloadCodec::Json),
            1 => Some(PayloadCodec::Binary),
            2 => Some(PayloadCodec::Columnar),
            _ => None,
        }
    }
}

impl fmt::Display for PayloadCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PayloadCodec::Json => "json",
            PayloadCodec::Binary => "binary",
            PayloadCodec::Columnar => "columnar",
        })
    }
}

/// What a container frame holds — used by [`PinballError::Chunk`] to name
/// the damaged frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkKind {
    /// The header frame (metadata, snapshot, syscalls, exit).
    Header,
    /// An events chunk (a subslice of the replay log).
    Events,
    /// An embedded replay checkpoint.
    Checkpoint,
    /// The footer index frame.
    Index,
    /// The shared LZSS dictionary (v4, frame 1).
    Dict,
    /// The frame was too damaged to tell (kind byte unreadable or invalid).
    Unknown,
}

impl fmt::Display for ChunkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ChunkKind::Header => "header",
            ChunkKind::Events => "events",
            ChunkKind::Checkpoint => "checkpoint",
            ChunkKind::Index => "index",
            ChunkKind::Dict => "dict",
            ChunkKind::Unknown => "unknown",
        })
    }
}

pub(crate) fn kind_of(byte: u8) -> ChunkKind {
    match byte {
        KIND_HEADER => ChunkKind::Header,
        KIND_EVENTS => ChunkKind::Events,
        KIND_CHECKPOINT => ChunkKind::Checkpoint,
        KIND_INDEX => ChunkKind::Index,
        KIND_DICT => ChunkKind::Dict,
        _ => ChunkKind::Unknown,
    }
}

/// Content address of a pinball: a fold of the CRC-32s of its canonical
/// chunk payloads.
///
/// The digest covers everything replay depends on — metadata, the entry
/// snapshot, the syscall queues, the exit, and every events chunk (split at
/// the canonical [`DEFAULT_CHECKPOINT_INTERVAL`] cadence regardless of the
/// container's own interval) — and deliberately excludes embedded
/// checkpoints. Two containers holding the same recording therefore share a
/// digest even when one carries checkpoints and the other does not, which
/// is what lets a content-addressed store (the `drserve` pinball store and
/// slice cache) dedupe repeated uploads of the same pinball. The digest is
/// also container-version independent: the canonical payloads are always
/// JSON, so a v2 and a v3 file of the same recording digest identically.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PinballDigest(pub u64);

impl fmt::Display for PinballDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a over a byte stream — the digest's CRC combiner.
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Serialized replayer state at a known log position: restoring one and
/// replaying forward reproduces the execution exactly, because the VM is
/// deterministic given the log and the remaining syscall queues.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayCheckpoint {
    /// Instructions retired when the checkpoint was taken.
    pub instr: u64,
    /// Replay log position (event index).
    pub pos: usize,
    /// Instructions already retired inside event `pos` (0 at an event
    /// boundary — where embedded checkpoints always sit).
    pub done_in_event: u64,
    /// Full executor state, including the region-relative counters that a
    /// plain [`Snapshot`] deliberately resets.
    pub exec: ExecState,
    /// Remaining unconsumed syscall results, per thread.
    pub env: Vec<Vec<i64>>,
}

/// The header frame's payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ContainerHeader {
    pub(crate) meta: PinballMeta,
    pub(crate) snapshot: Snapshot,
    pub(crate) syscalls: Vec<Vec<i64>>,
    pub(crate) exit: RecordedExit,
    pub(crate) num_events: u64,
    pub(crate) checkpoint_interval: u64,
}

/// One entry of the footer index: where a frame lives and what it covers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexEntry {
    /// Frame ordinal in the file (0 = header).
    pub chunk: usize,
    /// What the frame holds.
    pub kind: ChunkKind,
    /// Byte offset of the frame in the file.
    pub offset: u64,
    /// First retired-instruction count the frame covers (events chunks and
    /// checkpoints; 0 for header and index).
    pub instr: u64,
}

/// A pinball plus its embedded checkpoints — the in-memory form of a
/// chunked container. Loading preserves the checkpoints, so a load → save
/// cycle is byte-identical without replaying anything.
#[derive(Debug, Clone, PartialEq)]
pub struct PinballContainer {
    /// The recorded region.
    pub pinball: Pinball,
    /// Embedded checkpoints, ascending by `instr`, each sitting at a chunk
    /// boundary of the serialized form.
    pub checkpoints: Vec<ReplayCheckpoint>,
    /// Chunk cadence in retired instructions.
    pub checkpoint_interval: u64,
}

/// The result of a best-effort load: the intact prefix plus what was lost.
#[derive(Debug, Clone)]
pub struct LossyLoad {
    /// Container holding the recovered prefix of the log (and every
    /// checkpoint that precedes the damage).
    pub container: PinballContainer,
    /// The damage that ended the scan, if any (`None` means the file was
    /// fully intact).
    pub damage: Option<PinballError>,
    /// Events recovered from intact chunks.
    pub events_recovered: usize,
    /// Events the header promised.
    pub events_expected: usize,
}

impl PinballContainer {
    /// Wraps a pinball with no checkpoints at the default cadence.
    pub fn new(pinball: Pinball) -> PinballContainer {
        PinballContainer {
            pinball,
            checkpoints: Vec::new(),
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
        }
    }

    /// Wraps a pinball and captures a checkpoint at every chunk boundary by
    /// replaying it once under `program`. `interval` is the chunk cadence
    /// in retired instructions (clamped to at least 1).
    ///
    /// # Panics
    ///
    /// Panics on replay divergence, like [`Replayer::run`] — a pinball that
    /// cannot replay cannot be checkpointed.
    pub fn with_checkpoints(
        pinball: Pinball,
        program: &Arc<Program>,
        interval: u64,
    ) -> PinballContainer {
        let interval = interval.max(1);
        let ranges = chunk_ranges(&pinball.events, interval);
        let mut replayer = Replayer::new(Arc::clone(program), &pinball);
        let mut checkpoints = Vec::new();
        for &(start_ev, _end_ev, _start_instr) in ranges.iter().skip(1) {
            replayer.run_to_event(start_ev);
            checkpoints.push(replayer.checkpoint());
        }
        PinballContainer {
            pinball,
            checkpoints,
            checkpoint_interval: interval,
        }
    }

    /// The container's content digest — see [`PinballDigest`]. Embedded
    /// checkpoints do not contribute: a checkpointed and a checkpoint-free
    /// container over the same recording digest identically.
    pub fn digest(&self) -> PinballDigest {
        digest_pinball(&self.pinball)
    }

    /// The checkpoint with the greatest `instr` not exceeding `target`, if
    /// any.
    pub fn nearest_checkpoint(&self, target: u64) -> Option<&ReplayCheckpoint> {
        self.checkpoints
            .iter()
            .take_while(|cp| cp.instr <= target)
            .last()
    }

    /// Serializes the container (v4 format: columnar events compressed
    /// against the shared dictionary), encoding chunks on a worker pool
    /// when more than one core is available. The output is byte-identical
    /// to [`PinballContainer::to_bytes_serial`].
    ///
    /// # Errors
    ///
    /// Infallible in practice (the columnar and binary codecs cannot fail
    /// on these types); the `Result` is kept for API stability with the
    /// fallible v2 path.
    pub fn to_bytes(&self) -> Result<Vec<u8>, PinballError> {
        Ok(write_container_v4(
            &self.pinball,
            &self.checkpoints,
            self.checkpoint_interval,
            true,
        ))
    }

    /// The serial reference encoder: identical output to
    /// [`PinballContainer::to_bytes`], produced on the calling thread with
    /// no pipeline. Exists so tests (and suspicious tools) can verify the
    /// parallel encoder byte-for-byte.
    ///
    /// # Errors
    ///
    /// As [`PinballContainer::to_bytes`].
    pub fn to_bytes_serial(&self) -> Result<Vec<u8>, PinballError> {
        Ok(write_container_v4(
            &self.pinball,
            &self.checkpoints,
            self.checkpoint_interval,
            false,
        ))
    }

    /// Serializes the container in the v3 format (binser record payloads,
    /// no dictionary). Kept for compatibility tooling and as the bench
    /// baseline; new files should use [`PinballContainer::to_bytes`].
    ///
    /// # Errors
    ///
    /// Infallible in practice, as [`PinballContainer::to_bytes`].
    pub fn to_bytes_v3(&self) -> Result<Vec<u8>, PinballError> {
        Ok(write_container_v3(
            &self.pinball,
            &self.checkpoints,
            self.checkpoint_interval,
            true,
        ))
    }

    /// Serializes the container in the legacy v2 format (JSON payloads,
    /// serial encoder). Kept for compatibility tooling; new files should
    /// use [`PinballContainer::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`PinballError::Serialize`] when JSON encoding fails.
    pub fn to_bytes_v2(&self) -> Result<Vec<u8>, PinballError> {
        write_container_v2(&self.pinball, &self.checkpoints, self.checkpoint_interval)
    }

    /// Deserializes a container, auto-detecting the format: v3 and v2
    /// bytes load strictly (any damaged frame is an error naming the
    /// chunk); v1 blobs load as a container with no checkpoints.
    ///
    /// # Errors
    ///
    /// Returns a typed [`PinballError`]: [`PinballError::Chunk`] for a
    /// damaged frame, [`PinballError::Format`] for structural problems,
    /// or the v1 errors for v1 blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<PinballContainer, PinballError> {
        if !has_container_magic(bytes) {
            return Ok(PinballContainer::new(Pinball::from_bytes_v1(bytes)?));
        }
        let loaded = scan(bytes)?;
        match loaded.damage {
            None => Ok(loaded.container),
            Some(e) => Err(e),
        }
    }

    /// Best-effort deserialization: verifies frames in order and returns
    /// the intact prefix together with the damage that ended the scan (if
    /// any). Replay of the recovered container reproduces the recording up
    /// to the damaged chunk.
    ///
    /// # Errors
    ///
    /// Returns an error only when nothing is recoverable: the magic or the
    /// header frame itself is damaged (or the bytes are a damaged v1 blob,
    /// which has no intact prefix to salvage).
    pub fn from_bytes_lossy(bytes: &[u8]) -> Result<LossyLoad, PinballError> {
        if !has_container_magic(bytes) {
            let pinball = Pinball::from_bytes_v1(bytes)?;
            let expected = pinball.events.len();
            return Ok(LossyLoad {
                container: PinballContainer::new(pinball),
                damage: None,
                events_recovered: expected,
                events_expected: expected,
            });
        }
        scan(bytes)
    }

    /// Writes the container to a file.
    ///
    /// # Errors
    ///
    /// Returns [`PinballError::Io`] on filesystem errors and
    /// [`PinballError::Serialize`] on encoding errors.
    pub fn save(&self, path: &std::path::Path) -> Result<(), PinballError> {
        std::fs::write(path, self.to_bytes()?).map_err(|e| PinballError::Io(e.to_string()))
    }

    /// Reads a container from a file (v1–v4, auto-detected).
    ///
    /// # Errors
    ///
    /// As [`PinballContainer::from_bytes`], plus [`PinballError::Io`].
    pub fn load(path: &std::path::Path) -> Result<PinballContainer, PinballError> {
        let bytes = std::fs::read(path).map_err(|e| PinballError::Io(e.to_string()))?;
        PinballContainer::from_bytes(&bytes)
    }

    /// Opens a v4 container file in paged (mapped) mode: the trailer,
    /// index, header, and shared dictionary are read eagerly (all small);
    /// events chunks and checkpoints are paged in on demand. This is the
    /// load mode for pinballs too large to hold in memory — see
    /// [`MappedContainer`](crate::view::MappedContainer).
    ///
    /// # Errors
    ///
    /// Returns [`PinballError::Io`] on filesystem errors,
    /// [`PinballError::Format`] for non-v4 files, and
    /// [`PinballError::Chunk`] when the trailer, index, header, or
    /// dictionary frame is damaged.
    pub fn open_mapped(
        path: &std::path::Path,
    ) -> Result<crate::view::MappedContainer, PinballError> {
        crate::view::MappedContainer::open(path)
    }
}

/// Rewrites a v1 single-blob pinball as a **v2** container (no checkpoints
/// — replay it through [`PinballContainer::with_checkpoints`] to add
/// them). Kept for tooling pinned to the v2 format; [`migrate`] targets
/// the current format instead.
///
/// # Errors
///
/// Returns the v1 decode errors, or [`PinballError::Format`] when `bytes`
/// is already a chunked container.
pub fn migrate_v1(bytes: &[u8]) -> Result<Vec<u8>, PinballError> {
    if has_container_magic(bytes) {
        return Err(PinballError::Format(
            "already a chunked container; nothing to migrate".into(),
        ));
    }
    PinballContainer::new(Pinball::from_bytes_v1(bytes)?).to_bytes_v2()
}

/// Rewrites a v1, v2, or v3 pinball as a v4 container, preserving any
/// embedded checkpoints and the checkpoint interval. The recording's
/// [`PinballDigest`] is unchanged by migration.
///
/// # Errors
///
/// Returns the load errors of the source format, or
/// [`PinballError::Format`] when `bytes` is already a v4 container.
pub fn migrate(bytes: &[u8]) -> Result<Vec<u8>, PinballError> {
    if detect_version(bytes) == ContainerVersion::V4 {
        return Err(PinballError::Format(
            "already a v4 container; nothing to migrate".into(),
        ));
    }
    PinballContainer::from_bytes(bytes)?.to_bytes()
}

/// Computes a pinball's content digest: the CRC-32 of each canonical chunk
/// payload (header fields, then every events chunk at the
/// [`DEFAULT_CHECKPOINT_INTERVAL`] cadence), folded with FNV-1a.
///
/// Chunking is recomputed at the canonical interval rather than taken from
/// any particular container, so the digest is a function of the recording
/// alone. Serialization of these plain data types cannot fail (the same
/// encoding backs [`Pinball::to_bytes`]), so the digest is infallible.
pub(crate) fn digest_pinball(pinball: &Pinball) -> PinballDigest {
    let part = |value: &dyn erased_ser::ErasedSer| -> u32 {
        crc32(&value.to_json().expect("pinball fields JSON-serialize"))
    };
    let mut h = FNV_OFFSET;
    for crc in [
        part(&pinball.meta),
        part(&pinball.snapshot),
        part(&pinball.syscalls),
        part(&pinball.exit),
    ] {
        h = fnv1a(h, &crc.to_le_bytes());
    }
    for (start_ev, end_ev, _) in chunk_ranges(&pinball.events, DEFAULT_CHECKPOINT_INTERVAL) {
        let crc = part(&&pinball.events[start_ev..end_ev]);
        h = fnv1a(h, &crc.to_le_bytes());
    }
    PinballDigest(h)
}

/// Object-safe serialization shim so [`digest_pinball`] can CRC
/// heterogeneous fields through one closure.
mod erased_ser {
    use serde::Serialize;

    pub(crate) trait ErasedSer {
        fn to_json(&self) -> Result<Vec<u8>, serde_json::Error>;
    }

    impl<T: Serialize> ErasedSer for T {
        fn to_json(&self) -> Result<Vec<u8>, serde_json::Error> {
            serde_json::to_vec(self)
        }
    }
}

/// Splits the log into chunks of at least `interval` retired instructions,
/// closed at event boundaries: `(start_event, end_event, start_instr)` per
/// chunk. Deterministic in the log and interval alone, so serialization is
/// reproducible. An empty log yields no chunks.
fn chunk_ranges(events: &[ReplayEvent], interval: u64) -> Vec<(usize, usize, u64)> {
    let mut ranges = Vec::new();
    let mut start_ev = 0usize;
    let mut start_instr = 0u64;
    let mut instr = 0u64;
    for (i, ev) in events.iter().enumerate() {
        if let ReplayEvent::Run { steps, .. } = ev {
            instr += steps;
        }
        if instr - start_instr >= interval {
            ranges.push((start_ev, i + 1, start_instr));
            start_ev = i + 1;
            start_instr = instr;
        }
    }
    if start_ev < events.len() {
        ranges.push((start_ev, events.len(), start_instr));
    }
    ranges
}

fn ser<T: Serialize>(value: &T) -> Result<Vec<u8>, PinballError> {
    serde_json::to_vec(value).map_err(|e| PinballError::Serialize(e.to_string()))
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// How many workers to spin up for `jobs` independent chunk jobs: bounded
/// by the core count and the job count, and capped so a huge container
/// does not oversubscribe the machine.
fn worker_count(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.min(jobs).min(8)
}

/// Runs `f(0..n)` across a scoped worker pool and returns the results in
/// index order — the ordered-reassembly primitive both pipeline directions
/// share. Work is distributed by an atomic cursor (dynamic load balancing:
/// chunk sizes vary, so static striping would leave workers idle). With
/// one core, one job, or `parallel = false`, everything runs inline on the
/// calling thread — same results, no threads spawned.
fn run_ordered<T, F>(n: usize, parallel: bool, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = worker_count(n);
    if !parallel || workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                *slots[i].lock().expect("slot lock") = Some(v);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("worker filled slot")
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

/// Serializes a pinball (plus optional checkpoints) into v2 container
/// bytes. A checkpoint is emitted immediately before the events chunk
/// whose start position equals its `pos`.
pub(crate) fn write_container_v2(
    pinball: &Pinball,
    checkpoints: &[ReplayCheckpoint],
    interval: u64,
) -> Result<Vec<u8>, PinballError> {
    let interval = interval.max(1);
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let mut index = Vec::new();
    let mut chunk = 0usize;
    let header = ContainerHeader {
        meta: pinball.meta.clone(),
        snapshot: pinball.snapshot.clone(),
        syscalls: pinball.syscalls.clone(),
        exit: pinball.exit,
        num_events: pinball.events.len() as u64,
        checkpoint_interval: interval,
    };
    let off = write_frame(&mut out, KIND_HEADER, &ser(&header)?);
    index.push(IndexEntry {
        chunk,
        kind: ChunkKind::Header,
        offset: off as u64,
        instr: 0,
    });
    chunk += 1;
    for (start_ev, end_ev, start_instr) in chunk_ranges(&pinball.events, interval) {
        if let Some(cp) = checkpoints.iter().find(|cp| cp.pos == start_ev) {
            let off = write_frame(&mut out, KIND_CHECKPOINT, &ser(cp)?);
            index.push(IndexEntry {
                chunk,
                kind: ChunkKind::Checkpoint,
                offset: off as u64,
                instr: cp.instr,
            });
            chunk += 1;
        }
        let chunk_events: &[ReplayEvent] = &pinball.events[start_ev..end_ev];
        let off = write_frame(&mut out, KIND_EVENTS, &ser(&chunk_events)?);
        index.push(IndexEntry {
            chunk,
            kind: ChunkKind::Events,
            offset: off as u64,
            instr: start_instr,
        });
        chunk += 1;
    }
    index.push(IndexEntry {
        chunk,
        kind: ChunkKind::Index,
        offset: 0, // patched below: the index cannot know its own offset
        instr: 0,
    });
    let index_off = out.len() as u64;
    if let Some(last) = index.last_mut() {
        last.offset = index_off;
    }
    write_frame(&mut out, KIND_INDEX, &ser(&index)?);
    out.extend_from_slice(&index_off.to_le_bytes());
    out.extend_from_slice(TRAILER_MAGIC);
    Ok(out)
}

/// One planned frame of a v3 container — the unit of parallel encoding.
enum FramePlan<'a> {
    Header(&'a ContainerHeader),
    Checkpoint(&'a ReplayCheckpoint),
    Events {
        events: &'a [ReplayEvent],
        start_instr: u64,
    },
}

/// Encodes one complete coded frame (binser serialize → LZSS → CRC →
/// header) into a standalone byte vector, ready for in-order concatenation.
fn encode_plan(plan: &FramePlan<'_>) -> (ChunkKind, u64, Vec<u8>) {
    let (kind_byte, kind, instr, payload) = match plan {
        FramePlan::Header(h) => (KIND_HEADER, ChunkKind::Header, 0, binser::to_vec(*h)),
        FramePlan::Checkpoint(cp) => (
            KIND_CHECKPOINT,
            ChunkKind::Checkpoint,
            cp.instr,
            binser::to_vec(*cp),
        ),
        FramePlan::Events {
            events,
            start_instr,
        } => (
            KIND_EVENTS,
            ChunkKind::Events,
            *start_instr,
            binser::to_vec(*events),
        ),
    };
    let mut bytes = Vec::new();
    write_coded_frame(&mut bytes, kind_byte, PayloadCodec::Binary.byte(), &payload);
    (kind, instr, bytes)
}

/// Serializes a pinball (plus optional checkpoints) into v3 container
/// bytes: coded frames with binser payloads. With `parallel`, chunk
/// encoding fans out across a worker pool; reassembly is in frame order,
/// so the output is byte-identical either way. Infallible: the binary
/// codec cannot fail on these plain data types.
pub(crate) fn write_container_v3(
    pinball: &Pinball,
    checkpoints: &[ReplayCheckpoint],
    interval: u64,
    parallel: bool,
) -> Vec<u8> {
    let interval = interval.max(1);
    let header = ContainerHeader {
        meta: pinball.meta.clone(),
        snapshot: pinball.snapshot.clone(),
        syscalls: pinball.syscalls.clone(),
        exit: pinball.exit,
        num_events: pinball.events.len() as u64,
        checkpoint_interval: interval,
    };
    let mut plans = vec![FramePlan::Header(&header)];
    for (start_ev, end_ev, start_instr) in chunk_ranges(&pinball.events, interval) {
        if let Some(cp) = checkpoints.iter().find(|cp| cp.pos == start_ev) {
            plans.push(FramePlan::Checkpoint(cp));
        }
        plans.push(FramePlan::Events {
            events: &pinball.events[start_ev..end_ev],
            start_instr,
        });
    }

    let encoded = run_ordered(plans.len(), parallel, |i| encode_plan(&plans[i]));

    let total: usize = encoded.iter().map(|(_, _, b)| b.len()).sum();
    let mut out = Vec::with_capacity(MAGIC_V3.len() + total + 64 + 32 * encoded.len());
    out.extend_from_slice(MAGIC_V3);
    let mut index = Vec::with_capacity(encoded.len() + 1);
    for (chunk, (kind, instr, bytes)) in encoded.iter().enumerate() {
        index.push(IndexEntry {
            chunk,
            kind: *kind,
            offset: out.len() as u64,
            instr: *instr,
        });
        out.extend_from_slice(bytes);
    }
    let index_off = out.len() as u64;
    index.push(IndexEntry {
        chunk: encoded.len(),
        kind: ChunkKind::Index,
        offset: index_off,
        instr: 0,
    });
    write_coded_frame(
        &mut out,
        KIND_INDEX,
        PayloadCodec::Binary.byte(),
        &binser::to_vec(&index),
    );
    out.extend_from_slice(&index_off.to_le_bytes());
    out.extend_from_slice(TRAILER_MAGIC);
    out
}

/// Builds the v4 shared dictionary, deterministically: the header strings
/// (the container's interned string table contents) followed by a prefix
/// of the first chunk's uncompressed columnar payload, capped at
/// [`pinzip::DICT_MAX`]. Every chunk payload opens with the same column
/// structure the first chunk does, so seeding the LZSS window with it lets
/// later chunks match their leading columns against the dictionary instead
/// of emitting literals.
fn build_dict(meta: &PinballMeta, first_chunk_payload: Option<&[u8]>) -> Vec<u8> {
    let mut dict = Vec::with_capacity(pinzip::DICT_MAX);
    dict.extend_from_slice(meta.program.as_bytes());
    dict.extend_from_slice(meta.region.as_bytes());
    dict.truncate(pinzip::DICT_MAX);
    if let Some(p) = first_chunk_payload {
        let room = pinzip::DICT_MAX - dict.len();
        dict.extend_from_slice(&p[..p.len().min(room)]);
    }
    dict
}

/// One planned frame of a v4 container. Unlike the v3 plan, events
/// payloads are pre-encoded (the dictionary is trained on the first one),
/// so the parallel stage is pure compress + frame.
enum FramePlan4<'a> {
    Header(Vec<u8>),
    Dict,
    Checkpoint(&'a ReplayCheckpoint),
    Events { payload: Vec<u8>, start_instr: u64 },
}

/// Serializes a pinball (plus optional checkpoints) into v4 container
/// bytes: columnar events frames compressed against a shared dictionary,
/// everything else plain binser frames. With `parallel`, both the columnar
/// packing and the per-frame compression fan out across a worker pool;
/// reassembly is in frame order, so the output is byte-identical either
/// way. Infallible: neither codec can fail on these plain data types.
pub(crate) fn write_container_v4(
    pinball: &Pinball,
    checkpoints: &[ReplayCheckpoint],
    interval: u64,
    parallel: bool,
) -> Vec<u8> {
    let interval = interval.max(1);
    let header = ContainerHeader {
        meta: pinball.meta.clone(),
        snapshot: pinball.snapshot.clone(),
        syscalls: pinball.syscalls.clone(),
        exit: pinball.exit,
        num_events: pinball.events.len() as u64,
        checkpoint_interval: interval,
    };
    let ranges = chunk_ranges(&pinball.events, interval);
    // Stage 1: pack every chunk's events into columnar payloads.
    let payloads = run_ordered(ranges.len(), parallel, |i| {
        let (start_ev, end_ev, _) = ranges[i];
        EventColumns::from_events(&pinball.events[start_ev..end_ev]).encode_to_vec()
    });
    let dict = build_dict(&pinball.meta, payloads.first().map(Vec::as_slice));

    let mut plans = vec![
        FramePlan4::Header(binser::to_vec(&header)),
        FramePlan4::Dict,
    ];
    for ((start_ev, _, start_instr), payload) in ranges.iter().zip(payloads) {
        if let Some(cp) = checkpoints.iter().find(|cp| cp.pos == *start_ev) {
            plans.push(FramePlan4::Checkpoint(cp));
        }
        plans.push(FramePlan4::Events {
            payload,
            start_instr: *start_instr,
        });
    }

    // Stage 2: compress + frame each plan independently.
    let encoded = run_ordered(plans.len(), parallel, |i| {
        let mut bytes = Vec::new();
        match &plans[i] {
            FramePlan4::Header(payload) => {
                write_coded_frame(
                    &mut bytes,
                    KIND_HEADER,
                    PayloadCodec::Binary.byte(),
                    payload,
                );
                (ChunkKind::Header, 0, bytes)
            }
            FramePlan4::Dict => {
                write_coded_frame(&mut bytes, KIND_DICT, PayloadCodec::Binary.byte(), &dict);
                (ChunkKind::Dict, 0, bytes)
            }
            FramePlan4::Checkpoint(cp) => {
                write_coded_frame(
                    &mut bytes,
                    KIND_CHECKPOINT,
                    PayloadCodec::Binary.byte(),
                    &binser::to_vec(*cp),
                );
                (ChunkKind::Checkpoint, cp.instr, bytes)
            }
            FramePlan4::Events {
                payload,
                start_instr,
            } => {
                write_coded_frame_with_dict(
                    &mut bytes,
                    KIND_EVENTS,
                    PayloadCodec::Columnar.byte(),
                    &dict,
                    payload,
                );
                (ChunkKind::Events, *start_instr, bytes)
            }
        }
    });

    let total: usize = encoded.iter().map(|(_, _, b)| b.len()).sum();
    let mut out = Vec::with_capacity(MAGIC_V4.len() + total + 64 + 32 * encoded.len());
    out.extend_from_slice(MAGIC_V4);
    let mut index = Vec::with_capacity(encoded.len() + 1);
    for (chunk, (kind, instr, bytes)) in encoded.iter().enumerate() {
        index.push(IndexEntry {
            chunk,
            kind: *kind,
            offset: out.len() as u64,
            instr: *instr,
        });
        out.extend_from_slice(bytes);
    }
    let index_off = out.len() as u64;
    index.push(IndexEntry {
        chunk: encoded.len(),
        kind: ChunkKind::Index,
        offset: index_off,
        instr: 0,
    });
    write_coded_frame(
        &mut out,
        KIND_INDEX,
        PayloadCodec::Binary.byte(),
        &binser::to_vec(&index),
    );
    out.extend_from_slice(&index_off.to_le_bytes());
    out.extend_from_slice(TRAILER_MAGIC);
    out
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

pub(crate) fn chunk_err(chunk: usize, kind: ChunkKind, reason: impl fmt::Display) -> PinballError {
    PinballError::Chunk {
        chunk,
        kind,
        reason: reason.to_string(),
    }
}

/// Deserializes one frame payload according to its codec byte: absent
/// (v2 frame) or 0 means JSON, 1 means binser.
pub(crate) fn decode_by_codec<T: Deserialize>(
    payload: &[u8],
    codec: Option<u8>,
) -> Result<T, String> {
    match codec {
        None => serde_json::from_slice(payload).map_err(|e| e.to_string()),
        Some(b) => match PayloadCodec::from_byte(b) {
            Some(PayloadCodec::Json) => serde_json::from_slice(payload).map_err(|e| e.to_string()),
            Some(PayloadCodec::Binary) => binser::from_slice(payload).map_err(|e| e.to_string()),
            Some(PayloadCodec::Columnar) => Err(
                "columnar payloads are not record streams (only events frames may use codec 2)"
                    .into(),
            ),
            None => Err(format!("unknown payload codec {b}")),
        },
    }
}

/// A decoded body frame of the scan pipeline.
enum BodyPayload {
    Events(Vec<ReplayEvent>),
    Checkpoint(ReplayCheckpoint),
}

/// Scans a v2 or v3 container, verifying every frame's CRC, and returns
/// the recovered prefix plus the first damage found (as
/// [`LossyLoad::damage`]). The header frame must be intact — without it
/// there is no snapshot to replay from, so damage there is a hard error.
///
/// The walk over frame *headers* is sequential (frame lengths chain), but
/// the expensive per-frame work — CRC verify, LZSS decompress, payload
/// deserialize — fans out across a worker pool and reassembles in order.
/// Damage is attributed to the earliest damaged chunk, exactly as a serial
/// front-to-back scan would report it, and only events from chunks before
/// that point are kept.
fn scan(bytes: &[u8]) -> Result<LossyLoad, PinballError> {
    let version = detect_version(bytes);
    let has_codec = matches!(version, ContainerVersion::V3 | ContainerVersion::V4);
    let mut pos = MAGIC.len();

    // Header frame: required, decoded strictly before anything else.
    let header: ContainerHeader = {
        let raw = peek_frame(bytes, pos, has_codec)
            .map_err(|e| chunk_err(0, peek_kind(bytes, pos), e))?;
        if raw.kind != KIND_HEADER {
            return Err(chunk_err(
                0,
                kind_of(raw.kind),
                "first frame is not the container header",
            ));
        }
        let payload =
            decode_payload(bytes, &raw).map_err(|e| chunk_err(0, ChunkKind::Header, e))?;
        pos += raw.encoded_len;
        decode_by_codec(&payload, raw.codec)
            .map_err(|e| chunk_err(0, ChunkKind::Header, format!("bad header payload: {e}")))?
    };

    // Sequential header walk: collect body frames without touching their
    // payload bytes. Stops at the index frame or the first structural
    // damage; a CRC-damaged body frame passes through here (its header is
    // intact) and is caught by the decode stage below, at the same chunk
    // ordinal a serial scan would report.
    let mut chunk = 1usize;
    let mut body: Vec<(usize, RawFrame)> = Vec::new();
    let mut index_frame: Option<(usize, RawFrame, usize)> = None;
    let mut walk_damage: Option<PinballError> = None;

    // v4: frame 1 is the shared dictionary, which every columnar events
    // frame below decompresses against. Damage here is attributed to chunk
    // 1 and ends the scan — without the dictionary no events are
    // recoverable (the intact header still loads, with an empty log).
    let mut dict: Vec<u8> = Vec::new();
    if version == ContainerVersion::V4 {
        if pos >= bytes.len() {
            walk_damage = Some(PinballError::Unsealed {
                events_recovered: 0,
                events_expected: header.num_events as usize,
            });
        } else {
            match peek_frame(bytes, pos, true) {
                Ok(raw)
                    if raw.kind == KIND_DICT && raw.codec != Some(PayloadCodec::Binary.byte()) =>
                {
                    walk_damage = Some(chunk_err(
                        1,
                        ChunkKind::Dict,
                        "dictionary frame carries a non-binary codec byte",
                    ));
                }
                Ok(raw) if raw.kind == KIND_DICT => match decode_payload(bytes, &raw) {
                    Ok(d) => {
                        dict = d;
                        pos += raw.encoded_len;
                        chunk = 2;
                    }
                    Err(e) => walk_damage = Some(chunk_err(1, ChunkKind::Dict, e)),
                },
                Ok(raw) => {
                    walk_damage = Some(chunk_err(
                        1,
                        kind_of(raw.kind),
                        "second frame is not the shared dictionary",
                    ));
                }
                Err(e) => walk_damage = Some(chunk_err(1, peek_kind(bytes, pos), e)),
            }
        }
    }

    while walk_damage.is_none() {
        if pos >= bytes.len() {
            // A clean walk to end-of-file with no index frame: the file is
            // a valid but unsealed prefix (a stream still being written).
            // The recovered count is patched after reassembly below; decode
            // damage in an earlier chunk still overrides this marker.
            walk_damage = Some(PinballError::Unsealed {
                events_recovered: 0,
                events_expected: header.num_events as usize,
            });
            break;
        }
        let frame_off = pos;
        let raw = match peek_frame(bytes, pos, has_codec) {
            Ok(r) => r,
            Err(e) => {
                walk_damage = Some(chunk_err(chunk, peek_kind(bytes, frame_off), e));
                break;
            }
        };
        pos += raw.encoded_len;
        match raw.kind {
            KIND_EVENTS | KIND_CHECKPOINT => {
                body.push((chunk, raw));
                chunk += 1;
            }
            KIND_INDEX => {
                index_frame = Some((chunk, raw, frame_off));
                break;
            }
            other => {
                walk_damage = Some(chunk_err(
                    chunk,
                    kind_of(other),
                    format!("unexpected frame kind {other}"),
                ));
                break;
            }
        }
    }

    // Parallel decode: CRC verify + decompress + deserialize each body
    // frame independently; reassemble in order below. Columnar events
    // frames (v4) decompress against the shared dictionary and decode as
    // column arrays; the owned events are materialized from the columns —
    // a bulk copy, not a per-record tree decode.
    let decoded = run_ordered(body.len(), true, |i| {
        let (chunk, raw) = &body[i];
        if raw.codec == Some(PayloadCodec::Columnar.byte()) {
            if raw.kind != KIND_EVENTS {
                return Err(chunk_err(
                    *chunk,
                    kind_of(raw.kind),
                    "columnar codec on a non-events frame",
                ));
            }
            let payload = decode_payload_with_dict(bytes, raw, &dict)
                .map_err(|e| chunk_err(*chunk, ChunkKind::Events, e))?;
            return EventColumns::decode(&payload)
                .map(|c| BodyPayload::Events(c.to_events()))
                .map_err(|e| {
                    chunk_err(
                        *chunk,
                        ChunkKind::Events,
                        format!("bad events payload: {e}"),
                    )
                });
        }
        let payload =
            decode_payload(bytes, raw).map_err(|e| chunk_err(*chunk, kind_of(raw.kind), e))?;
        if raw.kind == KIND_EVENTS {
            decode_by_codec::<Vec<ReplayEvent>>(&payload, raw.codec)
                .map(BodyPayload::Events)
                .map_err(|e| {
                    chunk_err(
                        *chunk,
                        ChunkKind::Events,
                        format!("bad events payload: {e}"),
                    )
                })
        } else {
            decode_by_codec::<ReplayCheckpoint>(&payload, raw.codec)
                .map(BodyPayload::Checkpoint)
                .map_err(|e| {
                    chunk_err(
                        *chunk,
                        ChunkKind::Checkpoint,
                        format!("bad checkpoint payload: {e}"),
                    )
                })
        }
    });

    // Ordered reassembly, earliest damage wins: body frames precede any
    // walk damage in the file, so a decode failure at chunk j overrides
    // walk damage at chunk k > j, and events stop accumulating at the
    // first damaged chunk — identical to a serial front-to-back scan.
    let mut events: Vec<ReplayEvent> = Vec::new();
    let mut checkpoints: Vec<ReplayCheckpoint> = Vec::new();
    let mut damage: Option<PinballError> = None;
    for res in decoded {
        match res {
            Ok(BodyPayload::Events(mut evs)) => events.append(&mut evs),
            Ok(BodyPayload::Checkpoint(cp)) => checkpoints.push(cp),
            Err(e) => {
                damage = Some(e);
                break;
            }
        }
    }
    if damage.is_none() {
        damage = walk_damage;
    }
    if let Some(PinballError::Unsealed {
        events_recovered, ..
    }) = &mut damage
    {
        *events_recovered = events.len();
    }

    // Index frame and trailer: the index contents are advisory (offsets
    // for random access — nothing above depends on them), but the frame
    // must verify and parse, and the trailer must check out, for the file
    // to count as intact. Parsing per codec also catches a damaged codec
    // byte, which the CRC (covering only the payload) cannot see.
    if damage.is_none() {
        if let Some((ichunk, ref raw, frame_off)) = index_frame {
            let index_ok = decode_payload(bytes, raw)
                .map_err(|e| e.to_string())
                .and_then(|payload| decode_by_codec::<Vec<IndexEntry>>(&payload, raw.codec));
            if let Err(e) = index_ok {
                damage = Some(chunk_err(
                    ichunk,
                    ChunkKind::Index,
                    format!("bad index payload: {e}"),
                ));
            } else {
                let trailer = &bytes[pos..];
                let ok = trailer.len() == 12
                    && &trailer[8..] == TRAILER_MAGIC
                    && u64::from_le_bytes(trailer[..8].try_into().expect("8-byte slice"))
                        == frame_off as u64;
                if !ok {
                    damage = Some(chunk_err(
                        ichunk,
                        ChunkKind::Index,
                        "bad trailer (index offset or magic mismatch)",
                    ));
                }
            }
        }
    }

    if damage.is_none() && events.len() as u64 != header.num_events {
        damage = Some(PinballError::Format(format!(
            "event count mismatch: header promises {}, chunks hold {}",
            header.num_events,
            events.len()
        )));
    }

    // Keep only checkpoints the recovered prefix actually reaches.
    checkpoints.retain(|cp| cp.pos <= events.len());

    let events_recovered = events.len();
    let container = PinballContainer {
        pinball: Pinball {
            meta: header.meta,
            snapshot: header.snapshot,
            events,
            syscalls: header.syscalls,
            exit: header.exit,
        },
        checkpoints,
        checkpoint_interval: header.checkpoint_interval.max(1),
    };
    Ok(LossyLoad {
        container,
        damage,
        events_recovered,
        events_expected: header.num_events as usize,
    })
}

/// Best-effort kind of the frame starting at `offset` (for error reports
/// when the frame itself cannot be read).
pub(crate) fn peek_kind(bytes: &[u8], offset: usize) -> ChunkKind {
    bytes
        .get(offset)
        .map_or(ChunkKind::Unknown, |&b| kind_of(b))
}

// ---------------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------------

/// Size and codec facts about one frame of a container, from [`inspect`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameReport {
    /// Frame ordinal in the file (0 = header).
    pub chunk: usize,
    /// What the frame holds.
    pub kind: ChunkKind,
    /// How the payload is serialized (v2 frames are implicitly JSON).
    pub codec: PayloadCodec,
    /// LZSS-compressed payload size on disk, in bytes.
    pub compressed_len: usize,
    /// Decompressed payload size, in bytes.
    pub uncompressed_len: usize,
}

/// A structural report over a pinball file: version, per-frame codec and
/// sizes, and totals. Produced by [`inspect`]; rendered by the `drdebug`
/// CLI's `info container`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainerReport {
    /// Detected container generation.
    pub version: ContainerVersion,
    /// Total file size in bytes.
    pub file_len: usize,
    /// Events the header promises (v1: the actual event count).
    pub num_events: u64,
    /// Embedded checkpoint frames.
    pub checkpoints: usize,
    /// Chunk cadence in retired instructions.
    pub checkpoint_interval: u64,
    /// Per-frame facts, in file order (v1: one pseudo-frame for the blob).
    pub frames: Vec<FrameReport>,
    /// Shared dictionary size in bytes (v4 only).
    pub dict_len: Option<usize>,
    /// Summed encoded column sizes across all events frames (v4 only).
    pub columns: Option<crate::columns::ColumnSizes>,
}

impl ContainerReport {
    /// Sum of compressed payload sizes across all frames.
    pub fn compressed_total(&self) -> usize {
        self.frames.iter().map(|f| f.compressed_len).sum()
    }

    /// Sum of decompressed payload sizes across all frames.
    pub fn uncompressed_total(&self) -> usize {
        self.frames.iter().map(|f| f.uncompressed_len).sum()
    }

    /// Compression ratio, uncompressed : compressed, in percent of space
    /// saved (0 when empty).
    pub fn ratio_percent(&self) -> u32 {
        let unc = self.uncompressed_total();
        if unc == 0 {
            return 0;
        }
        let saved = unc.saturating_sub(self.compressed_total());
        (saved * 100 / unc) as u32
    }
}

impl fmt::Display for ContainerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "container {}: {} bytes, {} events, {} checkpoints, interval {}",
            self.version,
            self.file_len,
            self.num_events,
            self.checkpoints,
            self.checkpoint_interval
        )?;
        writeln!(
            f,
            "payloads: {} compressed / {} uncompressed ({}% saved)",
            self.compressed_total(),
            self.uncompressed_total(),
            self.ratio_percent()
        )?;
        writeln!(
            f,
            "{:>5}  {:<10}  {:<6}  {:>10}  {:>12}",
            "chunk", "kind", "codec", "compressed", "uncompressed"
        )?;
        for fr in &self.frames {
            writeln!(
                f,
                "{:>5}  {:<10}  {:<6}  {:>10}  {:>12}",
                fr.chunk,
                fr.kind.to_string(),
                fr.codec.to_string(),
                fr.compressed_len,
                fr.uncompressed_len
            )?;
        }
        if let Some(dict_len) = self.dict_len {
            writeln!(f, "shared dictionary: {dict_len} bytes")?;
        }
        if let Some(cols) = &self.columns {
            writeln!(
                f,
                "event columns (encoded): kinds {} tids {} args {} pair_ends {} \
                 pair_keys {} pair_vals {} (total {})",
                cols.kinds,
                cols.tids,
                cols.args,
                cols.pair_ends,
                cols.pair_keys,
                cols.pair_vals,
                cols.total()
            )?;
        }
        Ok(())
    }
}

/// Walks a pinball file and reports its version, per-frame codecs, and
/// compressed/uncompressed sizes. Strict: a damaged frame is an error (use
/// [`PinballContainer::from_bytes_lossy`] to salvage damaged files).
///
/// # Errors
///
/// Returns [`PinballError::Chunk`] for a damaged frame,
/// [`PinballError::Format`] for structural problems, and the v1 errors for
/// v1 blobs.
pub fn inspect(bytes: &[u8]) -> Result<ContainerReport, PinballError> {
    let version = detect_version(bytes);
    if version == ContainerVersion::V1 {
        let pinball = Pinball::from_bytes_v1(bytes)?;
        let json = ser(&pinball)?;
        return Ok(ContainerReport {
            version,
            file_len: bytes.len(),
            num_events: pinball.events.len() as u64,
            checkpoints: 0,
            checkpoint_interval: 0,
            frames: vec![FrameReport {
                chunk: 0,
                kind: ChunkKind::Unknown,
                codec: PayloadCodec::Json,
                compressed_len: bytes.len(),
                uncompressed_len: json.len(),
            }],
            dict_len: None,
            columns: None,
        });
    }

    let has_codec = matches!(version, ContainerVersion::V3 | ContainerVersion::V4);
    let mut pos = MAGIC.len();
    let mut chunk = 0usize;
    let mut frames = Vec::new();
    let mut header: Option<ContainerHeader> = None;
    let mut checkpoints = 0usize;
    let mut dict: Vec<u8> = Vec::new();
    let mut dict_len: Option<usize> = None;
    let mut columns: Option<crate::columns::ColumnSizes> = None;
    loop {
        if pos >= bytes.len() {
            return Err(chunk_err(chunk, ChunkKind::Unknown, "missing index frame"));
        }
        let raw = peek_frame(bytes, pos, has_codec)
            .map_err(|e| chunk_err(chunk, peek_kind(bytes, pos), e))?;
        let codec = match raw.codec {
            None => PayloadCodec::Json,
            Some(b) => PayloadCodec::from_byte(b).ok_or_else(|| {
                chunk_err(
                    chunk,
                    kind_of(raw.kind),
                    format!("unknown payload codec {b}"),
                )
            })?,
        };
        let payload = if codec == PayloadCodec::Columnar {
            decode_payload_with_dict(bytes, &raw, &dict)
                .map_err(|e| chunk_err(chunk, kind_of(raw.kind), e))?
        } else {
            decode_payload(bytes, &raw).map_err(|e| chunk_err(chunk, kind_of(raw.kind), e))?
        };
        if codec == PayloadCodec::Columnar {
            let cols = EventColumns::decode(&payload).map_err(|e| {
                chunk_err(chunk, ChunkKind::Events, format!("bad events payload: {e}"))
            })?;
            columns
                .get_or_insert_with(Default::default)
                .add(&cols.column_sizes());
        }
        if raw.kind == KIND_DICT {
            dict = payload.clone();
            dict_len = Some(dict.len());
        }
        if chunk == 0 {
            if raw.kind != KIND_HEADER {
                return Err(chunk_err(
                    0,
                    kind_of(raw.kind),
                    "first frame is not the container header",
                ));
            }
            header = Some(decode_by_codec(&payload, raw.codec).map_err(|e| {
                chunk_err(0, ChunkKind::Header, format!("bad header payload: {e}"))
            })?);
        }
        if raw.kind == KIND_CHECKPOINT {
            checkpoints += 1;
        }
        frames.push(FrameReport {
            chunk,
            kind: kind_of(raw.kind),
            codec,
            compressed_len: raw.payload.len(),
            uncompressed_len: payload.len(),
        });
        pos += raw.encoded_len;
        chunk += 1;
        if raw.kind == KIND_INDEX {
            break;
        }
    }
    let header = header.expect("loop decoded the header before breaking");
    Ok(ContainerReport {
        version,
        file_len: bytes.len(),
        num_events: header.num_events,
        checkpoints,
        checkpoint_interval: header.checkpoint_interval,
        frames,
        dict_len,
        columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{assemble, LiveEnv, NullTool, RoundRobin};

    use crate::logger::record_whole_program;
    use crate::replay::ReplayStatus;

    const PROG: &str = r"
        .data
        acc: .word 0
        .text
        .func main
            movi r1, 1
            spawn r2, worker, r1
            movi r1, 2
            spawn r3, worker, r1
            join r2
            join r3
            la r4, acc
            load r5, r4, 0
            rand r6
            print r5
            halt
        .endfunc
        .func worker
            movi r3, 200
        loop:
            la r1, acc
            xadd r2, r1, r0
            subi r3, r3, 1
            bgti r3, 0, loop
            halt
        .endfunc
        ";

    fn record() -> (Arc<Program>, Pinball) {
        let program = Arc::new(assemble(PROG).unwrap());
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(7),
            &mut LiveEnv::new(42),
            1_000_000,
            "container-demo",
        )
        .unwrap();
        (program, rec.pinball)
    }

    #[test]
    fn chunk_ranges_cover_the_log_exactly() {
        let (_, pinball) = record();
        let ranges = chunk_ranges(&pinball.events, 64);
        assert!(ranges.len() > 2, "log should split into several chunks");
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges.last().unwrap().1, pinball.events.len());
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "chunks are contiguous");
            assert!(
                w[1].2 - w[0].2 >= 64,
                "each closed chunk holds >= interval instrs"
            );
        }
    }

    #[test]
    fn v4_roundtrip_preserves_pinball_and_checkpoints() {
        let (program, pinball) = record();
        let c = PinballContainer::with_checkpoints(pinball, &program, 128);
        assert!(!c.checkpoints.is_empty());
        let bytes = c.to_bytes().unwrap();
        assert!(bytes.starts_with(MAGIC_V4));
        let d = PinballContainer::from_bytes(&bytes).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn v3_roundtrip_preserves_pinball_and_checkpoints() {
        let (program, pinball) = record();
        let c = PinballContainer::with_checkpoints(pinball, &program, 128);
        assert!(!c.checkpoints.is_empty());
        let bytes = c.to_bytes_v3().unwrap();
        assert!(bytes.starts_with(MAGIC_V3));
        let d = PinballContainer::from_bytes(&bytes).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn v2_roundtrip_preserves_pinball_and_checkpoints() {
        let (program, pinball) = record();
        let c = PinballContainer::with_checkpoints(pinball, &program, 128);
        let bytes = c.to_bytes_v2().unwrap();
        assert!(bytes.starts_with(MAGIC));
        let d = PinballContainer::from_bytes(&bytes).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn parallel_and_serial_encoders_agree() {
        let (program, pinball) = record();
        let c = PinballContainer::with_checkpoints(pinball, &program, 128);
        assert_eq!(c.to_bytes().unwrap(), c.to_bytes_serial().unwrap());
    }

    #[test]
    fn v3_is_smaller_than_v2() {
        let (program, pinball) = record();
        let c = PinballContainer::with_checkpoints(pinball, &program, 128);
        let v3 = c.to_bytes_v3().unwrap();
        let v2 = c.to_bytes_v2().unwrap();
        assert!(
            v3.len() <= v2.len(),
            "v3 ({}) should not exceed v2 ({})",
            v3.len(),
            v2.len()
        );
    }

    #[test]
    fn v4_is_not_larger_than_v3() {
        let (program, pinball) = record();
        let c = PinballContainer::with_checkpoints(pinball, &program, 128);
        let v4 = c.to_bytes().unwrap();
        let v3 = c.to_bytes_v3().unwrap();
        assert!(
            v4.len() <= v3.len(),
            "v4 ({}) should not exceed v3 ({})",
            v4.len(),
            v3.len()
        );
    }

    #[test]
    fn load_save_is_byte_identical() {
        let (program, pinball) = record();
        let container = PinballContainer::with_checkpoints(pinball, &program, 256);
        let v4 = container.to_bytes().unwrap();
        assert_eq!(
            PinballContainer::from_bytes(&v4)
                .unwrap()
                .to_bytes()
                .unwrap(),
            v4
        );
        let v3 = container.to_bytes_v3().unwrap();
        assert_eq!(
            PinballContainer::from_bytes(&v3)
                .unwrap()
                .to_bytes_v3()
                .unwrap(),
            v3
        );
        let v2 = container.to_bytes_v2().unwrap();
        assert_eq!(
            PinballContainer::from_bytes(&v2)
                .unwrap()
                .to_bytes_v2()
                .unwrap(),
            v2
        );
    }

    #[test]
    fn v1_blob_autodetects() {
        let (_, pinball) = record();
        let v1 = pinball.to_bytes_v1().unwrap();
        assert_eq!(detect_version(&v1), ContainerVersion::V1);
        let c = PinballContainer::from_bytes(&v1).unwrap();
        assert_eq!(c.pinball, pinball);
        assert!(c.checkpoints.is_empty());
    }

    #[test]
    fn migrate_v1_produces_loadable_v2() {
        let (_, pinball) = record();
        let v1 = pinball.to_bytes_v1().unwrap();
        let v2 = migrate_v1(&v1).unwrap();
        assert!(v2.starts_with(MAGIC));
        assert_eq!(PinballContainer::from_bytes(&v2).unwrap().pinball, pinball);
        assert!(matches!(migrate_v1(&v2), Err(PinballError::Format(_))));
    }

    #[test]
    fn migrate_upgrades_older_formats_to_v4() {
        let (program, pinball) = record();
        let digest = pinball.digest();

        let v1 = pinball.to_bytes_v1().unwrap();
        let from_v1 = migrate(&v1).unwrap();
        assert_eq!(detect_version(&from_v1), ContainerVersion::V4);
        assert_eq!(
            PinballContainer::from_bytes(&from_v1).unwrap().pinball,
            pinball
        );

        let c = PinballContainer::with_checkpoints(pinball, &program, 128);
        let v2 = c.to_bytes_v2().unwrap();
        let from_v2 = migrate(&v2).unwrap();
        assert_eq!(detect_version(&from_v2), ContainerVersion::V4);
        let upgraded = PinballContainer::from_bytes(&from_v2).unwrap();
        assert_eq!(upgraded, c, "migration preserves checkpoints and interval");
        assert_eq!(upgraded.digest(), digest);

        let v3 = c.to_bytes_v3().unwrap();
        let from_v3 = migrate(&v3).unwrap();
        assert_eq!(detect_version(&from_v3), ContainerVersion::V4);
        assert_eq!(PinballContainer::from_bytes(&from_v3).unwrap(), c);
        assert_eq!(
            from_v3,
            c.to_bytes().unwrap(),
            "v3 -> v4 migrate round-trip"
        );

        assert!(matches!(migrate(&from_v2), Err(PinballError::Format(_))));
    }

    #[test]
    fn corrupt_chunk_is_named() {
        let (program, pinball) = record();
        for bytes in [
            PinballContainer::with_checkpoints(pinball.clone(), &program, 128)
                .to_bytes()
                .unwrap(),
            PinballContainer::with_checkpoints(pinball, &program, 128)
                .to_bytes_v2()
                .unwrap(),
        ] {
            // Flip a bit well past the header frame.
            let mut bad = bytes.clone();
            let target = bytes.len() * 3 / 4;
            bad[target] ^= 0x10;
            let err = PinballContainer::from_bytes(&bad).unwrap_err();
            match err {
                PinballError::Chunk { chunk, .. } => assert!(chunk > 0),
                other => panic!("expected Chunk error, got {other:?}"),
            }
        }
    }

    #[test]
    fn lossy_load_recovers_intact_prefix() {
        let (program, pinball) = record();
        let total_events = pinball.events.len();
        let total_instrs = pinball.logged_instructions();
        let bytes = PinballContainer::with_checkpoints(pinball, &program, 128)
            .to_bytes()
            .unwrap();
        // Truncate mid-file: everything before the cut must replay.
        let cut = bytes.len() / 2;
        let loaded = PinballContainer::from_bytes_lossy(&bytes[..cut]).unwrap();
        assert!(loaded.damage.is_some());
        assert!(loaded.events_recovered < total_events);
        assert!(loaded.events_recovered > 0);
        assert_eq!(loaded.events_expected, total_events);
        let mut rep = Replayer::new(Arc::clone(&program), &loaded.container.pinball);
        assert_eq!(rep.run(&mut NullTool), ReplayStatus::Completed);
        assert!(rep.replayed_instructions() <= total_instrs);
    }

    #[test]
    fn digest_is_checkpoint_and_interval_independent() {
        let (program, pinball) = record();
        let plain = PinballContainer::new(pinball.clone());
        let ckpt_a = PinballContainer::with_checkpoints(pinball.clone(), &program, 64);
        let ckpt_b = PinballContainer::with_checkpoints(pinball.clone(), &program, 256);
        assert_eq!(plain.digest(), ckpt_a.digest());
        assert_eq!(ckpt_a.digest(), ckpt_b.digest());
        assert_eq!(plain.digest(), pinball.digest());
    }

    #[test]
    fn digest_is_container_version_independent() {
        let (program, pinball) = record();
        let base = pinball.digest();
        let c = PinballContainer::with_checkpoints(pinball, &program, 128);
        let via_v2 = PinballContainer::from_bytes(&c.to_bytes_v2().unwrap()).unwrap();
        let via_v3 = PinballContainer::from_bytes(&c.to_bytes_v3().unwrap()).unwrap();
        let via_v4 = PinballContainer::from_bytes(&c.to_bytes().unwrap()).unwrap();
        assert_eq!(via_v2.digest(), base);
        assert_eq!(via_v3.digest(), base);
        assert_eq!(via_v4.digest(), base);
    }

    #[test]
    fn digest_distinguishes_different_recordings() {
        let (_, pinball) = record();
        let base = pinball.digest();
        // Any content change — metadata, log, syscalls — moves the digest.
        let mut renamed = pinball.clone();
        renamed.meta.region = "elsewhere".into();
        assert_ne!(base, renamed.digest());
        let mut shorter = pinball.clone();
        shorter.events.pop();
        assert_ne!(base, shorter.digest());
        // And a round-trip through the container format preserves it.
        let bytes = PinballContainer::new(pinball).to_bytes().unwrap();
        let reloaded = PinballContainer::from_bytes(&bytes).unwrap();
        assert_eq!(base, reloaded.digest());
    }

    #[test]
    fn empty_log_roundtrips() {
        let (_, mut pinball) = record();
        pinball.events.clear();
        let c = PinballContainer::new(pinball);
        let bytes = c.to_bytes().unwrap();
        assert_eq!(PinballContainer::from_bytes(&bytes).unwrap(), c);
    }

    #[test]
    fn inspect_reports_frames_and_codecs() {
        let (program, pinball) = record();
        let c = PinballContainer::with_checkpoints(pinball, &program, 128);

        let v4 = c.to_bytes().unwrap();
        let report4 = inspect(&v4).unwrap();
        assert_eq!(report4.version, ContainerVersion::V4);
        assert_eq!(report4.file_len, v4.len());
        assert_eq!(report4.num_events, c.pinball.events.len() as u64);
        assert_eq!(report4.checkpoints, c.checkpoints.len());
        assert_eq!(report4.frames[0].kind, ChunkKind::Header);
        assert_eq!(report4.frames[1].kind, ChunkKind::Dict);
        assert!(report4
            .frames
            .iter()
            .filter(|fr| fr.kind == ChunkKind::Events)
            .all(|fr| fr.codec == PayloadCodec::Columnar));
        let dict_len = report4.dict_len.expect("v4 reports its dictionary");
        assert!(dict_len > 0 && dict_len <= pinzip::DICT_MAX);
        let cols = report4.columns.expect("v4 reports per-column sizes");
        assert!(cols.kinds > 0 && cols.total() > 0);
        let rendered4 = report4.to_string();
        assert!(rendered4.contains("container v4"));
        assert!(rendered4.contains("columnar"));
        assert!(rendered4.contains("shared dictionary"));
        assert!(rendered4.contains("event columns"));

        let v3 = c.to_bytes_v3().unwrap();
        let report = inspect(&v3).unwrap();
        assert_eq!(report.version, ContainerVersion::V3);
        assert_eq!(report.file_len, v3.len());
        assert_eq!(report.num_events, c.pinball.events.len() as u64);
        assert_eq!(report.checkpoints, c.checkpoints.len());
        assert!(report.frames.len() > 3);
        assert_eq!(report.frames[0].kind, ChunkKind::Header);
        assert_eq!(report.frames.last().unwrap().kind, ChunkKind::Index);
        assert!(report
            .frames
            .iter()
            .all(|fr| fr.codec == PayloadCodec::Binary));
        assert!(report.uncompressed_total() > report.compressed_total());
        assert_eq!(report.dict_len, None);
        assert_eq!(report.columns, None);
        let rendered = report.to_string();
        assert!(rendered.contains("container v3"));
        assert!(rendered.contains("binary"));

        let v2 = c.to_bytes_v2().unwrap();
        let report2 = inspect(&v2).unwrap();
        assert_eq!(report2.version, ContainerVersion::V2);
        assert!(report2
            .frames
            .iter()
            .all(|fr| fr.codec == PayloadCodec::Json));
        assert_eq!(report2.num_events, report.num_events);

        let v1 = c.pinball.to_bytes_v1().unwrap();
        let report1 = inspect(&v1).unwrap();
        assert_eq!(report1.version, ContainerVersion::V1);
        assert_eq!(report1.frames.len(), 1);
    }

    #[test]
    fn inspect_rejects_damage() {
        let (_, pinball) = record();
        let mut bytes = PinballContainer::new(pinball).to_bytes().unwrap();
        let target = bytes.len() / 2;
        bytes[target] ^= 0x04;
        assert!(matches!(
            inspect(&bytes),
            Err(PinballError::Chunk { .. }) | Err(PinballError::Format(_))
        ));
    }

    #[test]
    fn detect_version_distinguishes_formats() {
        assert_eq!(detect_version(b"DRPB2\nrest"), ContainerVersion::V2);
        assert_eq!(detect_version(b"DRPB3\nrest"), ContainerVersion::V3);
        assert_eq!(detect_version(b"anything else"), ContainerVersion::V1);
        assert_eq!(detect_version(b""), ContainerVersion::V1);
    }

    #[test]
    fn run_ordered_preserves_order() {
        for parallel in [false, true] {
            let out = run_ordered(37, parallel, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(run_ordered(0, true, |i| i).is_empty());
    }
}
