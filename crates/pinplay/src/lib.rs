//! # pinplay — deterministic record/replay for the mini-VM
//!
//! A from-scratch reproduction of the PinPlay workflow the DrDebug paper
//! (CGO 2014) builds on:
//!
//! * the [`logger`] fast-forwards to an [execution region](region::RegionSpec)
//!   and captures a [`Pinball`]: the initial architectural snapshot plus all
//!   non-deterministic events (thread schedule and syscall results);
//! * the [`replay::Replayer`] re-executes a pinball exactly —
//!   same heap/stack contents, same syscall outcomes, same thread
//!   interleaving, run after run (the repeatability guarantee cyclic
//!   debugging relies on);
//! * the [relogger](relog::relog) replays a region pinball while *excluding*
//!   code regions, producing a smaller *slice pinball* whose replay skips
//!   the excluded code entirely and injects its side effects (paper §4).
//!
//! # Example: record, then replay twice, identically
//!
//! ```
//! use std::sync::Arc;
//! use minivm::{assemble, LiveEnv, NullTool, RoundRobin};
//! use pinplay::{record_whole_program, Replayer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Arc::new(assemble(
//!     r"
//!     .text
//!     .func main
//!         rand r1          ; non-deterministic!
//!         print r1
//!         halt
//!     .endfunc
//!     ",
//! )?);
//! let rec = record_whole_program(
//!     &program,
//!     &mut RoundRobin::new(8),
//!     &mut LiveEnv::new(7),
//!     10_000,
//!     "example",
//! )?;
//! let replay = |pb| {
//!     let mut r = Replayer::new(Arc::clone(&program), pb);
//!     r.run(&mut NullTool);
//!     r.exec().output().to_vec()
//! };
//! assert_eq!(replay(&rec.pinball), replay(&rec.pinball));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod columns;
pub mod container;
pub mod logger;
pub mod pinball;
pub mod region;
pub mod relog;
pub mod replay;
pub mod stream;
pub mod view;

pub use columns::{ColumnSizes, EventColumns, EventRef, PairsRef};
pub use container::{
    detect_version, inspect, migrate, migrate_v1, ChunkKind, ContainerReport, ContainerVersion,
    FrameReport, LossyLoad, PayloadCodec, PinballContainer, PinballDigest, ReplayCheckpoint,
    DEFAULT_CHECKPOINT_INTERVAL, MAGIC, MAGIC_V3, MAGIC_V4,
};
pub use logger::{record_region, record_whole_program, LogError, Recording};
pub use pinball::{Pinball, PinballError, PinballMeta, RecordedExit, ReplayEvent, ScheduleBuilder};
pub use region::{EndTrigger, EndWatch, RegionSpec, StartTrigger, StartWatch};
pub use relog::{relog, relog_container, ExclusionRegion, RelogStats};
pub use replay::{EventLog, ReplayStatus, Replayer, SeekOutcome};
pub use stream::{StreamReader, StreamWriter};
pub use view::{ContainerView, MappedContainer, MappedEvents};
