//! Execution-region specifications.
//!
//! DrDebug narrows the scope of replay to a buggy *execution region*
//! (paper §2): the user fast-forwards to the region start and logs until the
//! bug appears. The paper's PARSEC evaluation specifies regions with a
//! *skip* count and a *length* in main-thread instructions (§7, "we
//! specified regions using a skip and length for the main thread"); the
//! case studies use root-cause/failure program points instead. Both styles
//! are expressible here.

use serde::{Deserialize, Serialize};

use minivm::{InsEvent, Pc, Tid};

/// When region logging begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StartTrigger {
    /// Log from the very beginning of the run (Table 3's "whole program
    /// execution region").
    ProgramStart,
    /// Fast-forward until the main thread has retired `skip` instructions
    /// (Fig. 11's `skip` parameter).
    MainSkip(u64),
    /// Fast-forward until `tid` executes `pc` for the `instance`-th time
    /// (1-based) — "the root cause" program point of Table 2.
    AtPc {
        /// Thread to watch.
        tid: Tid,
        /// Program point.
        pc: Pc,
        /// 1-based execution count of `pc` by `tid`.
        instance: u64,
    },
}

/// When region logging ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EndTrigger {
    /// Log until the program halts or traps — for buggy runs this captures
    /// through the failure point.
    ProgramEnd,
    /// Log until the main thread has retired `length` more instructions
    /// since the region start (Fig. 11's `length` parameter).
    MainLength(u64),
    /// Log until `tid` executes `pc` for the `instance`-th time counting
    /// from the region start (the event is *included* in the region).
    AtPc {
        /// Thread to watch.
        tid: Tid,
        /// Program point.
        pc: Pc,
        /// 1-based execution count within the region.
        instance: u64,
    },
}

/// A region = a start trigger plus an end trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Where logging starts.
    pub start: StartTrigger,
    /// Where logging stops.
    pub end: EndTrigger,
}

impl RegionSpec {
    /// The whole execution, start to halt/trap (Table 3 style).
    pub fn whole_program() -> RegionSpec {
        RegionSpec {
            start: StartTrigger::ProgramStart,
            end: EndTrigger::ProgramEnd,
        }
    }

    /// Skip `skip` main-thread instructions, then log `length` more
    /// (Fig. 11/12 style).
    pub fn skip_length(skip: u64, length: u64) -> RegionSpec {
        RegionSpec {
            start: StartTrigger::MainSkip(skip),
            end: EndTrigger::MainLength(length),
        }
    }

    /// A short human description for pinball metadata.
    pub fn describe(&self) -> String {
        format!("{:?} .. {:?}", self.start, self.end)
    }
}

/// Evaluates a [`StartTrigger`] *before* an instruction executes.
///
/// The logger must snapshot the architectural state before the region's
/// first instruction retires, so the check runs pre-step on the thread the
/// scheduler just picked: `next_tid` is about to execute `next_pc` for the
/// `next_instance`-th time, and the main thread has retired `main_icount`
/// instructions so far.
#[derive(Debug, Clone, Copy)]
pub struct StartWatch {
    trigger: StartTrigger,
}

impl StartWatch {
    /// Creates a watch for `trigger`.
    pub fn new(trigger: StartTrigger) -> StartWatch {
        StartWatch { trigger }
    }

    /// Whether logging should begin before the pending step executes.
    pub fn fires(&self, main_icount: u64, next_tid: Tid, next_pc: Pc, next_instance: u64) -> bool {
        match self.trigger {
            StartTrigger::ProgramStart => true,
            StartTrigger::MainSkip(skip) => main_icount >= skip,
            StartTrigger::AtPc { tid, pc, instance } => {
                next_tid == tid && next_pc == pc && next_instance == instance
            }
        }
    }
}

/// Evaluates an [`EndTrigger`] against the logged event stream.
#[derive(Debug, Clone, Copy)]
pub struct EndWatch {
    trigger: EndTrigger,
}

impl EndWatch {
    /// Creates a watch for `trigger`.
    pub fn new(trigger: EndTrigger) -> EndWatch {
        EndWatch { trigger }
    }

    /// Whether logging should stop *after* including `ev`.
    ///
    /// `region_main_icount` counts main-thread instructions retired within
    /// the region, including `ev` when it is a main-thread event;
    /// `region_instance` is the region-relative instance count of
    /// `(ev.tid, ev.pc)` including `ev`.
    pub fn fires_after(
        &self,
        ev: &InsEvent,
        region_main_icount: u64,
        region_instance: u64,
    ) -> bool {
        match self.trigger {
            EndTrigger::ProgramEnd => false,
            EndTrigger::MainLength(len) => ev.tid == 0 && region_main_icount >= len,
            EndTrigger::AtPc { tid, pc, instance } => {
                ev.tid == tid && ev.pc == pc && region_instance == instance
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{Instr, LocVals};

    fn ev(tid: Tid, pc: Pc, instance: u64) -> InsEvent {
        InsEvent {
            tid,
            pc,
            instance,
            seq: 0,
            instr: Instr::Nop,
            uses: LocVals::new(),
            defs: LocVals::new(),
            next_pc: pc + 1,
            taken: None,
            spawned: None,
            sys_result: None,
        }
    }

    #[test]
    fn program_start_fires_immediately() {
        let w = StartWatch::new(StartTrigger::ProgramStart);
        assert!(w.fires(0, 0, 0, 1));
    }

    #[test]
    fn main_skip_fires_after_count() {
        let w = StartWatch::new(StartTrigger::MainSkip(10));
        assert!(!w.fires(9, 0, 5, 1));
        assert!(w.fires(10, 0, 5, 1));
        assert!(
            w.fires(10, 1, 5, 1),
            "any thread's step once main passed skip"
        );
    }

    #[test]
    fn at_pc_start_matches_exact_instance() {
        let w = StartWatch::new(StartTrigger::AtPc {
            tid: 1,
            pc: 7,
            instance: 2,
        });
        assert!(!w.fires(0, 1, 7, 1));
        assert!(!w.fires(0, 0, 7, 2));
        assert!(w.fires(0, 1, 7, 2));
    }

    #[test]
    fn main_length_counts_main_thread_only() {
        let w = EndWatch::new(EndTrigger::MainLength(5));
        assert!(
            !w.fires_after(&ev(1, 0, 1), 5, 1),
            "non-main events never fire"
        );
        assert!(!w.fires_after(&ev(0, 0, 1), 4, 1));
        assert!(w.fires_after(&ev(0, 0, 1), 5, 1));
    }

    #[test]
    fn region_spec_constructors() {
        let r = RegionSpec::whole_program();
        assert_eq!(r.start, StartTrigger::ProgramStart);
        assert_eq!(r.end, EndTrigger::ProgramEnd);
        let r = RegionSpec::skip_length(100, 50);
        assert_eq!(r.start, StartTrigger::MainSkip(100));
        assert_eq!(r.end, EndTrigger::MainLength(50));
        assert!(r.describe().contains("MainSkip"));
    }
}
