//! The logger: fast-forward to a region, then capture a pinball.
//!
//! Mirrors the PinPlay logger's behaviour as described in paper §1/§7:
//! "the logger does only minimal instrumentation before the region, \[so\] the
//! fast-forwarding can proceed at Pin-only speed" — here the fast-forward
//! phase runs the executor with no recording at all — and inside the region
//! it captures the initial snapshot plus every non-deterministic event: the
//! thread schedule and all syscall results.

use std::fmt;
use std::sync::Arc;

use minivm::{Environment, Executor, Program, Scheduler, Tid, VmError};

use crate::pinball::{Pinball, PinballMeta, RecordedExit, ReplayEvent, ScheduleBuilder};
use crate::region::{EndTrigger, EndWatch, RegionSpec, StartTrigger, StartWatch};

/// A captured region plus statistics about the run that produced it.
#[derive(Debug, Clone)]
pub struct Recording {
    /// The replayable artifact.
    pub pinball: Pinball,
    /// Instructions retired while fast-forwarding to the region.
    pub skipped_instructions: u64,
    /// Instructions retired inside the region (all threads) — the paper's
    /// "#executed instructions" column.
    pub region_instructions: u64,
}

/// Errors during region capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// The program trapped before the region start trigger fired.
    TrapBeforeRegion(VmError),
    /// The program finished before the region start trigger fired.
    RegionNeverStarted,
    /// The step budget was exhausted (fast-forward or region phase).
    FuelExhausted,
    /// The scheduler returned no thread while threads were runnable.
    SchedulerStalled,
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::TrapBeforeRegion(e) => write!(f, "trap before region start: {e}"),
            LogError::RegionNeverStarted => write!(f, "program ended before the region started"),
            LogError::FuelExhausted => write!(f, "step budget exhausted"),
            LogError::SchedulerStalled => write!(f, "scheduler produced no runnable thread"),
        }
    }
}

impl std::error::Error for LogError {}

/// Runs `program` under `sched`/`env` and records the region described by
/// `region` into a pinball.
///
/// # Errors
///
/// Returns a [`LogError`] when the region never starts, the program traps
/// before the region, or `max_steps` is exhausted. A trap *inside* the
/// region is not an error — it is the buggy behaviour being captured, and
/// ends the region with [`RecordedExit::Trap`].
pub fn record_region(
    program: &Arc<Program>,
    sched: &mut dyn Scheduler,
    env: &mut dyn Environment,
    region: RegionSpec,
    max_steps: u64,
    name: &str,
) -> Result<Recording, LogError> {
    let mut exec = Executor::new(Arc::clone(program));
    let start = StartWatch::new(region.start);
    let mut steps = 0u64;

    // Phase 1: fast-forward at full speed (no recording).
    loop {
        if exec.all_halted() {
            return Err(LogError::RegionNeverStarted);
        }
        if steps >= max_steps {
            return Err(LogError::FuelExhausted);
        }
        let Some(tid) = sched.pick(&exec) else {
            return Err(LogError::SchedulerStalled);
        };
        let next_pc = exec.thread(tid).pc;
        let next_instance = exec.instance_count(tid, next_pc) + 1;
        if start.fires(exec.icount(0), tid, next_pc, next_instance) {
            break;
        }
        match exec.step(tid, env) {
            Ok(_) => steps += 1,
            Err((_, e)) => return Err(LogError::TrapBeforeRegion(e)),
        }
    }
    let skipped_instructions = exec.total_icount();
    let snapshot = exec.snapshot();

    // Region-relative baselines for the end trigger.
    let base_main = exec.icount(0);
    let base_end_instance = match region.end {
        EndTrigger::AtPc { tid, pc, .. } => exec.instance_count(tid, pc),
        _ => 0,
    };

    // Phase 2: record.
    let end = EndWatch::new(region.end);
    let mut schedule = ScheduleBuilder::new();
    let mut syscalls: Vec<Vec<i64>> = Vec::new();
    let record_sys = |tid: Tid, v: i64, syscalls: &mut Vec<Vec<i64>>| {
        let t = tid as usize;
        if syscalls.len() <= t {
            syscalls.resize_with(t + 1, Vec::new);
        }
        syscalls[t].push(v);
    };
    let exit;
    loop {
        if exec.all_halted() {
            exit = RecordedExit::AllHalted;
            break;
        }
        if steps >= max_steps {
            return Err(LogError::FuelExhausted);
        }
        let Some(tid) = sched.pick(&exec) else {
            return Err(LogError::SchedulerStalled);
        };
        match exec.step(tid, env) {
            Ok((ev, _)) => {
                steps += 1;
                schedule.step(tid);
                if let Some(v) = ev.sys_result {
                    record_sys(tid, v, &mut syscalls);
                }
                let region_main = exec.icount(0) - base_main;
                let region_instance = match region.end {
                    EndTrigger::AtPc { tid: et, pc, .. } if ev.tid == et && ev.pc == pc => {
                        ev.instance - base_end_instance
                    }
                    _ => 0,
                };
                if end.fires_after(&ev, region_main, region_instance) {
                    exit = RecordedExit::RegionEnd;
                    break;
                }
            }
            Err((_, e)) => {
                // The trapping instruction retired; include it so replay
                // reproduces the failure (paper: the pinball "captures ...
                // the symptom of the bug").
                schedule.step(tid);
                exit = RecordedExit::Trap(e);
                break;
            }
        }
    }

    let events: Vec<ReplayEvent> = schedule.finish();
    let region_instructions = events
        .iter()
        .map(|e| match e {
            ReplayEvent::Run { steps, .. } => *steps,
            ReplayEvent::Skip { .. } | ReplayEvent::Inject { .. } => 0,
        })
        .sum();
    Ok(Recording {
        pinball: Pinball {
            meta: PinballMeta {
                program: name.to_owned(),
                region: region.describe(),
                is_slice: false,
            },
            snapshot,
            events,
            syscalls,
            exit,
        },
        skipped_instructions,
        region_instructions,
    })
}

/// Convenience: record the whole execution of `program` (Table 3 style).
///
/// # Errors
///
/// See [`record_region`].
pub fn record_whole_program(
    program: &Arc<Program>,
    sched: &mut dyn Scheduler,
    env: &mut dyn Environment,
    max_steps: u64,
    name: &str,
) -> Result<Recording, LogError> {
    record_region(
        program,
        sched,
        env,
        RegionSpec {
            start: StartTrigger::ProgramStart,
            end: EndTrigger::ProgramEnd,
        },
        max_steps,
        name,
    )
}
