//! Streaming capture: chunked, resumable pinball transport over the v4
//! frame format.
//!
//! The batch pipeline serializes a whole [`PinballContainer`] with
//! [`PinballContainer::to_bytes`] and ships it as one message. That caps
//! pinball size at the transport's message limit and forces the consumer
//! to wait for the entire recording. The streaming pair in this module
//! removes both constraints while keeping the wire format *identical* to
//! the batch container:
//!
//! * [`StreamWriter`] plans a container as a sequence of self-delimiting
//!   **chunks** — each a contiguous byte slice covering whole v4 frames
//!   (the shared-dictionary frame travels with the header; checkpoint
//!   frames travel with the events frame they precede) — plus
//!   a **footer** (the index frame and `PBIX` trailer). Concatenating
//!   every chunk and the footer reproduces the batch
//!   [`PinballContainer::to_bytes`] output byte for byte, so the sealed
//!   stream has the same [`PinballDigest`] as a batch save. Chunks are
//!   pure slices of a precomputed buffer: re-sending one after a crash or
//!   reconnect is always safe, which is what makes uploads resumable.
//! * [`StreamReader`] absorbs bytes in arbitrary increments and decodes
//!   each frame as soon as it is complete, without re-reading the prefix.
//!   Absorbed events accumulate in columnar form ([`EventColumns`]) — for
//!   a v4 stream each events frame is one bulk column append with no
//!   per-record tree decode, which is what lifted absorb throughput well
//!   past the old v3 record-stream path (v2/v3 streams still absorb
//!   through the owned-record decoder for compatibility).
//!   At any moment [`StreamReader::partial_container`] yields the intact
//!   prefix as a replayable [`PinballContainer`] — this is what lets a
//!   consumer slice or live-tail a recording that is still uploading.
//!   Absorbing the footer seals the stream after validating the index
//!   frame, the trailer, and the header's event count.
//!
//! A partial file on disk (valid prefix, no footer) is recognized by the
//! strict loader as [`PinballError::Unsealed`] — typed, never a panic —
//! while [`PinballContainer::from_bytes_lossy`] recovers the prefix.

use std::ops::Range;

use pinzip::frame::{decode_payload, decode_payload_with_dict, peek_frame, FrameError};

use crate::columns::EventColumns;
use crate::container::{
    chunk_err, decode_by_codec, detect_version, kind_of, ChunkKind, ContainerHeader,
    ContainerVersion, PayloadCodec, PinballContainer, PinballDigest, KIND_CHECKPOINT, KIND_DICT,
    KIND_EVENTS, KIND_HEADER, KIND_INDEX, MAGIC, MAGIC_V3, MAGIC_V4, TRAILER_MAGIC,
};
use crate::pinball::{Pinball, PinballError, ReplayEvent};

/// Plans a container as resumable chunks plus a sealing footer.
///
/// The writer serializes once (via the parallel v3 encoder) and then
/// *slices* the result at frame-group boundaries, so every chunk is a
/// deterministic, re-requestable view into the same buffer and the
/// concatenation of all chunks plus [`StreamWriter::footer`] is
/// byte-identical to [`PinballContainer::to_bytes`].
#[derive(Debug, Clone)]
pub struct StreamWriter {
    bytes: Vec<u8>,
    /// Byte ranges of the natural chunk groups. Group 0 starts at byte 0
    /// and carries the magic and header frame; each group ends after an
    /// events frame (any checkpoint frame travels with the events frame
    /// that follows it).
    groups: Vec<Range<usize>>,
    /// Offset where the footer (index frame + trailer) begins.
    footer_at: usize,
    digest: PinballDigest,
    instructions: u64,
}

impl StreamWriter {
    /// Plans `container` for streaming. The serialized form is the v4
    /// container, so sealing reproduces a batch save exactly.
    pub fn new(container: &PinballContainer) -> Result<StreamWriter, PinballError> {
        StreamWriter::plan(container, container.to_bytes()?)
    }

    /// Plans `container` as a v3 stream — the previous generation's wire
    /// format, kept for compatibility tests and as the before/after
    /// baseline in the absorb-throughput bench.
    pub fn new_v3(container: &PinballContainer) -> Result<StreamWriter, PinballError> {
        StreamWriter::plan(container, container.to_bytes_v3()?)
    }

    fn plan(container: &PinballContainer, bytes: Vec<u8>) -> Result<StreamWriter, PinballError> {
        let digest = container.digest();
        let instructions = container.pinball.logged_instructions();

        // Walk frame headers to find group boundaries. The buffer was
        // produced by our own encoder, so any walk failure is a bug, but
        // errors stay typed rather than panicking.
        let mut groups: Vec<Range<usize>> = Vec::new();
        let mut footer_at = None;
        let mut group_start = 0usize;
        let mut pos = MAGIC.len();
        let mut frame = 0usize;
        while footer_at.is_none() {
            if pos >= bytes.len() {
                return Err(chunk_err(
                    frame,
                    ChunkKind::Unknown,
                    "planned container ends before its index frame",
                ));
            }
            let raw = peek_frame(&bytes, pos, true)
                .map_err(|e| chunk_err(frame, ChunkKind::Unknown, e))?;
            match raw.kind {
                KIND_HEADER | KIND_DICT | KIND_CHECKPOINT => {}
                KIND_EVENTS => {
                    groups.push(group_start..pos + raw.encoded_len);
                    group_start = pos + raw.encoded_len;
                }
                KIND_INDEX => footer_at = Some(pos),
                other => {
                    return Err(chunk_err(
                        frame,
                        kind_of(other),
                        format!("unexpected frame kind {other} while planning chunks"),
                    ));
                }
            }
            pos += raw.encoded_len;
            frame += 1;
        }
        let footer_at = footer_at.expect("loop exits only once the index frame is found");
        if groups.is_empty() {
            // Empty log: the lone group is the magic + header frame.
            groups.push(0..footer_at);
        }

        Ok(StreamWriter {
            bytes,
            groups,
            footer_at,
            digest,
            instructions,
        })
    }

    /// Number of natural chunk groups (at least one; group 0 carries the
    /// magic and header frame).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The bytes of group `seq`, or `None` past the end.
    pub fn group(&self, seq: usize) -> Option<&[u8]> {
        self.groups.get(seq).map(|r| &self.bytes[r.clone()])
    }

    /// Splits the body into at most `n` contiguous chunks of nearly equal
    /// group count, in order. Concatenating them yields every byte before
    /// the footer. `n` is clamped to at least 1; fewer groups than `n`
    /// yields one chunk per group.
    pub fn chunks(&self, n: usize) -> Vec<&[u8]> {
        let n = n.max(1).min(self.groups.len());
        let g = self.groups.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let start = self.groups[i * g / n].start;
            let end = self.groups[(i + 1) * g / n - 1].end;
            out.push(&self.bytes[start..end]);
        }
        out
    }

    /// The sealing footer: index frame plus the 12-byte `PBIX` trailer.
    pub fn footer(&self) -> &[u8] {
        &self.bytes[self.footer_at..]
    }

    /// The complete sealed container — identical to
    /// [`PinballContainer::to_bytes`].
    pub fn sealed_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Content digest of the planned recording (identical to the digest of
    /// a batch save of the same pinball).
    pub fn digest(&self) -> PinballDigest {
        self.digest
    }

    /// Total instructions the recording retires.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }
}

/// Incrementally decodes a container from appended byte slices.
///
/// Feed bytes in any increments with [`StreamReader::absorb`]; the reader
/// decodes each frame exactly once, as soon as it is complete, keeping
/// only an undecoded tail pending. [`StreamReader::partial_container`]
/// exposes the intact prefix as a replayable container at any point;
/// absorbing the footer validates and seals the stream.
#[derive(Debug, Clone, Default)]
pub struct StreamReader {
    buf: Vec<u8>,
    /// Offset of the first byte not yet consumed as a complete frame.
    parsed: usize,
    /// Frame ordinal for error attribution (0 = header frame).
    frames: usize,
    /// The container generation, once the magic has been validated.
    version: Option<ContainerVersion>,
    /// Shared LZSS dictionary (v4 streams; empty until the dict frame).
    dict: Vec<u8>,
    header: Option<ContainerHeader>,
    /// Absorbed events, accumulated columnar (bulk appends for v4 frames;
    /// v2/v3 record streams are packed on arrival).
    events: EventColumns,
    /// Checkpoint payloads, CRC-checked and decompressed on arrival but
    /// structurally decoded only when [`StreamReader::partial_container`]
    /// asks for them. Live-tail consumers never touch checkpoints, so
    /// absorb throughput should not pay for materializing every
    /// [`ReplayCheckpoint`](crate::container::ReplayCheckpoint) (full
    /// executor state each) on the upload path.
    checkpoints: Vec<PendingCheckpoint>,
    instructions: u64,
    sealed: bool,
}

/// A checkpoint frame held in its decompressed wire form until a
/// container is actually requested.
#[derive(Debug, Clone)]
struct PendingCheckpoint {
    /// Frame ordinal, for error attribution at deferred-decode time.
    frame: usize,
    codec: Option<u8>,
    payload: Vec<u8>,
}

impl StreamReader {
    /// An empty reader awaiting the stream prologue.
    pub fn new() -> StreamReader {
        StreamReader::default()
    }

    /// Appends `bytes` to the stream and decodes every newly completed
    /// frame. Incomplete tails are kept pending for the next call; real
    /// damage (bad magic, CRC mismatch, undecodable payload, data after
    /// the trailer) is a typed error.
    pub fn absorb(&mut self, bytes: &[u8]) -> Result<(), PinballError> {
        if self.sealed && !bytes.is_empty() {
            return Err(PinballError::Format(
                "data appended after the sealed trailer".into(),
            ));
        }
        self.buf.extend_from_slice(bytes);
        self.advance()
    }

    fn advance(&mut self) -> Result<(), PinballError> {
        let version = match self.version {
            Some(v) => v,
            None => {
                if self.buf.len() < MAGIC.len() {
                    return Ok(());
                }
                let v = detect_version(&self.buf);
                if v == ContainerVersion::V1 {
                    return Err(PinballError::Format(format!(
                        "stream does not open with a container magic ({:?}, {:?} or {:?})",
                        MAGIC, MAGIC_V3, MAGIC_V4
                    )));
                }
                self.version = Some(v);
                self.parsed = MAGIC.len();
                v
            }
        };
        let has_codec = matches!(version, ContainerVersion::V3 | ContainerVersion::V4);

        while !self.sealed && self.parsed < self.buf.len() {
            let frame_off = self.parsed;
            let raw = match peek_frame(&self.buf, frame_off, has_codec) {
                Ok(r) => r,
                // An incomplete frame header or payload: wait for more
                // bytes. Streaming cannot distinguish a pending tail from
                // a truncated file — sealing is what settles it.
                Err(FrameError::Truncated) => return Ok(()),
                Err(e) => {
                    return Err(chunk_err(self.frames, self.peek_kind(frame_off), e));
                }
            };
            let awaiting_dict = version == ContainerVersion::V4 && self.frames == 1;
            if awaiting_dict && raw.kind != KIND_DICT {
                return Err(chunk_err(
                    1,
                    kind_of(raw.kind),
                    "second frame is not the shared dictionary",
                ));
            }
            match raw.kind {
                KIND_HEADER if self.frames == 0 => {
                    let payload = decode_payload(&self.buf, &raw)
                        .map_err(|e| chunk_err(0, ChunkKind::Header, e))?;
                    let header: ContainerHeader =
                        decode_by_codec(&payload, raw.codec).map_err(|e| {
                            chunk_err(0, ChunkKind::Header, format!("bad header payload: {e}"))
                        })?;
                    self.header = Some(header);
                }
                KIND_DICT if awaiting_dict => {
                    if raw.codec != Some(PayloadCodec::Binary.byte()) {
                        return Err(chunk_err(
                            1,
                            ChunkKind::Dict,
                            "dictionary frame carries a non-binary codec byte",
                        ));
                    }
                    self.dict = decode_payload(&self.buf, &raw)
                        .map_err(|e| chunk_err(1, ChunkKind::Dict, e))?;
                }
                KIND_EVENTS if self.frames > 0 => {
                    if raw.codec == Some(PayloadCodec::Columnar.byte()) {
                        // v4: one bulk column append, no per-record decode.
                        let payload = decode_payload_with_dict(&self.buf, &raw, &self.dict)
                            .map_err(|e| chunk_err(self.frames, ChunkKind::Events, e))?;
                        let cols = EventColumns::decode(&payload).map_err(|e| {
                            chunk_err(
                                self.frames,
                                ChunkKind::Events,
                                format!("bad events payload: {e}"),
                            )
                        })?;
                        self.instructions += cols.instructions();
                        self.events.extend_from(&cols);
                    } else {
                        let payload = decode_payload(&self.buf, &raw)
                            .map_err(|e| chunk_err(self.frames, ChunkKind::Events, e))?;
                        let evs: Vec<ReplayEvent> =
                            decode_by_codec(&payload, raw.codec).map_err(|e| {
                                chunk_err(
                                    self.frames,
                                    ChunkKind::Events,
                                    format!("bad events payload: {e}"),
                                )
                            })?;
                        self.instructions += evs
                            .iter()
                            .map(|e| match e {
                                ReplayEvent::Run { steps, .. } => *steps,
                                _ => 0,
                            })
                            .sum::<u64>();
                        for e in &evs {
                            self.events.push_event(e);
                        }
                    }
                }
                KIND_CHECKPOINT if self.frames > 0 => {
                    let payload = decode_payload(&self.buf, &raw)
                        .map_err(|e| chunk_err(self.frames, ChunkKind::Checkpoint, e))?;
                    self.checkpoints.push(PendingCheckpoint {
                        frame: self.frames,
                        codec: raw.codec,
                        payload,
                    });
                }
                KIND_INDEX if self.frames > 0 => {
                    // The trailer must follow the index frame; wait until
                    // all 12 bytes are present before consuming either.
                    let end = frame_off + raw.encoded_len;
                    if self.buf.len() < end + 12 {
                        return Ok(());
                    }
                    self.seal(&raw, frame_off, end)?;
                    return Ok(());
                }
                _ if self.frames == 0 => {
                    return Err(chunk_err(
                        0,
                        kind_of(raw.kind),
                        "first frame is not the container header",
                    ));
                }
                other => {
                    return Err(chunk_err(
                        self.frames,
                        kind_of(other),
                        format!("unexpected frame kind {other}"),
                    ));
                }
            }
            self.parsed = frame_off + raw.encoded_len;
            self.frames += 1;
        }
        Ok(())
    }

    fn seal(
        &mut self,
        raw: &pinzip::frame::RawFrame,
        frame_off: usize,
        end: usize,
    ) -> Result<(), PinballError> {
        let ichunk = self.frames;
        let payload =
            decode_payload(&self.buf, raw).map_err(|e| chunk_err(ichunk, ChunkKind::Index, e))?;
        decode_by_codec::<Vec<crate::container::IndexEntry>>(&payload, raw.codec)
            .map_err(|e| chunk_err(ichunk, ChunkKind::Index, format!("bad index payload: {e}")))?;
        let trailer = &self.buf[end..];
        let ok = trailer.len() == 12
            && &trailer[8..] == TRAILER_MAGIC
            && u64::from_le_bytes(trailer[..8].try_into().expect("8-byte slice"))
                == frame_off as u64;
        if !ok {
            return Err(chunk_err(
                ichunk,
                ChunkKind::Index,
                "bad trailer (index offset or magic mismatch)",
            ));
        }
        let expected = self
            .header
            .as_ref()
            .expect("frame 0 is always the header")
            .num_events;
        if self.events.len() as u64 != expected {
            return Err(PinballError::Format(format!(
                "event count mismatch: header promises {expected}, chunks hold {}",
                self.events.len()
            )));
        }
        self.parsed = end + 12;
        self.frames += 1;
        self.sealed = true;
        Ok(())
    }

    fn peek_kind(&self, offset: usize) -> ChunkKind {
        self.buf
            .get(offset)
            .map_or(ChunkKind::Unknown, |&b| kind_of(b))
    }

    /// Whether the footer has been absorbed and validated.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Whether the header frame has been decoded (a prefix container is
    /// only available after this).
    pub fn has_header(&self) -> bool {
        self.header.is_some()
    }

    /// Events decoded so far.
    pub fn events_absorbed(&self) -> usize {
        self.events.len()
    }

    /// Events the header promises for the sealed container (once the
    /// header has arrived).
    pub fn events_expected(&self) -> Option<u64> {
        self.header.as_ref().map(|h| h.num_events)
    }

    /// Instructions retired by the events decoded so far.
    pub fn instructions_absorbed(&self) -> u64 {
        self.instructions
    }

    /// Frames decoded so far (including the header frame).
    pub fn frames_absorbed(&self) -> usize {
        self.frames
    }

    /// Total bytes appended so far (decoded or pending).
    pub fn bytes_absorbed(&self) -> usize {
        self.buf.len()
    }

    /// The raw sealed container bytes, once sealed.
    pub fn sealed_bytes(&self) -> Option<&[u8]> {
        self.sealed.then_some(&self.buf[..])
    }

    /// The intact prefix as a replayable container. Before sealing this is
    /// the partial recording absorbed so far (the typed
    /// [`PinballError::Unsealed`] state on disk); after sealing it is the
    /// complete recording. Errors until the header frame has arrived, or
    /// if a deferred checkpoint payload turns out to be structurally
    /// undecodable (its CRC and compression were already validated on
    /// absorb).
    pub fn partial_container(&self) -> Result<PinballContainer, PinballError> {
        let header = self
            .header
            .as_ref()
            .ok_or_else(|| PinballError::Format("stream header not yet absorbed".to_string()))?;
        let mut checkpoints = Vec::with_capacity(self.checkpoints.len());
        for pending in &self.checkpoints {
            let cp: crate::container::ReplayCheckpoint =
                decode_by_codec(&pending.payload, pending.codec).map_err(|e| {
                    chunk_err(
                        pending.frame,
                        ChunkKind::Checkpoint,
                        format!("bad checkpoint payload: {e}"),
                    )
                })?;
            checkpoints.push(cp);
        }
        checkpoints.retain(|cp| cp.pos <= self.events.len());
        Ok(PinballContainer {
            pinball: Pinball {
                meta: header.meta.clone(),
                snapshot: header.snapshot.clone(),
                events: self.events.to_events(),
                syscalls: header.syscalls.clone(),
                exit: header.exit,
            },
            checkpoints,
            checkpoint_interval: header.checkpoint_interval.max(1),
        })
    }

    /// The absorbed prefix of the event log in columnar form — the
    /// zero-copy view streaming consumers index from directly.
    pub fn columns(&self) -> &EventColumns {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use minivm::{assemble, LiveEnv, Program, RoundRobin};

    use crate::logger::record_whole_program;
    use crate::replay::{ReplayStatus, Replayer};
    use minivm::NullTool;

    const PROG: &str = r"
        .data
        acc: .word 0
        .text
        .func main
            movi r1, 1
            spawn r2, worker, r1
            movi r1, 2
            spawn r3, worker, r1
            join r2
            join r3
            la r4, acc
            load r5, r4, 0
            print r5
            halt
        .endfunc
        .func worker
            movi r3, 150
        loop:
            la r1, acc
            xadd r2, r1, r0
            subi r3, r3, 1
            bgti r3, 0, loop
            halt
        .endfunc
        ";

    fn record() -> (Arc<Program>, PinballContainer) {
        let program = Arc::new(assemble(PROG).expect("assembles"));
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(7),
            &mut LiveEnv::new(42),
            1_000_000,
            "stream-demo",
        )
        .expect("records");
        let container = PinballContainer::with_checkpoints(rec.pinball, &program, 64);
        (program, container)
    }

    #[test]
    fn chunks_plus_footer_equal_batch_bytes() {
        let (_, container) = record();
        let writer = StreamWriter::new(&container).expect("plans");
        assert!(writer.num_groups() > 4, "workload should span many groups");
        for n in [1, 2, 3, writer.num_groups(), writer.num_groups() + 5] {
            let mut assembled = Vec::new();
            for chunk in writer.chunks(n) {
                assembled.extend_from_slice(chunk);
            }
            assembled.extend_from_slice(writer.footer());
            assert_eq!(assembled, container.to_bytes().expect("batch"));
        }
    }

    #[test]
    fn reader_absorbs_any_split_and_seals() {
        let (_, container) = record();
        let writer = StreamWriter::new(&container).expect("plans");
        let sealed = writer.sealed_bytes();
        // Absorb in awkward fixed-size increments that straddle every
        // frame boundary.
        for step in [1usize, 7, 64, 1021, sealed.len()] {
            let mut reader = StreamReader::new();
            for piece in sealed.chunks(step) {
                reader.absorb(piece).expect("absorbs cleanly");
            }
            assert!(reader.is_sealed());
            assert_eq!(reader.events_absorbed(), container.pinball.events.len());
            assert_eq!(
                reader.instructions_absorbed(),
                container.pinball.logged_instructions()
            );
            let got = reader.partial_container().expect("container");
            assert_eq!(got, container);
            assert_eq!(got.digest(), writer.digest());
        }
    }

    #[test]
    fn partial_prefix_replays_to_completion() {
        let (program, container) = record();
        let writer = StreamWriter::new(&container).expect("plans");
        let chunks = writer.chunks(4);
        let mut reader = StreamReader::new();
        reader.absorb(chunks[0]).expect("absorbs");
        reader.absorb(chunks[1]).expect("absorbs");
        assert!(!reader.is_sealed());
        assert!(reader.events_absorbed() > 0);
        assert!(reader.events_absorbed() < container.pinball.events.len());
        let partial = reader.partial_container().expect("prefix container");
        let mut replayer = Replayer::new(program, &partial.pinball);
        let status = replayer.run(&mut NullTool);
        assert_eq!(status, ReplayStatus::Completed);
    }

    #[test]
    fn unsealed_file_is_a_typed_error_and_lossy_recoverable() {
        let (_, container) = record();
        let writer = StreamWriter::new(&container).expect("plans");
        let chunks = writer.chunks(4);
        let mut partial: Vec<u8> = Vec::new();
        partial.extend_from_slice(chunks[0]);
        partial.extend_from_slice(chunks[1]);
        let err = PinballContainer::from_bytes(&partial).expect_err("unsealed");
        match err {
            PinballError::Unsealed {
                events_recovered,
                events_expected,
            } => {
                assert!(events_recovered > 0);
                assert_eq!(events_expected, container.pinball.events.len());
                assert!(events_recovered < events_expected);
            }
            other => panic!("expected Unsealed, got {other:?}"),
        }
        let lossy = PinballContainer::from_bytes_lossy(&partial).expect("salvages");
        assert!(matches!(lossy.damage, Some(PinballError::Unsealed { .. })));
        assert!(lossy.events_recovered > 0);
    }

    #[test]
    fn resumed_upload_converges_to_the_same_digest() {
        let (_, container) = record();
        let writer = StreamWriter::new(&container).expect("plans");
        let chunks = writer.chunks(6);
        // Simulate a killed upload: a fresh reader re-receives the prefix
        // from the start (chunks are pure slices, so the resend is
        // byte-identical) and then the remainder.
        for kill_at in 0..chunks.len() {
            let mut reader = StreamReader::new();
            for chunk in chunks.iter().take(kill_at) {
                reader.absorb(chunk).expect("first attempt");
            }
            let mut resumed = StreamReader::new();
            for chunk in &chunks {
                resumed.absorb(chunk).expect("second attempt");
            }
            resumed.absorb(writer.footer()).expect("footer");
            assert!(resumed.is_sealed());
            let got = resumed.partial_container().expect("container");
            assert_eq!(got.digest(), writer.digest());
            assert_eq!(
                resumed.sealed_bytes().expect("sealed"),
                writer.sealed_bytes()
            );
        }
    }

    #[test]
    fn v3_streams_still_absorb_and_seal() {
        let (_, container) = record();
        let writer = StreamWriter::new_v3(&container).expect("plans v3");
        assert_eq!(writer.sealed_bytes(), container.to_bytes_v3().unwrap());
        let mut reader = StreamReader::new();
        for piece in writer.chunks(5) {
            reader.absorb(piece).expect("absorbs");
        }
        reader.absorb(writer.footer()).expect("footer");
        assert!(reader.is_sealed());
        let got = reader.partial_container().expect("container");
        assert_eq!(got, container);
        assert_eq!(got.digest(), writer.digest());
    }

    #[test]
    fn sealed_v4_stream_is_the_batch_v4_container() {
        let (_, container) = record();
        let writer = StreamWriter::new(&container).expect("plans");
        let mut reader = StreamReader::new();
        reader.absorb(writer.sealed_bytes()).expect("absorbs");
        assert!(reader.is_sealed());
        let sealed = reader.sealed_bytes().expect("sealed");
        assert_eq!(&sealed[..6], crate::container::MAGIC_V4);
        assert_eq!(sealed, container.to_bytes().unwrap());
    }

    #[test]
    fn data_after_the_trailer_is_rejected() {
        let (_, container) = record();
        let writer = StreamWriter::new(&container).expect("plans");
        let mut reader = StreamReader::new();
        reader.absorb(writer.sealed_bytes()).expect("absorbs");
        assert!(reader.is_sealed());
        let err = reader.absorb(b"x").expect_err("rejects trailing data");
        assert!(matches!(err, PinballError::Format(_)));
    }

    #[test]
    fn empty_log_streams_as_a_single_group() {
        let (_, recorded) = record();
        let mut pinball = recorded.pinball;
        pinball.events.clear();
        let container = PinballContainer::new(pinball);
        let writer = StreamWriter::new(&container).expect("plans");
        assert_eq!(writer.num_groups(), 1);
        let mut reader = StreamReader::new();
        reader
            .absorb(writer.group(0).expect("group 0"))
            .expect("absorbs");
        assert!(!reader.is_sealed());
        reader.absorb(writer.footer()).expect("footer");
        assert!(reader.is_sealed());
        assert_eq!(reader.partial_container().expect("container"), container);
    }
}
