//! The pinball: the on-disk artifact of a recorded execution region.
//!
//! As in PinPlay (paper §1), a pinball bundles everything needed to replay a
//! program region deterministically: the initial architectural state and the
//! non-deterministic events — the thread schedule (which fixes the shared
//! memory access order, since the VM is sequentially consistent) and all
//! syscall results. Slice pinballs additionally contain [`ReplayEvent::Skip`]
//! entries that teleport a thread over an excluded code region while
//! injecting the region's side effects (paper §4, Fig. 6).
//!
//! Pinballs are "small enough to be portable" (paper §7); ours serialize to
//! JSON and are LZSS-compressed by [`pinzip`] — since v2 as a chunked,
//! CRC-checked container (see [`container`](crate::container)) whose frames
//! fail independently and can embed replay checkpoints for O(chunk) seeks.

use std::fmt;
use std::path::Path;

use serde::{Deserialize, Serialize};

use minivm::{Addr, Pc, Reg, Snapshot, Tid, VmError};

/// One entry of a pinball's replay log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplayEvent {
    /// Thread `tid` retires `steps` instructions.
    Run {
        /// Scheduled thread.
        tid: Tid,
        /// Number of instructions to retire.
        steps: u64,
    },
    /// Thread `tid` skips an excluded code region: its pc is forced to
    /// `to_pc` and the region's *register* side effects are injected
    /// (paper Fig. 6(b)). Registers are thread-private, so restoring them
    /// at the span boundary is always safe.
    Skip {
        /// Thread whose region is skipped.
        tid: Tid,
        /// First pc *after* the excluded region (the region's end marker).
        to_pc: Pc,
        /// Register side effects of the skipped code.
        regs: Vec<(Reg, i64)>,
    },
    /// Memory side effects of excluded code, injected *in place*: the
    /// relogger emits these at the excluded writes' original positions in
    /// the global order, so included reads of other threads observe
    /// exactly the values they observed during the region replay
    /// (write-after-read hazards stay correct).
    Inject {
        /// `(address, value)` writes, in recorded order.
        mems: Vec<(Addr, i64)>,
    },
}

/// How the recorded region ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordedExit {
    /// All threads halted inside the region.
    AllHalted,
    /// The region ended at a trap (e.g. the bug's crash/assertion).
    Trap(VmError),
    /// The region end trigger fired with threads still live.
    RegionEnd,
}

/// Descriptive metadata carried by a pinball.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PinballMeta {
    /// Name of the recorded program.
    pub program: String,
    /// Human-readable description of the recorded region.
    pub region: String,
    /// Whether this is a slice pinball produced by the relogger.
    pub is_slice: bool,
}

/// A recorded execution region, replayable deterministically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pinball {
    /// Descriptive metadata.
    pub meta: PinballMeta,
    /// Architectural state at region entry.
    pub snapshot: Snapshot,
    /// The replay log: schedule runs and (for slice pinballs) skips.
    pub events: Vec<ReplayEvent>,
    /// Recorded syscall results, per thread id, in issue order.
    pub syscalls: Vec<Vec<i64>>,
    /// How the region ended.
    pub exit: RecordedExit,
}

impl Pinball {
    /// The pinball's content digest — see
    /// [`PinballDigest`](crate::PinballDigest).
    pub fn digest(&self) -> crate::PinballDigest {
        crate::container::digest_pinball(self)
    }

    /// Total instructions the replay log retires.
    pub fn logged_instructions(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                ReplayEvent::Run { steps, .. } => *steps,
                ReplayEvent::Skip { .. } | ReplayEvent::Inject { .. } => 0,
            })
            .sum()
    }

    /// Number of schedule switches (adjacent `Run` entries always have
    /// different tids).
    pub fn context_switches(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ReplayEvent::Run { .. }))
            .count()
            .saturating_sub(1)
    }

    /// Serializes the pinball in the chunked v4 container format (the bytes
    /// written by [`Pinball::save`]), without embedded checkpoints — use
    /// [`PinballContainer::with_checkpoints`](crate::PinballContainer) to
    /// add those. Chunks are encoded on a worker pool when more than one
    /// core is available; the output is byte-identical either way.
    ///
    /// # Errors
    ///
    /// Infallible in practice; the `Result` is kept for API stability with
    /// the fallible JSON-backed paths.
    pub fn to_bytes(&self) -> Result<Vec<u8>, PinballError> {
        Ok(crate::container::write_container_v4(
            self,
            &[],
            crate::container::DEFAULT_CHECKPOINT_INTERVAL,
            true,
        ))
    }

    /// Serializes in the legacy v1 format: one LZSS blob over the whole
    /// JSON-encoded pinball. Kept for compatibility tooling (see
    /// [`migrate_v1`](crate::container::migrate_v1)); new pinballs should
    /// use [`Pinball::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`PinballError::Serialize`] when JSON encoding fails.
    pub fn to_bytes_v1(&self) -> Result<Vec<u8>, PinballError> {
        let json = serde_json::to_vec(self).map_err(|e| PinballError::Serialize(e.to_string()))?;
        Ok(pinzip::compress(&json))
    }

    /// Deserializes a pinball, auto-detecting the container magic (v3 or
    /// v2) and falling back to the v1 single-blob format. Embedded
    /// checkpoints are dropped — load a
    /// [`PinballContainer`](crate::PinballContainer) to keep them.
    ///
    /// # Errors
    ///
    /// Returns [`PinballError`] when decompression, a chunk checksum, or
    /// deserialization fails.
    pub fn from_bytes(bytes: &[u8]) -> Result<Pinball, PinballError> {
        if crate::container::has_container_magic(bytes) {
            return Ok(crate::container::PinballContainer::from_bytes(bytes)?.pinball);
        }
        Pinball::from_bytes_v1(bytes)
    }

    /// Deserializes a legacy v1 single-blob pinball.
    ///
    /// # Errors
    ///
    /// Returns [`PinballError`] when decompression or deserialization fails.
    pub fn from_bytes_v1(bytes: &[u8]) -> Result<Pinball, PinballError> {
        let json = pinzip::decompress(bytes).map_err(PinballError::Decompress)?;
        serde_json::from_slice(&json).map_err(|e| PinballError::Format(e.to_string()))
    }

    /// Compressed on-disk size in bytes (the paper's "Space (MB)" metric).
    ///
    /// # Errors
    ///
    /// Returns [`PinballError::Serialize`] when JSON encoding fails.
    pub fn size_bytes(&self) -> Result<usize, PinballError> {
        Ok(self.to_bytes()?.len())
    }

    /// Writes the pinball to a file.
    ///
    /// # Errors
    ///
    /// Returns [`PinballError::Io`] on filesystem errors and
    /// [`PinballError::Serialize`] on encoding errors.
    pub fn save(&self, path: &Path) -> Result<(), PinballError> {
        std::fs::write(path, self.to_bytes()?).map_err(|e| PinballError::Io(e.to_string()))
    }

    /// Reads a pinball from a file.
    ///
    /// # Errors
    ///
    /// Returns [`PinballError`] on filesystem, decompression, or format
    /// errors.
    pub fn load(path: &Path) -> Result<Pinball, PinballError> {
        let bytes = std::fs::read(path).map_err(|e| PinballError::Io(e.to_string()))?;
        Pinball::from_bytes(&bytes)
    }
}

/// Errors loading or saving pinballs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PinballError {
    /// Filesystem error (message from `std::io::Error`).
    Io(String),
    /// The pinball could not be serialized.
    Serialize(String),
    /// The compressed container is corrupt (v1 single-blob path).
    Decompress(pinzip::DecodeError),
    /// The decompressed payload is not a valid pinball.
    Format(String),
    /// A specific frame of a chunked container (v2–v4) is damaged. Chunks
    /// before it are intact and recoverable via
    /// [`PinballContainer::from_bytes_lossy`](crate::PinballContainer::from_bytes_lossy).
    Chunk {
        /// Frame ordinal in the file (0 = header frame).
        chunk: usize,
        /// What the damaged frame holds.
        kind: crate::container::ChunkKind,
        /// Why it could not be read.
        reason: String,
    },
    /// The container is a valid but *unsealed* prefix: every frame present
    /// verifies, yet the footer index frame and `PBIX` trailer are missing
    /// — a stream still being written, or an upload killed before
    /// [`StreamWriter::footer`](crate::StreamWriter::footer) was appended.
    /// Unlike [`PinballError::Chunk`] nothing is damaged; the prefix
    /// replays deterministically via
    /// [`PinballContainer::from_bytes_lossy`](crate::PinballContainer::from_bytes_lossy)
    /// or a [`StreamReader`](crate::StreamReader).
    Unsealed {
        /// Events recovered from the intact prefix.
        events_recovered: usize,
        /// Events the header promises for the sealed container.
        events_expected: usize,
    },
}

impl fmt::Display for PinballError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinballError::Io(e) => write!(f, "pinball i/o error: {e}"),
            PinballError::Serialize(e) => write!(f, "pinball serialize error: {e}"),
            PinballError::Decompress(e) => write!(f, "pinball decompress error: {e}"),
            PinballError::Format(e) => write!(f, "pinball format error: {e}"),
            PinballError::Chunk {
                chunk,
                kind,
                reason,
            } => {
                write!(
                    f,
                    "pinball container chunk {chunk} ({kind}) damaged: {reason}"
                )
            }
            PinballError::Unsealed {
                events_recovered,
                events_expected,
            } => {
                write!(
                    f,
                    "pinball container is unsealed: missing footer index frame and PBIX \
                     trailer ({events_recovered}/{events_expected} events present)"
                )
            }
        }
    }
}

impl std::error::Error for PinballError {}

/// Run-length accumulator turning per-instruction scheduling decisions into
/// compact [`ReplayEvent::Run`] entries.
#[derive(Debug, Default)]
pub struct ScheduleBuilder {
    events: Vec<ReplayEvent>,
    // Address → slot in the currently-open `Inject` event (the log's last
    // event). Valid only while that event stays last; `inject` rebuilds it
    // whenever a new `Inject` run opens.
    inject_slots: std::collections::HashMap<Addr, usize>,
}

impl ScheduleBuilder {
    /// Creates an empty builder.
    pub fn new() -> ScheduleBuilder {
        ScheduleBuilder::default()
    }

    /// Records that `tid` retired one instruction.
    pub fn step(&mut self, tid: Tid) {
        if let Some(ReplayEvent::Run { tid: t, steps }) = self.events.last_mut() {
            if *t == tid {
                *steps += 1;
                return;
            }
        }
        self.events.push(ReplayEvent::Run { tid, steps: 1 });
    }

    /// Appends a skip event (relogger only).
    pub fn skip(&mut self, tid: Tid, to_pc: Pc, regs: Vec<(Reg, i64)>) {
        self.events.push(ReplayEvent::Skip { tid, to_pc, regs });
    }

    /// Appends a memory injection at the current position, merging into a
    /// preceding `Inject` when possible (relogger only).
    ///
    /// Consecutive injections with no intervening schedule entry are
    /// unobservable individually — no included instruction runs between
    /// them — so a repeated address overwrites its earlier slot instead of
    /// growing the event: each `Inject` carries at most one (final) value
    /// per address, keeping slice pinballs proportional to the *locations*
    /// excluded code touched, not the writes it performed.
    pub fn inject(&mut self, addr: Addr, value: i64) {
        if let Some(ReplayEvent::Inject { mems }) = self.events.last_mut() {
            if let Some(&slot) = self.inject_slots.get(&addr) {
                mems[slot] = (addr, value);
            } else {
                self.inject_slots.insert(addr, mems.len());
                mems.push((addr, value));
            }
            return;
        }
        self.inject_slots.clear();
        self.inject_slots.insert(addr, 0);
        self.events.push(ReplayEvent::Inject {
            mems: vec![(addr, value)],
        });
    }

    /// Finishes the log.
    pub fn finish(self) -> Vec<ReplayEvent> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{Memory, ThreadState};

    fn sample_pinball() -> Pinball {
        let mut mem = Memory::new();
        mem.write(0x1000, 42);
        Pinball {
            meta: PinballMeta {
                program: "demo".into(),
                region: "whole".into(),
                is_slice: false,
            },
            snapshot: Snapshot {
                threads: vec![ThreadState::new(0, 0)],
                memory: mem,
                output_len: 0,
            },
            events: vec![
                ReplayEvent::Run { tid: 0, steps: 10 },
                ReplayEvent::Run { tid: 1, steps: 3 },
            ],
            syscalls: vec![vec![7, 8], vec![]],
            exit: RecordedExit::AllHalted,
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let p = sample_pinball();
        let bytes = p.to_bytes().unwrap();
        let q = Pinball::from_bytes(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn v1_bytes_roundtrip() {
        let p = sample_pinball();
        let bytes = p.to_bytes_v1().unwrap();
        let q = Pinball::from_bytes(&bytes).unwrap();
        assert_eq!(p, q, "legacy blobs auto-detect and load");
    }

    #[test]
    fn file_roundtrip() {
        let p = sample_pinball();
        let dir = std::env::temp_dir().join("pinplay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.pb");
        p.save(&path).unwrap();
        let q = Pinball::load(&path).unwrap();
        assert_eq!(p, q);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_bytes_reports_error() {
        assert!(matches!(
            Pinball::from_bytes(&[1, 2, 3]),
            Err(PinballError::Decompress(_)) | Err(PinballError::Format(_))
        ));
    }

    #[test]
    fn logged_instruction_count() {
        let p = sample_pinball();
        assert_eq!(p.logged_instructions(), 13);
        assert_eq!(p.context_switches(), 1);
    }

    #[test]
    fn schedule_builder_run_length_encodes() {
        let mut b = ScheduleBuilder::new();
        for tid in [0, 0, 0, 1, 1, 0] {
            b.step(tid);
        }
        b.inject(0x1000, 1);
        b.inject(0x1001, 2);
        b.skip(1, 9, vec![(Reg(2), 5)]);
        let events = b.finish();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0], ReplayEvent::Run { tid: 0, steps: 3 });
        assert_eq!(events[1], ReplayEvent::Run { tid: 1, steps: 2 });
        assert_eq!(events[2], ReplayEvent::Run { tid: 0, steps: 1 });
        assert_eq!(
            events[3],
            ReplayEvent::Inject {
                mems: vec![(0x1000, 1), (0x1001, 2)]
            },
            "consecutive injections merge"
        );
        assert!(matches!(
            events[4],
            ReplayEvent::Skip {
                tid: 1,
                to_pc: 9,
                ..
            }
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Pinball::load(Path::new("/nonexistent/definitely/missing.pb")).unwrap_err();
        assert!(matches!(err, PinballError::Io(_)));
    }
}
