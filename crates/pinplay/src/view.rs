//! Zero-copy and paged views over v4 containers.
//!
//! [`ContainerView::from_bytes`] is the v4 fast load path: it decodes the
//! columnar events frames straight into [`EventColumns`] and *keeps* them —
//! no `Vec<ReplayEvent>` is ever materialized, and every replayer built
//! from the view borrows the one column set
//! ([`EventLog::Columns`](crate::replay::EventLog)). This is what makes a
//! v4 load near-memcpy: the work is CRC + LZSS + a handful of bulk varint
//! scans, with no per-record tree decode.
//!
//! [`MappedContainer`] is the paged variant for pinballs too large to hold
//! in memory: opening reads only the trailer, footer index, header, and
//! shared dictionary (all small); events chunks are paged in on demand by
//! [`MappedEvents`] as replay walks the log, and checkpoints are fetched
//! individually when a seek needs one. The implementation reads pages with
//! positional I/O (`pread` via [`std::os::unix::fs::FileExt`]), the
//! portable stand-in for an `mmap`-backed load: the file is the backing
//! store and resident memory stays bounded by the chunk size.

use std::fmt;
use std::fs::File;
use std::path::Path;
use std::sync::Arc;

use minivm::{Program, Snapshot};
use pinzip::frame::{decode_payload, decode_payload_with_dict, peek_frame};

use crate::columns::{EventColumns, EventRef};
use crate::container::{
    chunk_err, decode_by_codec, detect_version, kind_of, peek_kind, ChunkKind, ContainerHeader,
    ContainerVersion, IndexEntry, PayloadCodec, PinballContainer, PinballDigest, ReplayCheckpoint,
    KIND_CHECKPOINT, KIND_DICT, KIND_EVENTS, KIND_HEADER, KIND_INDEX, MAGIC_V4, TRAILER_MAGIC,
};
use crate::pinball::{Pinball, PinballError, PinballMeta, RecordedExit};
use crate::replay::{EventLog, Replayer};

/// A loaded v4 container that keeps its events in columnar form — the
/// zero-copy counterpart of [`PinballContainer`]. Replayers, trace builds,
/// and the relogger borrow the columns via [`EventRef`] instead of owning
/// event trees.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerView {
    /// Descriptive metadata.
    pub meta: PinballMeta,
    /// Architectural state at region entry.
    pub snapshot: Snapshot,
    /// Recorded syscall results, per thread id, in issue order.
    pub syscalls: Vec<Vec<i64>>,
    /// How the region ended.
    pub exit: RecordedExit,
    /// The replay log, in columnar form, shared by every replayer built
    /// from this view.
    pub events: Arc<EventColumns>,
    /// Embedded checkpoints, ascending by `instr`.
    pub checkpoints: Vec<ReplayCheckpoint>,
    /// Chunk cadence in retired instructions.
    pub checkpoint_interval: u64,
}

impl ContainerView {
    /// Loads a container keeping events columnar. v4 bytes take the fast
    /// path (columns decoded in place, never expanded to owned events);
    /// v1–v3 bytes load through [`PinballContainer::from_bytes`] and are
    /// then packed into columns, so callers can treat every generation
    /// uniformly.
    ///
    /// # Errors
    ///
    /// As [`PinballContainer::from_bytes`]: any damaged frame is a typed
    /// [`PinballError::Chunk`]; an unsealed prefix is
    /// [`PinballError::Unsealed`].
    pub fn from_bytes(bytes: &[u8]) -> Result<ContainerView, PinballError> {
        if detect_version(bytes) != ContainerVersion::V4 {
            let c = PinballContainer::from_bytes(bytes)?;
            let events = Arc::new(EventColumns::from_events(&c.pinball.events));
            return Ok(ContainerView {
                meta: c.pinball.meta,
                snapshot: c.pinball.snapshot,
                syscalls: c.pinball.syscalls,
                exit: c.pinball.exit,
                events,
                checkpoints: c.checkpoints,
                checkpoint_interval: c.checkpoint_interval,
            });
        }

        // Strict v4 walk: header, dict, body frames, index, trailer.
        let mut pos = MAGIC_V4.len();
        let raw =
            peek_frame(bytes, pos, true).map_err(|e| chunk_err(0, peek_kind(bytes, pos), e))?;
        if raw.kind != KIND_HEADER {
            return Err(chunk_err(
                0,
                kind_of(raw.kind),
                "first frame is not the container header",
            ));
        }
        let payload =
            decode_payload(bytes, &raw).map_err(|e| chunk_err(0, ChunkKind::Header, e))?;
        let header: ContainerHeader = decode_by_codec(&payload, raw.codec)
            .map_err(|e| chunk_err(0, ChunkKind::Header, format!("bad header payload: {e}")))?;
        pos += raw.encoded_len;

        let raw =
            peek_frame(bytes, pos, true).map_err(|e| chunk_err(1, peek_kind(bytes, pos), e))?;
        if raw.kind != KIND_DICT {
            return Err(chunk_err(
                1,
                kind_of(raw.kind),
                "second frame is not the shared dictionary",
            ));
        }
        if raw.codec != Some(PayloadCodec::Binary.byte()) {
            return Err(chunk_err(
                1,
                ChunkKind::Dict,
                "dictionary frame carries a non-binary codec byte",
            ));
        }
        let dict = decode_payload(bytes, &raw).map_err(|e| chunk_err(1, ChunkKind::Dict, e))?;
        pos += raw.encoded_len;

        let mut events = EventColumns::new();
        let mut checkpoints: Vec<ReplayCheckpoint> = Vec::new();
        let mut chunk = 2usize;
        let index_frame_off;
        loop {
            if pos >= bytes.len() {
                return Err(PinballError::Unsealed {
                    events_recovered: events.len(),
                    events_expected: header.num_events as usize,
                });
            }
            let frame_off = pos;
            let raw = peek_frame(bytes, pos, true)
                .map_err(|e| chunk_err(chunk, peek_kind(bytes, pos), e))?;
            pos += raw.encoded_len;
            match raw.kind {
                KIND_EVENTS => {
                    let payload = decode_payload_with_dict(bytes, &raw, &dict)
                        .map_err(|e| chunk_err(chunk, ChunkKind::Events, e))?;
                    let cols = EventColumns::decode(&payload).map_err(|e| {
                        chunk_err(chunk, ChunkKind::Events, format!("bad events payload: {e}"))
                    })?;
                    events.extend_from(&cols);
                }
                KIND_CHECKPOINT => {
                    let payload = decode_payload(bytes, &raw)
                        .map_err(|e| chunk_err(chunk, ChunkKind::Checkpoint, e))?;
                    let cp = decode_by_codec(&payload, raw.codec).map_err(|e| {
                        chunk_err(
                            chunk,
                            ChunkKind::Checkpoint,
                            format!("bad checkpoint payload: {e}"),
                        )
                    })?;
                    checkpoints.push(cp);
                }
                KIND_INDEX => {
                    let payload = decode_payload(bytes, &raw)
                        .map_err(|e| chunk_err(chunk, ChunkKind::Index, e))?;
                    let _: Vec<IndexEntry> = decode_by_codec(&payload, raw.codec).map_err(|e| {
                        chunk_err(chunk, ChunkKind::Index, format!("bad index payload: {e}"))
                    })?;
                    index_frame_off = frame_off;
                    break;
                }
                other => {
                    return Err(chunk_err(
                        chunk,
                        kind_of(other),
                        format!("unexpected frame kind {other}"),
                    ));
                }
            }
            chunk += 1;
        }
        let trailer = &bytes[pos..];
        let trailer_ok = trailer.len() == 12
            && &trailer[8..] == TRAILER_MAGIC
            && u64::from_le_bytes(trailer[..8].try_into().expect("8-byte slice"))
                == index_frame_off as u64;
        if !trailer_ok {
            return Err(chunk_err(
                chunk,
                ChunkKind::Index,
                "bad trailer (index offset or magic mismatch)",
            ));
        }
        if events.len() as u64 != header.num_events {
            return Err(PinballError::Format(format!(
                "event count mismatch: header promises {}, chunks hold {}",
                header.num_events,
                events.len()
            )));
        }
        Ok(ContainerView {
            meta: header.meta,
            snapshot: header.snapshot,
            syscalls: header.syscalls,
            exit: header.exit,
            events: Arc::new(events),
            checkpoints,
            checkpoint_interval: header.checkpoint_interval.max(1),
        })
    }

    /// Number of events in the log.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Total instructions the log retires.
    pub fn instructions(&self) -> u64 {
        self.events.instructions()
    }

    /// The checkpoint with the greatest `instr` not exceeding `target`.
    pub fn nearest_checkpoint(&self, target: u64) -> Option<&ReplayCheckpoint> {
        self.checkpoints
            .iter()
            .take_while(|cp| cp.instr <= target)
            .last()
    }

    /// Builds a replayer that borrows this view's columns — no event copy.
    pub fn replayer(&self, program: Arc<Program>) -> Replayer {
        Replayer::from_parts(
            program,
            &self.snapshot,
            &self.syscalls,
            self.exit,
            EventLog::Columns(Arc::clone(&self.events)),
        )
    }

    /// The recording's content digest (identical to the digest of the
    /// owned container — digests are version- and layout-independent).
    pub fn digest(&self) -> PinballDigest {
        self.to_container().digest()
    }

    /// Materializes the owned [`PinballContainer`] (copies the events out
    /// of the columns — the compatibility path, not the hot one).
    pub fn to_container(&self) -> PinballContainer {
        PinballContainer {
            pinball: Pinball {
                meta: self.meta.clone(),
                snapshot: self.snapshot.clone(),
                events: self.events.to_events(),
                syscalls: self.syscalls.clone(),
                exit: self.exit,
            },
            checkpoints: self.checkpoints.clone(),
            checkpoint_interval: self.checkpoint_interval,
        }
    }
}

/// Positional-read helper: `pread` the exact byte range `[off, off+len)`.
fn pread(file: &File, off: u64, len: usize) -> Result<Vec<u8>, PinballError> {
    use std::os::unix::fs::FileExt;
    let mut buf = vec![0u8; len];
    file.read_exact_at(&mut buf, off)
        .map_err(|e| PinballError::Io(format!("pread {len} bytes at {off}: {e}")))?;
    Ok(buf)
}

/// Immutable facts shared by every handle onto one mapped container.
struct MappedInner {
    file: File,
    header: ContainerHeader,
    dict: Vec<u8>,
    /// Footer index entries in file order (including header/dict/index).
    index: Vec<IndexEntry>,
    /// Ordinals (into `index`) of the events frames, in file order.
    event_frames: Vec<usize>,
    /// End offset of the last body frame (= the index frame's offset), so
    /// the final events frame's byte length is known.
    index_off: u64,
}

impl fmt::Debug for MappedInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappedInner")
            .field("num_events", &self.header.num_events)
            .field("frames", &self.index.len())
            .field("event_frames", &self.event_frames.len())
            .finish()
    }
}

/// Byte range of frame ordinal `i`: the next index entry's offset (or the
/// index frame itself, for the last body frame) bounds it.
fn frame_range_in(index: &[IndexEntry], index_off: u64, i: usize) -> (u64, usize) {
    let start = index[i].offset;
    let end = index.get(i + 1).map(|e| e.offset).unwrap_or(index_off);
    (start, (end - start) as usize)
}

impl MappedInner {
    /// Byte range of frame ordinal `i` (from the index; the next entry's
    /// offset bounds it).
    fn frame_range(&self, i: usize) -> (u64, usize) {
        frame_range_in(&self.index, self.index_off, i)
    }

    /// Reads and decodes the checkpoint frame with ordinal `i` in the index.
    fn load_checkpoint_frame(&self, i: usize) -> Result<ReplayCheckpoint, PinballError> {
        let (off, len) = self.frame_range(i);
        let buf = pread(&self.file, off, len)?;
        let chunk = self.index[i].chunk;
        let raw =
            peek_frame(&buf, 0, true).map_err(|e| chunk_err(chunk, ChunkKind::Checkpoint, e))?;
        if raw.kind != KIND_CHECKPOINT {
            return Err(chunk_err(
                chunk,
                kind_of(raw.kind),
                "index entry does not point at a checkpoint frame",
            ));
        }
        let payload =
            decode_payload(&buf, &raw).map_err(|e| chunk_err(chunk, ChunkKind::Checkpoint, e))?;
        decode_by_codec(&payload, raw.codec).map_err(|e| {
            chunk_err(
                chunk,
                ChunkKind::Checkpoint,
                format!("bad checkpoint payload: {e}"),
            )
        })
    }

    /// Reads and decodes the events frame with ordinal `i` in the index.
    fn load_events_frame(&self, i: usize) -> Result<EventColumns, PinballError> {
        let (off, len) = self.frame_range(i);
        let buf = pread(&self.file, off, len)?;
        let chunk = self.index[i].chunk;
        let raw = peek_frame(&buf, 0, true).map_err(|e| chunk_err(chunk, ChunkKind::Events, e))?;
        if raw.kind != KIND_EVENTS || raw.codec != Some(PayloadCodec::Columnar.byte()) {
            return Err(chunk_err(
                chunk,
                kind_of(raw.kind),
                "index entry does not point at a columnar events frame",
            ));
        }
        let payload = decode_payload_with_dict(&buf, &raw, &self.dict)
            .map_err(|e| chunk_err(chunk, ChunkKind::Events, e))?;
        EventColumns::decode(&payload)
            .map_err(|e| chunk_err(chunk, ChunkKind::Events, format!("bad events payload: {e}")))
    }
}

/// A v4 container opened in paged mode: metadata is resident, events chunks
/// are read on demand. See the module docs for the I/O model.
#[derive(Debug, Clone)]
pub struct MappedContainer {
    inner: Arc<MappedInner>,
}

impl MappedContainer {
    /// Opens `path` in paged mode. Reads and validates the trailer, footer
    /// index, header frame, and shared dictionary; events chunks and
    /// checkpoints stay on disk until requested.
    ///
    /// # Errors
    ///
    /// [`PinballError::Io`] on filesystem errors, [`PinballError::Format`]
    /// for non-v4 files or a bad trailer, [`PinballError::Chunk`] for a
    /// damaged index, header, or dictionary frame.
    pub fn open(path: &Path) -> Result<MappedContainer, PinballError> {
        let file = File::open(path).map_err(|e| PinballError::Io(e.to_string()))?;
        let file_len = file
            .metadata()
            .map_err(|e| PinballError::Io(e.to_string()))?
            .len();
        let magic = pread(&file, 0, MAGIC_V4.len().min(file_len as usize))?;
        if detect_version(&magic) != ContainerVersion::V4 {
            return Err(PinballError::Format(
                "mapped loads require a v4 container (migrate older files first)".into(),
            ));
        }
        if file_len < 18 {
            return Err(PinballError::Format(
                "file too short for a v4 trailer".into(),
            ));
        }
        let trailer = pread(&file, file_len - 12, 12)?;
        if &trailer[8..] != TRAILER_MAGIC {
            return Err(PinballError::Format("bad trailer magic".into()));
        }
        let index_off = u64::from_le_bytes(trailer[..8].try_into().expect("8-byte slice"));
        if index_off >= file_len - 12 {
            return Err(PinballError::Format(
                "trailer index offset out of range".into(),
            ));
        }
        let index_buf = pread(&file, index_off, (file_len - 12 - index_off) as usize)?;
        let index: Vec<IndexEntry> = {
            let raw =
                peek_frame(&index_buf, 0, true).map_err(|e| chunk_err(0, ChunkKind::Index, e))?;
            if raw.kind != KIND_INDEX {
                return Err(chunk_err(
                    raw.kind as usize,
                    kind_of(raw.kind),
                    "trailer does not point at the index frame",
                ));
            }
            let payload =
                decode_payload(&index_buf, &raw).map_err(|e| chunk_err(0, ChunkKind::Index, e))?;
            decode_by_codec(&payload, raw.codec)
                .map_err(|e| chunk_err(0, ChunkKind::Index, format!("bad index payload: {e}")))?
        };
        // Structural sanity: entries in file order, header first, offsets
        // inside the body region.
        let body_ok = index.last().is_some_and(|e| e.kind == ChunkKind::Index)
            && index.first().is_some_and(|e| e.kind == ChunkKind::Header)
            && index.windows(2).all(|w| w[0].offset < w[1].offset)
            && index
                .iter()
                .take(index.len().saturating_sub(1))
                .all(|e| e.offset < index_off);
        if !body_ok {
            return Err(chunk_err(0, ChunkKind::Index, "inconsistent index entries"));
        }
        // Drop the self-referencing index entry; keep body frames only.
        let mut index = index;
        index.pop();

        // Header frame (ordinal 0).
        let (off, len) = frame_range_in(&index, index_off, 0);
        let buf = pread(&file, off, len)?;
        let raw = peek_frame(&buf, 0, true).map_err(|e| chunk_err(0, ChunkKind::Header, e))?;
        if raw.kind != KIND_HEADER {
            return Err(chunk_err(
                0,
                kind_of(raw.kind),
                "first frame is not the container header",
            ));
        }
        let payload = decode_payload(&buf, &raw).map_err(|e| chunk_err(0, ChunkKind::Header, e))?;
        let header: ContainerHeader = decode_by_codec(&payload, raw.codec)
            .map_err(|e| chunk_err(0, ChunkKind::Header, format!("bad header payload: {e}")))?;

        // Dict frame (ordinal 1).
        if index.len() < 2 || index[1].kind != ChunkKind::Dict {
            return Err(chunk_err(
                1,
                ChunkKind::Dict,
                "second frame is not the shared dictionary",
            ));
        }
        let (off, len) = frame_range_in(&index, index_off, 1);
        let buf = pread(&file, off, len)?;
        let raw = peek_frame(&buf, 0, true).map_err(|e| chunk_err(1, ChunkKind::Dict, e))?;
        if raw.kind != KIND_DICT || raw.codec != Some(PayloadCodec::Binary.byte()) {
            return Err(chunk_err(
                1,
                ChunkKind::Dict,
                "second frame is not a binary-coded shared dictionary",
            ));
        }
        let dict = decode_payload(&buf, &raw).map_err(|e| chunk_err(1, ChunkKind::Dict, e))?;

        let event_frames: Vec<usize> = index
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind == ChunkKind::Events)
            .map(|(i, _)| i)
            .collect();
        Ok(MappedContainer {
            inner: Arc::new(MappedInner {
                file,
                header,
                dict,
                index,
                event_frames,
                index_off,
            }),
        })
    }

    /// Descriptive metadata.
    pub fn meta(&self) -> &PinballMeta {
        &self.inner.header.meta
    }

    /// Architectural state at region entry.
    pub fn snapshot(&self) -> &Snapshot {
        &self.inner.header.snapshot
    }

    /// Recorded syscall results, per thread.
    pub fn syscalls(&self) -> &[Vec<i64>] {
        &self.inner.header.syscalls
    }

    /// How the region ended.
    pub fn exit(&self) -> RecordedExit {
        self.inner.header.exit
    }

    /// Events the header promises.
    pub fn num_events(&self) -> usize {
        self.inner.header.num_events as usize
    }

    /// Chunk cadence in retired instructions.
    pub fn checkpoint_interval(&self) -> u64 {
        self.inner.header.checkpoint_interval.max(1)
    }

    /// The shared dictionary size in bytes.
    pub fn dict_len(&self) -> usize {
        self.inner.dict.len()
    }

    /// A paged handle onto the event log, positioned at event 0.
    pub fn events(&self) -> MappedEvents {
        MappedEvents {
            inner: Arc::clone(&self.inner),
            bases: vec![0],
            cur: 0,
            cols: Arc::new(EventColumns::new()),
            loaded: false,
        }
    }

    /// Builds a replayer whose log pages in from the file on demand.
    pub fn replayer(&self, program: Arc<Program>) -> Replayer {
        Replayer::from_parts(
            program,
            &self.inner.header.snapshot,
            &self.inner.header.syscalls,
            self.inner.header.exit,
            EventLog::Mapped(self.events()),
        )
    }

    /// Reads the embedded checkpoint with the greatest `instr` not
    /// exceeding `target`, if any — one frame read, found via the footer
    /// index without touching any events chunk.
    ///
    /// # Errors
    ///
    /// Returns [`PinballError::Chunk`] when the chosen checkpoint frame is
    /// damaged, [`PinballError::Io`] on read errors.
    pub fn nearest_checkpoint(
        &self,
        target: u64,
    ) -> Result<Option<ReplayCheckpoint>, PinballError> {
        let best = self
            .inner
            .index
            .iter()
            .enumerate()
            .rfind(|(_, e)| e.kind == ChunkKind::Checkpoint && e.instr <= target);
        let Some((ordinal, _)) = best else {
            return Ok(None);
        };
        Ok(Some(self.inner.load_checkpoint_frame(ordinal)?))
    }

    /// Materializes the full owned container (reads every frame — the
    /// differential-testing path, not the production one).
    ///
    /// # Errors
    ///
    /// Any frame damage surfaces as the typed [`PinballError::Chunk`].
    pub fn to_container(&self) -> Result<PinballContainer, PinballError> {
        let mut events = EventColumns::new();
        for &i in &self.inner.event_frames {
            events.extend_from(&self.inner.load_events_frame(i)?);
        }
        if events.len() != self.num_events() {
            return Err(PinballError::Format(format!(
                "event count mismatch: header promises {}, chunks hold {}",
                self.num_events(),
                events.len()
            )));
        }
        let mut checkpoints = Vec::new();
        for (i, e) in self.inner.index.iter().enumerate() {
            if e.kind == ChunkKind::Checkpoint {
                checkpoints.push(self.inner.load_checkpoint_frame(i)?);
            }
        }
        Ok(PinballContainer {
            pinball: Pinball {
                meta: self.inner.header.meta.clone(),
                snapshot: self.inner.header.snapshot.clone(),
                events: events.to_events(),
                syscalls: self.inner.header.syscalls.clone(),
                exit: self.inner.header.exit,
            },
            checkpoints,
            checkpoint_interval: self.checkpoint_interval(),
        })
    }

    /// The recording's content digest (reads every events frame once).
    ///
    /// # Errors
    ///
    /// As [`MappedContainer::to_container`].
    pub fn digest(&self) -> Result<PinballDigest, PinballError> {
        Ok(self.to_container()?.digest())
    }
}

/// A paged handle onto a mapped container's event log: one decoded chunk
/// resident at a time, with chunk base indices discovered as the cursor
/// walks forward. Sequential access (replay) pages each chunk exactly
/// once; backward jumps reuse the discovered bases to land directly on the
/// right chunk.
#[derive(Debug, Clone)]
pub struct MappedEvents {
    inner: Arc<MappedInner>,
    /// `bases[k]` = first event index of events-chunk `k`; extended as
    /// chunks are visited (`bases.len() - 1` chunks fully discovered).
    bases: Vec<usize>,
    /// Ordinal (into `inner.event_frames`) of the resident chunk.
    cur: usize,
    /// The resident chunk's columns.
    cols: Arc<EventColumns>,
    /// Whether `cols` actually holds chunk `cur` (false until first use).
    loaded: bool,
}

impl MappedEvents {
    /// Events the header promises.
    pub fn len(&self) -> usize {
        self.inner.header.num_events as usize
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn load(&mut self, chunk: usize) {
        let frame = self.inner.event_frames[chunk];
        let cols = self
            .inner
            .load_events_frame(frame)
            .unwrap_or_else(|e| panic!("mapped events chunk {chunk} unreadable: {e}"));
        if chunk + 1 == self.bases.len() {
            // Newly discovered chunk: record where the next one starts.
            self.bases.push(self.bases[chunk] + cols.len());
        }
        self.cur = chunk;
        self.cols = Arc::new(cols);
        self.loaded = true;
    }

    /// Borrows event `i`, paging its chunk in if needed.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`, or when the backing file has been
    /// damaged since [`MappedContainer::open`] validated its skeleton (a
    /// damaged chunk is unrecoverable mid-replay; fail loudly rather than
    /// diverge silently).
    pub fn get(&mut self, i: usize) -> EventRef<'_> {
        assert!(i < self.len(), "event index {i} out of range");
        if !self.loaded {
            self.load(0);
        }
        if i < self.bases[self.cur] {
            // Backward jump: binary-search the discovered bases.
            let chunk = match self.bases.binary_search(&i) {
                Ok(k) => k.min(self.bases.len() - 2),
                Err(k) => k - 1,
            };
            self.load(chunk);
        }
        // Walk forward until the resident chunk covers `i`.
        while i >= self.bases[self.cur] + self.cols.len() {
            let next = self.cur + 1;
            assert!(
                next < self.inner.event_frames.len(),
                "event index {i} beyond the last chunk ({} events found, header promises {})",
                self.bases[self.cur] + self.cols.len(),
                self.len()
            );
            self.load(next);
        }
        self.cols.get(i - self.bases[self.cur])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{assemble, LiveEnv, NullTool, RoundRobin};
    use std::sync::Arc;

    use crate::logger::record_whole_program;
    use crate::replay::ReplayStatus;

    const PROG: &str = r"
        .data
        acc: .word 0
        .text
        .func main
            movi r1, 1
            spawn r2, worker, r1
            movi r1, 2
            spawn r3, worker, r1
            join r2
            join r3
            la r4, acc
            load r5, r4, 0
            rand r6
            print r5
            halt
        .endfunc
        .func worker
            movi r3, 120
        loop:
            la r1, acc
            xadd r2, r1, r0
            subi r3, r3, 1
            bgti r3, 0, loop
            halt
        .endfunc
        ";

    fn record() -> (Arc<Program>, crate::Pinball) {
        let program = Arc::new(assemble(PROG).unwrap());
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(5),
            &mut LiveEnv::new(9),
            1_000_000,
            "view-demo",
        )
        .unwrap();
        (program, rec.pinball)
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pinplay-view-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn view_load_equals_owned_load() {
        let (program, pinball) = record();
        let c = PinballContainer::with_checkpoints(pinball, &program, 128);
        let bytes = c.to_bytes().unwrap();
        let view = ContainerView::from_bytes(&bytes).unwrap();
        assert_eq!(view.num_events(), c.pinball.events.len());
        assert_eq!(view.to_container(), c);
        assert_eq!(view.digest(), c.digest());
    }

    #[test]
    fn view_loads_older_formats_via_fallback() {
        let (_, pinball) = record();
        let v3 = PinballContainer::new(pinball.clone())
            .to_bytes_v3()
            .unwrap();
        let view = ContainerView::from_bytes(&v3).unwrap();
        assert_eq!(view.to_container().pinball, pinball);
    }

    #[test]
    fn view_replayer_matches_owned_replayer() {
        let (program, pinball) = record();
        let bytes = PinballContainer::new(pinball.clone()).to_bytes().unwrap();
        let view = ContainerView::from_bytes(&bytes).unwrap();
        let mut a = view.replayer(Arc::clone(&program));
        let mut b = Replayer::new(Arc::clone(&program), &pinball);
        assert_eq!(a.run(&mut NullTool), ReplayStatus::Completed);
        assert_eq!(b.run(&mut NullTool), ReplayStatus::Completed);
        assert_eq!(a.exec().snapshot(), b.exec().snapshot());
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn view_rejects_damage_with_typed_errors() {
        let (program, pinball) = record();
        let bytes = PinballContainer::with_checkpoints(pinball, &program, 128)
            .to_bytes()
            .unwrap();
        let mut bad = bytes.clone();
        let target = bytes.len() * 3 / 4;
        bad[target] ^= 0x20;
        assert!(matches!(
            ContainerView::from_bytes(&bad),
            Err(PinballError::Chunk { .. }) | Err(PinballError::Format(_))
        ));
    }

    #[test]
    fn mapped_load_equals_bytes_load() {
        let (program, pinball) = record();
        let c = PinballContainer::with_checkpoints(pinball, &program, 128);
        let path = temp_path("mapped-eq.pb");
        c.save(&path).unwrap();
        let mapped = PinballContainer::open_mapped(&path).unwrap();
        assert_eq!(mapped.num_events(), c.pinball.events.len());
        assert_eq!(mapped.meta(), &c.pinball.meta);
        assert_eq!(mapped.to_container().unwrap(), c);
        assert_eq!(mapped.digest().unwrap(), c.digest());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_replay_matches_in_memory_replay() {
        let (program, pinball) = record();
        let c = PinballContainer::new(pinball.clone());
        let path = temp_path("mapped-replay.pb");
        c.save(&path).unwrap();
        let mapped = PinballContainer::open_mapped(&path).unwrap();
        let mut a = mapped.replayer(Arc::clone(&program));
        let mut b = Replayer::new(Arc::clone(&program), &pinball);
        assert_eq!(a.run(&mut NullTool), ReplayStatus::Completed);
        assert_eq!(b.run(&mut NullTool), ReplayStatus::Completed);
        assert_eq!(a.exec().snapshot(), b.exec().snapshot());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_events_random_access_agrees_with_columns() {
        let (program, pinball) = record();
        let c = PinballContainer::with_checkpoints(pinball.clone(), &program, 64);
        let path = temp_path("mapped-random.pb");
        c.save(&path).unwrap();
        let mapped = PinballContainer::open_mapped(&path).unwrap();
        let mut ev = mapped.events();
        let n = pinball.events.len();
        // Forward walk, then backward jumps, then scattered probes.
        for i in 0..n {
            assert_eq!(ev.get(i).to_owned(), pinball.events[i]);
        }
        for i in (0..n).rev().step_by(7) {
            assert_eq!(ev.get(i).to_owned(), pinball.events[i]);
        }
        for i in [0, n / 2, n - 1, 1, n / 3] {
            assert_eq!(ev.get(i).to_owned(), pinball.events[i]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_checkpoint_fetch_matches_embedded() {
        let (program, pinball) = record();
        let c = PinballContainer::with_checkpoints(pinball, &program, 128);
        assert!(!c.checkpoints.is_empty());
        let path = temp_path("mapped-ckpt.pb");
        c.save(&path).unwrap();
        let mapped = PinballContainer::open_mapped(&path).unwrap();
        let target = c.checkpoints.last().unwrap().instr;
        let got = mapped.nearest_checkpoint(target).unwrap().unwrap();
        assert_eq!(&got, c.nearest_checkpoint(target).unwrap());
        assert!(mapped.nearest_checkpoint(0).unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_open_rejects_non_v4() {
        let (_, pinball) = record();
        let path = temp_path("mapped-v3.pb");
        std::fs::write(&path, PinballContainer::new(pinball).to_bytes_v3().unwrap()).unwrap();
        assert!(matches!(
            PinballContainer::open_mapped(&path),
            Err(PinballError::Format(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_open_rejects_truncated_or_damaged_skeleton() {
        let (_, pinball) = record();
        let bytes = PinballContainer::new(pinball).to_bytes().unwrap();
        // Truncated trailer.
        let path = temp_path("mapped-trunc.pb");
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(PinballContainer::open_mapped(&path).is_err());
        // Damaged index frame (flip a byte inside the index payload).
        let mut bad = bytes.clone();
        let idx_off =
            u64::from_le_bytes(bytes[bytes.len() - 12..bytes.len() - 4].try_into().unwrap())
                as usize;
        bad[idx_off + 8] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        assert!(PinballContainer::open_mapped(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
