//! The replayer: deterministic re-execution of a pinball.
//!
//! Replay reproduces the recorded execution exactly: the schedule log is
//! followed step for step (which reproduces the shared-memory access order,
//! since the VM is sequentially consistent), and syscall results are injected
//! from the log instead of the environment. PinPlay's "repeatability
//! guarantee" (paper §1) is this property; the property tests in the
//! `slicer` and root crates check it end to end.

use std::sync::Arc;

use minivm::{Executor, Program, Reg, ScriptedEnv, Snapshot, Tool, ToolControl, VmError};

use crate::columns::{EventColumns, EventRef};
use crate::container::{PinballContainer, ReplayCheckpoint};
use crate::pinball::{Pinball, RecordedExit, ReplayEvent};
use crate::view::MappedEvents;

/// Where a replayer reads its event log from.
///
/// Historically every `Replayer` cloned the pinball's `Vec<ReplayEvent>`;
/// with the v4 columnar container the log can instead be *borrowed* from a
/// shared container, a columnar chunk set, or a lazily-paged mapped file —
/// the replayer reads events in place via [`EventRef`] and never owns them.
#[derive(Debug, Clone)]
pub enum EventLog {
    /// An owned event vector (shared among clones of this replayer).
    Owned(Arc<Vec<ReplayEvent>>),
    /// Events borrowed from a shared loaded container — many replayers
    /// (debug sessions, slicing collectors) read one copy of the log.
    Shared(Arc<PinballContainer>),
    /// Events read in place from columnar storage (v4 loads).
    Columns(Arc<EventColumns>),
    /// Events paged on demand from an on-disk v4 container
    /// ([`PinballContainer::open_mapped`](crate::view::MappedContainer)).
    Mapped(MappedEvents),
}

impl EventLog {
    /// Number of events in the log.
    pub fn len(&self) -> usize {
        match self {
            EventLog::Owned(v) => v.len(),
            EventLog::Shared(c) => c.pinball.events.len(),
            EventLog::Columns(c) => c.len(),
            EventLog::Mapped(m) => m.len(),
        }
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows event `i`. Takes `&mut self` because the mapped variant may
    /// page in a chunk; the other variants never mutate.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`, or (mapped) when the backing file has
    /// been corrupted since `open_mapped` validated it.
    pub fn get(&mut self, i: usize) -> EventRef<'_> {
        match self {
            EventLog::Owned(v) => EventRef::of(&v[i]),
            EventLog::Shared(c) => EventRef::of(&c.pinball.events[i]),
            EventLog::Columns(c) => c.get(i),
            EventLog::Mapped(m) => m.get(i),
        }
    }
}

/// Why a replay stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayStatus {
    /// The replay log was fully consumed.
    Completed,
    /// The replayed execution trapped (reproducing the recorded bug).
    Trapped(VmError),
    /// The tool asked to pause; call [`Replayer::run`] again to resume.
    Paused,
}

/// How a [`Replayer::seek_to`] reached its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeekOutcome {
    /// The requested retired-instruction position.
    pub target: u64,
    /// `Some(instr)` when an embedded checkpoint at `instr` was restored.
    pub restored_from: Option<u64>,
    /// Whether the seek had to restart replay from the region snapshot
    /// (no usable checkpoint — the O(region) fallback).
    pub full_restart: bool,
    /// Instructions replayed to get from the chosen start to the target.
    pub replayed: u64,
}

/// Replays a pinball, optionally under instrumentation.
///
/// `Replayer` is `Clone`: a clone is a *checkpoint* — an independent
/// replay positioned at the same point, which is what the debugger's
/// reverse-execution support snapshots (the paper's §8 sketch: reverse
/// debugging via "PinPlay's user-level check-pointing feature").
#[derive(Debug, Clone)]
pub struct Replayer {
    exec: Executor,
    log: EventLog,
    expected_exit: RecordedExit,
    pos: usize,
    done_in_event: u64,
    env: ScriptedEnv,
}

impl Replayer {
    /// Prepares a replay of `pinball` for `program`.
    pub fn new(program: Arc<Program>, pinball: &Pinball) -> Replayer {
        Replayer::from_parts(
            program,
            &pinball.snapshot,
            &pinball.syscalls,
            pinball.exit,
            EventLog::Owned(Arc::new(pinball.events.clone())),
        )
    }

    /// Prepares a replay that reads events from `log` — the zero-copy
    /// constructor: the snapshot and syscall queues are still copied (both
    /// small), but the event log, which dominates a pinball's size, is read
    /// in place.
    pub fn from_parts(
        program: Arc<Program>,
        snapshot: &Snapshot,
        syscalls: &[Vec<i64>],
        exit: RecordedExit,
        log: EventLog,
    ) -> Replayer {
        let exec = Executor::from_snapshot(program, snapshot);
        let mut env = ScriptedEnv::new();
        for (tid, results) in syscalls.iter().enumerate() {
            for &v in results {
                env.push(tid as u32, v);
            }
        }
        Replayer {
            exec,
            log,
            expected_exit: exit,
            pos: 0,
            done_in_event: 0,
            env,
        }
    }

    /// Prepares a replay that borrows the event log from a shared container
    /// — clones of the `Arc`, not of the log.
    pub fn shared(program: Arc<Program>, container: Arc<PinballContainer>) -> Replayer {
        let log = EventLog::Shared(Arc::clone(&container));
        Replayer::from_parts(
            program,
            &container.pinball.snapshot,
            &container.pinball.syscalls,
            container.pinball.exit,
            log,
        )
    }

    /// The executor being replayed (for state inspection — the debugger's
    /// `print`/`x` commands read through this).
    pub fn exec(&self) -> &Executor {
        &self.exec
    }

    /// Whether the whole replay log has been consumed.
    pub fn finished(&self) -> bool {
        self.pos >= self.log.len()
    }

    /// The event log this replayer reads from.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Instructions retired so far in this replay.
    pub fn replayed_instructions(&self) -> u64 {
        self.exec.seq()
    }

    /// The exit recorded at log time, for divergence checking.
    pub fn expected_exit(&self) -> RecordedExit {
        self.expected_exit
    }

    /// Replays until the log is consumed, the recorded trap reproduces, or
    /// `tool` requests a pause. Resumable: calling `run` again continues
    /// from the pause point.
    ///
    /// # Panics
    ///
    /// Panics on replay divergence — a scheduled thread that is not
    /// runnable, or a trap that does not match the recorded exit. Divergence
    /// indicates a broken pinball (or a bug in the logger) and must not be
    /// silently ignored: determinism is the tool's core guarantee.
    pub fn run(&mut self, tool: &mut dyn Tool) -> ReplayStatus {
        while self.pos < self.log.len() {
            match self.log.get(self.pos) {
                EventRef::Skip { tid, to_pc, regs } => {
                    // Excluded code region: teleport past it and restore its
                    // register side effects (paper Fig. 6(b)).
                    for (r, v) in regs.iter() {
                        self.exec.inject_reg(tid, Reg(r as u8), v);
                    }
                    self.exec.set_pc(tid, to_pc);
                    self.pos += 1;
                }
                EventRef::Inject { mems } => {
                    // Memory side effects of excluded code, at their
                    // original position in the global order.
                    for (a, v) in mems.iter() {
                        self.exec.inject_mem(a, v);
                    }
                    self.pos += 1;
                }
                EventRef::Run { tid, steps } => {
                    if self.done_in_event >= steps {
                        self.pos += 1;
                        self.done_in_event = 0;
                        continue;
                    }
                    match self.exec.step(tid, &mut self.env) {
                        Ok((ev, _)) => {
                            self.done_in_event += 1;
                            if tool.on_event(&ev) == ToolControl::Stop {
                                return ReplayStatus::Paused;
                            }
                        }
                        Err((ev, e)) => {
                            self.done_in_event += 1;
                            let _ = tool.on_event(&ev);
                            assert_eq!(
                                self.expected_exit,
                                RecordedExit::Trap(e),
                                "replay divergence: unexpected trap {e}"
                            );
                            return ReplayStatus::Trapped(e);
                        }
                    }
                }
            }
        }
        ReplayStatus::Completed
    }

    /// Replays the whole log, streaming every instruction event into
    /// per-thread collector channels: the event for thread `t` goes to
    /// `sinks[t % sinks.len()]`, so all events of one thread arrive at one
    /// collector in program order. This is the producer half of the parallel
    /// slicing pipeline — the `slicer` crate's collectors consume the
    /// channels concurrently while the replay runs.
    ///
    /// Unlike [`Replayer::run`] there is no pause path: the log is consumed
    /// to completion (or to the recorded trap, whose event is also
    /// delivered before returning).
    ///
    /// # Panics
    ///
    /// Panics if `sinks` is empty, if a receiver hangs up mid-replay, or on
    /// replay divergence (as [`Replayer::run`]).
    pub fn run_streaming(
        &mut self,
        sinks: &[crossbeam::channel::Sender<minivm::InsEvent>],
    ) -> ReplayStatus {
        assert!(!sinks.is_empty(), "run_streaming needs at least one sink");
        struct Router<'a> {
            sinks: &'a [crossbeam::channel::Sender<minivm::InsEvent>],
        }
        impl Tool for Router<'_> {
            fn on_event(&mut self, ev: &minivm::InsEvent) -> ToolControl {
                self.sinks[ev.tid as usize % self.sinks.len()]
                    .send(*ev)
                    .expect("trace collector hung up mid-replay");
                ToolControl::Continue
            }
        }
        self.run(&mut Router { sinks })
    }

    /// Captures the replayer's full state as a serializable checkpoint.
    /// Restoring it (on a replayer of the *same pinball*) and replaying
    /// forward reproduces this replay exactly — including region-relative
    /// instance/sequence numbering, which a plain snapshot would reset.
    pub fn checkpoint(&self) -> ReplayCheckpoint {
        ReplayCheckpoint {
            instr: self.exec.seq(),
            pos: self.pos,
            done_in_event: self.done_in_event,
            exec: self.exec.save_state(),
            env: self.env.queues(),
        }
    }

    /// Rewinds (or fast-forwards) this replayer to `cp`, which must have
    /// been captured from a replay of the same pinball.
    pub fn restore_checkpoint(&mut self, cp: &ReplayCheckpoint) {
        self.exec = Executor::from_state(Arc::clone(self.exec.program()), &cp.exec);
        self.env = ScriptedEnv::from_queues(cp.env.clone());
        self.pos = cp.pos;
        self.done_in_event = cp.done_in_event;
    }

    /// A 64-bit digest (FNV-1a over the serialized [`ReplayCheckpoint`]) of
    /// the complete replay state at the current position: machine state,
    /// remaining syscall queues, and log cursor. Replay determinism makes
    /// the state a pure function of the pinball and the retired-instruction
    /// count, so two replayers of the same pinball that retired the same
    /// number of instructions digest identically — however they got there
    /// (straight-line replay, checkpoint restore, or a seek). The
    /// reverse-execution property tests use this to assert that a backward
    /// step lands on exactly the corresponding forward state.
    pub fn state_digest(&self) -> u64 {
        let bytes = serde_json::to_vec(&self.checkpoint()).expect("checkpoint serializes");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Restores `cp` and replays forward to `target` retired instructions
    /// (uninstrumented). Returns the number of instructions replayed.
    pub fn run_from_checkpoint(&mut self, cp: &ReplayCheckpoint, target: u64) -> u64 {
        self.restore_checkpoint(cp);
        let todo = target.saturating_sub(cp.instr);
        if todo > 0 {
            self.run_steps(todo, &mut minivm::NullTool);
        }
        self.replayed_instructions() - cp.instr
    }

    /// Replays at most `n` further instructions. Returns
    /// [`ReplayStatus::Paused`] when the budget is exhausted with log left.
    pub fn run_steps(&mut self, n: u64, tool: &mut dyn Tool) -> ReplayStatus {
        struct Bounded<'a> {
            left: u64,
            inner: &'a mut dyn Tool,
        }
        impl Tool for Bounded<'_> {
            fn on_event(&mut self, ev: &minivm::InsEvent) -> ToolControl {
                let control = self.inner.on_event(ev);
                self.left -= 1;
                if self.left == 0 || control == ToolControl::Stop {
                    ToolControl::Stop
                } else {
                    ToolControl::Continue
                }
            }
        }
        if n == 0 {
            return if self.finished() {
                ReplayStatus::Completed
            } else {
                ReplayStatus::Paused
            };
        }
        self.run(&mut Bounded {
            left: n,
            inner: tool,
        })
    }

    /// Replays (uninstrumented) until the log position reaches event index
    /// `target`, leaving the replayer exactly at that event boundary —
    /// trailing zero-instruction events (`Skip`/`Inject`) before `target`
    /// are consumed too, so [`Replayer::checkpoint`] taken here has
    /// `pos == target` and `done_in_event == 0`. This is how the container
    /// captures its embedded chunk-boundary checkpoints.
    ///
    /// # Panics
    ///
    /// Panics on replay divergence, as [`Replayer::run`].
    pub fn run_to_event(&mut self, target: usize) -> ReplayStatus {
        let target = target.min(self.log.len());
        while self.pos < target {
            match self.log.get(self.pos) {
                EventRef::Skip { tid, to_pc, regs } => {
                    for (r, v) in regs.iter() {
                        self.exec.inject_reg(tid, Reg(r as u8), v);
                    }
                    self.exec.set_pc(tid, to_pc);
                    self.pos += 1;
                }
                EventRef::Inject { mems } => {
                    for (a, v) in mems.iter() {
                        self.exec.inject_mem(a, v);
                    }
                    self.pos += 1;
                }
                EventRef::Run { tid, steps } => {
                    if self.done_in_event >= steps {
                        self.pos += 1;
                        self.done_in_event = 0;
                        continue;
                    }
                    match self.exec.step(tid, &mut self.env) {
                        Ok(_) => self.done_in_event += 1,
                        Err((_, e)) => {
                            self.done_in_event += 1;
                            assert_eq!(
                                self.expected_exit,
                                RecordedExit::Trap(e),
                                "replay divergence: unexpected trap {e}"
                            );
                            return ReplayStatus::Trapped(e);
                        }
                    }
                }
            }
        }
        if self.pos >= self.log.len() {
            ReplayStatus::Completed
        } else {
            ReplayStatus::Paused
        }
    }

    /// Repositions the replay at exactly `target` retired instructions,
    /// using the cheapest available path: roll forward from the current
    /// position, restore the nearest preceding embedded checkpoint and
    /// replay the tail chunk, or — only when seeking backwards past every
    /// checkpoint — restart from the region snapshot. This is what turns
    /// cyclic-debugging re-runs from O(region) into O(chunk).
    ///
    /// `container` must hold the same pinball this replayer was built from.
    pub fn seek_to(&mut self, container: &PinballContainer, target: u64) -> SeekOutcome {
        let current = self.replayed_instructions();
        let best = container.nearest_checkpoint(target);
        let usable = best.filter(|cp| current > target || cp.instr > current);
        if let Some(cp) = usable {
            let replayed = self.run_from_checkpoint(cp, target);
            return SeekOutcome {
                target,
                restored_from: Some(cp.instr),
                full_restart: false,
                replayed,
            };
        }
        if current <= target {
            self.run_steps(target - current, &mut minivm::NullTool);
            return SeekOutcome {
                target,
                restored_from: None,
                full_restart: false,
                replayed: self.replayed_instructions() - current,
            };
        }
        // Seeking backwards with no checkpoint to land on: full restart —
        // reuse the existing log handle rather than re-cloning the events.
        *self = Replayer::from_parts(
            Arc::clone(self.exec.program()),
            &container.pinball.snapshot,
            &container.pinball.syscalls,
            container.pinball.exit,
            self.log.clone(),
        );
        self.run_steps(target, &mut minivm::NullTool);
        SeekOutcome {
            target,
            restored_from: None,
            full_restart: true,
            replayed: self.replayed_instructions(),
        }
    }

    /// Replays exactly one instruction (the debugger's `stepi`), skipping
    /// over any pending `Skip` events first.
    ///
    /// Returns `None` when the log is exhausted.
    pub fn step(&mut self, tool: &mut dyn Tool) -> Option<ReplayStatus> {
        struct StopAfterOne<'a> {
            inner: &'a mut dyn Tool,
        }
        impl Tool for StopAfterOne<'_> {
            fn on_event(&mut self, ev: &minivm::InsEvent) -> ToolControl {
                let _ = self.inner.on_event(ev);
                ToolControl::Stop
            }
        }
        if self.finished() {
            return None;
        }
        let mut one = StopAfterOne { inner: tool };
        Some(self.run(&mut one))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{assemble, LiveEnv, NullTool, Reg, RoundRobin};

    use crate::logger::record_whole_program;

    const PROG: &str = r"
        .data
        acc: .word 0
        .text
        .func main
            movi r1, 1
            spawn r2, worker, r1
            movi r1, 2
            spawn r3, worker, r1
            join r2
            join r3
            la r4, acc
            load r5, r4, 0
            rand r6
            print r5
            halt
        .endfunc
        .func worker
            la r1, acc
            xadd r2, r1, r0
            halt
        .endfunc
        ";

    fn record() -> (Arc<minivm::Program>, Pinball) {
        let program = Arc::new(assemble(PROG).unwrap());
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(3),
            &mut LiveEnv::new(42),
            100_000,
            "demo",
        )
        .unwrap();
        (program, rec.pinball)
    }

    #[test]
    fn replay_reproduces_final_state() {
        let (program, pinball) = record();
        let mut rep = Replayer::new(Arc::clone(&program), &pinball);
        let status = rep.run(&mut NullTool);
        assert_eq!(status, ReplayStatus::Completed);
        assert!(rep.finished());
        let acc = program.symbol("acc").unwrap();
        assert_eq!(rep.exec().read_mem(acc), 3);
        assert_eq!(rep.exec().output(), &[3]);
    }

    #[test]
    fn two_replays_are_identical() {
        let (program, pinball) = record();
        let run_once = || {
            let mut rep = Replayer::new(Arc::clone(&program), &pinball);
            rep.run(&mut NullTool);
            (
                rep.exec().output().to_vec(),
                rep.exec().read_reg(0, Reg(6)),
                rep.exec().snapshot(),
            )
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1, "recorded rand() result injected identically");
        assert_eq!(a.2, b.2, "bit-identical final state");
    }

    #[test]
    fn replay_matches_live_instruction_count() {
        let (program, pinball) = record();
        let mut rep = Replayer::new(Arc::clone(&program), &pinball);
        rep.run(&mut NullTool);
        assert_eq!(rep.replayed_instructions(), pinball.logged_instructions());
    }

    #[test]
    fn paused_replay_resumes() {
        let (program, pinball) = record();
        let mut rep = Replayer::new(Arc::clone(&program), &pinball);
        let mut n = 0u32;
        let mut stop_after_3 = |_: &minivm::InsEvent| {
            n += 1;
            if n == 3 {
                ToolControl::Stop
            } else {
                ToolControl::Continue
            }
        };
        assert_eq!(rep.run(&mut stop_after_3), ReplayStatus::Paused);
        assert_eq!(rep.replayed_instructions(), 3);
        assert_eq!(rep.run(&mut NullTool), ReplayStatus::Completed);
        assert_eq!(rep.replayed_instructions(), pinball.logged_instructions());
    }

    #[test]
    fn single_stepping_walks_the_whole_log() {
        let (program, pinball) = record();
        let mut rep = Replayer::new(Arc::clone(&program), &pinball);
        let mut count = 0u64;
        while let Some(status) = rep.step(&mut NullTool) {
            match status {
                ReplayStatus::Paused => count += 1,
                ReplayStatus::Completed => break,
                ReplayStatus::Trapped(e) => panic!("unexpected trap {e}"),
            }
        }
        assert_eq!(count, pinball.logged_instructions());
    }

    #[test]
    fn streaming_replay_partitions_events_by_thread() {
        let (program, pinball) = record();
        // Serial reference: every event in retire order.
        let mut serial: Vec<minivm::InsEvent> = Vec::new();
        let mut rep = Replayer::new(Arc::clone(&program), &pinball);
        let mut tool = |ev: &minivm::InsEvent| {
            serial.push(*ev);
            ToolControl::Continue
        };
        assert_eq!(rep.run(&mut tool), ReplayStatus::Completed);

        // Streamed: two sinks, drained concurrently.
        let (tx0, rx0) = crossbeam::channel::bounded(8);
        let (tx1, rx1) = crossbeam::channel::bounded(8);
        let mut rep = Replayer::new(Arc::clone(&program), &pinball);
        let (status, got0, got1) = std::thread::scope(|s| {
            let h0 = s.spawn(move || rx0.iter().collect::<Vec<minivm::InsEvent>>());
            let h1 = s.spawn(move || rx1.iter().collect::<Vec<minivm::InsEvent>>());
            let status = rep.run_streaming(&[tx0, tx1]);
            (status, h0.join().unwrap(), h1.join().unwrap())
        });
        assert_eq!(status, ReplayStatus::Completed);
        assert_eq!(got0.len() + got1.len(), serial.len());
        // Sink 0 holds even tids, sink 1 odd tids, each in retire order.
        assert!(got0.iter().all(|ev| ev.tid % 2 == 0));
        assert!(got1.iter().all(|ev| ev.tid % 2 == 1));
        assert!(got0.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(got1.windows(2).all(|w| w[0].seq < w[1].seq));
        // Re-merging by seq reproduces the serial event stream exactly.
        let mut merged = got0;
        merged.extend(got1);
        merged.sort_unstable_by_key(|ev| ev.seq);
        assert_eq!(merged, serial);
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        let (program, pinball) = record();
        // Reference: full replay.
        let mut reference = Replayer::new(Arc::clone(&program), &pinball);
        reference.run(&mut NullTool);

        // Checkpoint mid-replay, finish, rewind, finish again.
        let mut rep = Replayer::new(Arc::clone(&program), &pinball);
        let total = pinball.logged_instructions();
        rep.run_steps(total / 2, &mut NullTool);
        let cp = rep.checkpoint();
        assert_eq!(cp.instr, total / 2);
        assert_eq!(rep.run(&mut NullTool), ReplayStatus::Completed);
        let final_snapshot = rep.exec().snapshot();
        assert_eq!(final_snapshot, reference.exec().snapshot());

        rep.restore_checkpoint(&cp);
        assert_eq!(rep.replayed_instructions(), total / 2);
        assert_eq!(rep.run(&mut NullTool), ReplayStatus::Completed);
        assert_eq!(
            rep.exec().snapshot(),
            final_snapshot,
            "replay after rewind is bit-identical"
        );
        assert_eq!(rep.exec().seq(), reference.exec().seq());
    }

    #[test]
    fn run_to_event_lands_on_exact_boundaries() {
        let (program, pinball) = record();
        for target in [1, pinball.events.len() / 2, pinball.events.len()] {
            let mut rep = Replayer::new(Arc::clone(&program), &pinball);
            rep.run_to_event(target);
            let cp = rep.checkpoint();
            assert_eq!(cp.pos, target);
            assert_eq!(cp.done_in_event, 0);
            let expected: u64 = pinball.events[..target]
                .iter()
                .map(|e| match e {
                    ReplayEvent::Run { steps, .. } => *steps,
                    _ => 0,
                })
                .sum();
            assert_eq!(cp.instr, expected);
        }
    }

    #[test]
    fn seek_to_matches_full_replay_everywhere() {
        let (program, pinball) = record();
        let total = pinball.logged_instructions();
        let container =
            PinballContainer::with_checkpoints(pinball.clone(), &program, total.max(8) / 4);
        assert!(!container.checkpoints.is_empty());
        for target in [0, 1, total / 3, total / 2, total - 1, total] {
            // Reference state at `target` via plain bounded replay.
            let mut reference = Replayer::new(Arc::clone(&program), &pinball);
            reference.run_steps(target, &mut NullTool);

            // Forward seek from scratch.
            let mut rep = Replayer::new(Arc::clone(&program), &pinball);
            let out = rep.seek_to(&container, target);
            assert_eq!(rep.replayed_instructions(), target);
            assert_eq!(rep.exec().snapshot(), reference.exec().snapshot());
            assert!(out.replayed <= target);

            // Backward seek from the end exercises checkpoint restore.
            let mut rep = Replayer::new(Arc::clone(&program), &pinball);
            rep.run(&mut NullTool);
            let out = rep.seek_to(&container, target);
            assert_eq!(rep.replayed_instructions(), target);
            assert_eq!(rep.exec().snapshot(), reference.exec().snapshot());
            if let Some(from) = out.restored_from {
                assert!(from <= target);
                assert_eq!(out.replayed, target - from, "only the tail chunk replays");
            }
        }
    }

    #[test]
    fn seek_backwards_without_checkpoints_restarts() {
        let (program, pinball) = record();
        let total = pinball.logged_instructions();
        let container = PinballContainer::new(pinball.clone());
        let mut rep = Replayer::new(Arc::clone(&program), &pinball);
        rep.run(&mut NullTool);
        let out = rep.seek_to(&container, total / 2);
        assert!(out.full_restart);
        assert_eq!(out.replayed, total / 2);
        assert_eq!(rep.replayed_instructions(), total / 2);
    }

    #[test]
    fn skip_event_injects_and_teleports() {
        let program = Arc::new(
            assemble(
                r"
                .data
                x: .word 0
                .text
                .func main
                    movi r1, 11    ; pc 0 (will be 'excluded')
                    nop            ; pc 1
                    print r1       ; pc 2
                    halt
                .endfunc
                ",
            )
            .unwrap(),
        );
        let exec = Executor::new(Arc::clone(&program));
        let snapshot = exec.snapshot();
        let x = program.symbol("x").unwrap();
        let pinball = Pinball {
            meta: crate::pinball::PinballMeta {
                is_slice: true,
                ..Default::default()
            },
            snapshot,
            events: vec![
                ReplayEvent::Inject { mems: vec![(x, 5)] },
                ReplayEvent::Skip {
                    tid: 0,
                    to_pc: 2,
                    regs: vec![(Reg(1), 99)],
                },
                ReplayEvent::Run { tid: 0, steps: 2 },
            ],
            syscalls: vec![],
            exit: RecordedExit::AllHalted,
        };
        let mut rep = Replayer::new(Arc::clone(&program), &pinball);
        assert_eq!(rep.run(&mut NullTool), ReplayStatus::Completed);
        assert_eq!(rep.exec().output(), &[99], "injected register observed");
        assert_eq!(rep.exec().read_mem(x), 5, "injected memory observed");
        assert_eq!(rep.replayed_instructions(), 2, "excluded code skipped");
    }
}
