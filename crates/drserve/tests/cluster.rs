//! Fleet integration: 3 nodes over loopback TCP — digest routing,
//! cache-peer forwarding, redirect-on-stream, and the stats invariants.
//!
//! The acceptance bar: a slice asked of a non-owner node answers via
//! forwarding byte-identical to a local [`DebugSession`], repeats answer
//! from the asking node's own cache, exactly one `DepIndex` build happens
//! fleet-wide, and a digest-aware [`FleetClient`] reaches the owner in
//! one hop (zero forwards recorded anywhere).

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use drdebug::DebugSession;
use drserve::{
    ClientError, FleetClient, ServeConfig, ServeStats, Server, ServerHandle, SliceAt, WireSlice,
};
use minivm::{LiveEnv, Program, RoundRobin};
use pinplay::{record_whole_program, Pinball};
use slicer::{Criterion, SliceOptions};

fn recorded() -> (Arc<Program>, Pinball) {
    let program = workloads::parsec::blackscholes(3);
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(7),
        &mut LiveEnv::new(1),
        2_000_000,
        "cluster-integration",
    )
    .expect("records");
    (program, rec.pinball)
}

/// The slice the fleet should produce for `SliceAt::Failure`, computed
/// locally, in canonical bytes.
fn local_failure_slice(program: &Arc<Program>, pinball: &Pinball) -> Vec<u8> {
    let mut local = DebugSession::new(Arc::clone(program), pinball.clone());
    let id = local.slicer().failure_record().expect("trace non-empty").id;
    let slice = local.slice_criterion(Criterion::Record { id }, SliceOptions::default());
    WireSlice::from_slice(&slice).canonical_bytes()
}

struct Node {
    server: Server,
    handle: ServerHandle,
}

impl Node {
    fn addr(&self) -> String {
        self.handle.addr().to_string()
    }
}

/// Boots an `n`-node fleet on loopback TCP: node 0 bootstraps (it has no
/// one to seed from), the rest seed from node 0, and gossip melds the
/// full mesh. Returns once every node sees every other alive.
fn fleet(n: usize) -> Vec<Node> {
    let base = ServeConfig {
        shards: 2,
        gossip_interval: Duration::from_millis(50),
        peer_fail_after: Duration::from_millis(600),
        ..ServeConfig::default()
    };
    let first = Server::new(ServeConfig {
        cluster: true,
        ..base.clone()
    });
    let handle = first.listen("127.0.0.1:0").expect("bind node 0");
    let seed = handle.addr().to_string();
    let mut nodes = vec![Node {
        server: first,
        handle,
    }];
    for i in 1..n {
        let server = Server::new(ServeConfig {
            peers: vec![seed.clone()],
            ..base.clone()
        });
        let handle = server
            .listen("127.0.0.1:0")
            .unwrap_or_else(|e| panic!("bind node {i}: {e}"));
        nodes.push(Node { server, handle });
    }
    for (i, node) in nodes.iter().enumerate() {
        wait_alive(&node.server, n as u64, &format!("node {i}"));
    }
    nodes
}

fn wait_alive(server: &Server, n: u64, who: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let stats = server.stats();
        assert!(stats.cluster.enabled, "{who}: cluster mode must be on");
        if stats.cluster.nodes_alive >= n {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{who}: fleet failed to converge ({} of {n} alive)",
            stats.cluster.nodes_alive
        );
        thread::sleep(Duration::from_millis(20));
    }
}

/// Every per-node rollup must equal the sum of its shard breakdowns —
/// the `ServeStats.cluster` invariant.
fn assert_cluster_rollup_is_shard_sum(stats: &ServeStats, who: &str) {
    let sum = |f: fn(&drserve::ClusterStats) -> u64| -> u64 {
        stats.shards.iter().map(|s| f(&s.cluster)).sum()
    };
    assert_eq!(
        stats.cluster.forwards,
        sum(|c| c.forwards),
        "{who}: forwards"
    );
    assert_eq!(
        stats.cluster.forward_errors,
        sum(|c| c.forward_errors),
        "{who}: forward_errors"
    );
    assert_eq!(
        stats.cluster.redirects,
        sum(|c| c.redirects),
        "{who}: redirects"
    );
    assert_eq!(
        stats.cluster.peer_cache_hits,
        sum(|c| c.peer_cache_hits),
        "{who}: peer_cache_hits"
    );
    assert_eq!(
        stats.cluster.peer_fetches,
        sum(|c| c.peer_fetches),
        "{who}: peer_fetches"
    );
    assert_eq!(
        stats.cluster.peer_pushes,
        sum(|c| c.peer_pushes),
        "{who}: peer_pushes"
    );
}

#[test]
fn forwarded_slice_matches_local_and_repeats_answer_locally() {
    let (program, pinball) = recorded();
    let expected = local_failure_slice(&program, &pinball);
    let nodes = fleet(3);

    // Route the upload to its owner with the digest-aware client.
    let mut fc = FleetClient::connect(&nodes[0].addr()).expect("fleet connect");
    let up = fc.upload(&program, &pinball).expect("upload");
    let owner_addr = fc.owner_of(up.digest);
    let owner_ix = nodes
        .iter()
        .position(|n| n.addr() == owner_addr)
        .expect("owner is a fleet member");
    let non_owners: Vec<usize> = (0..nodes.len()).filter(|&i| i != owner_ix).collect();

    // Ask a *non-owner* node: the request must forward to the owner and
    // come back byte-identical to the local computation.
    for &ix in &non_owners {
        let mut client = nodes[ix].server.loopback_client();
        let session = client.open(up.digest).expect("open via fetch-through");
        let first = client
            .compute_slice(session, SliceAt::Failure, SliceOptions::default())
            .expect("forwarded slice");
        assert_eq!(
            first.slice.canonical_bytes(),
            expected,
            "node {ix}: forwarded slice differs from local computation"
        );
        assert!(!first.cached, "first ask cannot be a local cache hit");
        // The answer was cached on the asking node: the repeat answers
        // locally (asserted below via `forwards` staying put).
        let forwards_before = nodes[ix].server.stats().cluster.forwards;
        let second = client
            .compute_slice(session, SliceAt::Failure, SliceOptions::default())
            .expect("repeat slice");
        assert!(
            second.cached,
            "repeat must answer from the local peer cache"
        );
        assert_eq!(second.slice.canonical_bytes(), expected);
        assert_eq!(
            nodes[ix].server.stats().cluster.forwards,
            forwards_before,
            "node {ix}: repeat ask must not forward again"
        );
        client.close(session).expect("close");
    }

    // Relog forwards the same way and repeats hit the local relog cache.
    let relog_node = non_owners[0];
    let mut client = nodes[relog_node].server.loopback_client();
    let session = client.open(up.digest).expect("open");
    let r1 = client
        .relog(session, SliceAt::Failure, SliceOptions::default())
        .expect("forwarded relog");
    assert!(!r1.cached);
    let r2 = client
        .relog(session, SliceAt::Failure, SliceOptions::default())
        .expect("repeat relog");
    assert!(r2.cached, "repeat relog must answer locally");
    assert_eq!(r1.digest, r2.digest, "relog digest must be stable");
    // The slice pinball is fetchable from any node via fetch-through.
    let bytes = client.fetch(r1.digest).expect("fetch slice pinball");
    assert!(!bytes.is_empty());
    client.close(session).expect("close");

    // Exactly one DepIndex build fleet-wide: both non-owners asked, only
    // the owner built.
    let index_misses: u64 = nodes
        .iter()
        .map(|n| n.server.stats().index_cache.misses)
        .sum();
    assert_eq!(index_misses, 1, "exactly one DepIndex build fleet-wide");

    // Forwarding really happened, and the counters roll up per node.
    let mut forwards = 0;
    let mut peer_hits = 0;
    for (i, node) in nodes.iter().enumerate() {
        let stats = node.server.stats();
        assert!(stats.cluster.gossip_rounds > 0, "node {i}: gossip ran");
        assert_cluster_rollup_is_shard_sum(&stats, &format!("node {i}"));
        forwards += stats.cluster.forwards;
        peer_hits += stats.cluster.peer_cache_hits;
    }
    assert!(forwards >= 3, "both non-owners forwarded slice + relog");
    assert!(peer_hits >= 3, "repeat asks hit peer caches");
}

#[test]
fn fleet_client_reaches_owners_in_one_hop() {
    let (program, pinball) = recorded();
    let expected = local_failure_slice(&program, &pinball);
    let nodes = fleet(3);

    let mut fc = FleetClient::connect(&nodes[0].addr()).expect("fleet connect");
    assert_eq!(fc.nodes().iter().filter(|n| n.alive).count(), 3);
    let up = fc.upload(&program, &pinball).expect("upload");
    assert!(
        fc.probe(up.digest).expect("probe"),
        "owner stores the upload"
    );
    let session = fc.open(up.digest).expect("open at owner");
    let reply = fc
        .compute_slice(&session, SliceAt::Failure, SliceOptions::default())
        .expect("slice at owner");
    assert_eq!(reply.slice.canonical_bytes(), expected);
    let relog = fc
        .relog(&session, SliceAt::Failure, SliceOptions::default())
        .expect("relog at owner");
    let fetched = fc.fetch(relog.digest).expect("fetch slice pinball");
    assert!(!fetched.is_empty());
    fc.close(&session).expect("close");

    // The digest-aware path is zero-hop: no node forwarded anything and
    // nothing was redirected.
    for (i, node) in nodes.iter().enumerate() {
        let stats = node.server.stats();
        assert_eq!(
            stats.cluster.forwards, 0,
            "node {i}: hot path must not forward"
        );
        assert_eq!(
            stats.cluster.redirects, 0,
            "node {i}: hot path must not redirect"
        );
    }
}

#[test]
fn streams_redirect_to_the_owner_and_fleet_client_follows() {
    let (program, pinball) = recorded();
    let nodes = fleet(3);

    let container = pinplay::PinballContainer::new(pinball.clone());
    let digest = container.digest();
    let mut fc = FleetClient::connect(&nodes[0].addr()).expect("fleet connect");
    let owner_addr = fc.owner_of(digest);
    let non_owner = nodes
        .iter()
        .position(|n| n.addr() != owner_addr)
        .expect("some node is not the owner");

    // A plain client streaming at a non-owner is told where to go.
    let mut plain = nodes[non_owner].server.loopback_client();
    match plain.upload_streamed(&program, &container, 4) {
        Err(ClientError::Redirected { addr }) => {
            assert_eq!(addr, owner_addr, "redirect names the ring owner")
        }
        other => panic!("expected Redirected, got {other:?}"),
    }
    assert!(
        nodes[non_owner].server.stats().cluster.redirects >= 1,
        "redirect was counted"
    );

    // The fleet client follows the same redirect transparently (it
    // routes straight to the owner, so the result is simply an upload).
    let up = fc
        .upload_streamed(&program, &container, 4)
        .expect("streamed upload routes to owner");
    assert_eq!(up.digest, digest);
    // Streaming the same container again dedupes digest-first: the body
    // never crosses the wire.
    let again = fc
        .upload_streamed(&program, &container, 4)
        .expect("repeat streamed upload");
    assert!(again.deduped, "repeat stream dedupes at the owner");
}
