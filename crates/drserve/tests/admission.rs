//! Admission-control behavior under deliberate overload.
//!
//! The contract these tests pin down: a shard whose queue is full answers
//! *immediately* with a typed [`ServeError::Busy`] whose `retry_after_ms`
//! hint reflects the backlog — it never blocks the dispatcher, never
//! drops a frame on the floor, and never panics. Every pipelined request
//! gets exactly one reply, in order. A [`Client`] with a
//! [`RetryPolicy`] rides the Busy answers out with bounded backoff and is
//! admitted once capacity frees; an impatient policy surfaces the typed
//! error after its budget.
//!
//! Overload is manufactured, not simulated: the server runs one shard
//! with a queue bound of 2, and the occupying work is real cold slice
//! computations (tens of milliseconds each — every request carries a
//! distinct options fingerprint, so none of them hit the slice or index
//! caches) pipelined on a raw connection. While those fill the queue, a
//! flood of `Stats` frames must shed deterministically.

use std::io::Write;
use std::sync::Arc;

use drserve::proto::{self, Request, Response, ServeError, REQUEST_KIND, RESPONSE_KIND};
use drserve::{ClientError, RetryPolicy, ServeConfig, Server, SliceAt};
use minivm::{LiveEnv, Program, RoundRobin};
use pinplay::{record_whole_program, Pinball};
use slicer::{LocKey, SliceOptions};

/// Base Busy hint the config below advertises; a full queue scales it 5x.
const BASE_MS: u64 = 40;
const FULL_QUEUE_HINT_MS: u64 = 5 * BASE_MS;

/// One shard, one dispatcher, a two-deep queue, no batching: the
/// smallest server that can be overloaded deterministically.
fn tiny_queue_config() -> ServeConfig {
    ServeConfig {
        shards: 1,
        dispatchers: 1,
        queue_capacity: 2,
        batch_max: 1,
        retry_after_ms: BASE_MS,
        ..ServeConfig::default()
    }
}

fn recorded() -> (Arc<Program>, Pinball) {
    let program = workloads::parsec::blackscholes(800);
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(7),
        &mut LiveEnv::new(1),
        5_000_000,
        "admission",
    )
    .expect("records");
    (program, rec.pinball)
}

/// A burst of `n` cold `ComputeSlice` frames for `session`, each with a
/// distinct options fingerprint so none can be answered from a cache.
/// The fingerprint is varied by pruning a distinct memory word the
/// workload never touches — the slice result is unchanged, but the
/// slice *and* index caches both miss, so every request pays a full
/// dependence-index build and reliably occupies the worker.
fn cold_slice_burst(session: u64, n: usize) -> Vec<u8> {
    let mut burst = Vec::new();
    for i in 0..n as u64 {
        let mut options = SliceOptions::default();
        options.prune_keys.insert(LocKey::Mem(0x00dc_0de0 + i));
        proto::write_message(
            &mut burst,
            REQUEST_KIND,
            &Request::ComputeSlice {
                session,
                at: SliceAt::Failure,
                options,
            },
        )
        .expect("encode slice request");
    }
    burst
}

#[test]
fn overload_sheds_typed_busy_and_answers_every_frame() {
    let (program, pinball) = recorded();
    let server = Server::new(tiny_queue_config());
    let mut setup = server.loopback_client();
    let up = setup.upload(&program, &pinball).expect("upload");
    let session = setup.open(up.digest).expect("open");

    // Four slow slices (capacity admits two, two shed) followed by a
    // flood of Stats frames that all arrive while the queue is full.
    const STATS_FLOOD: usize = 64;
    let mut burst = cold_slice_burst(session, 4);
    for _ in 0..STATS_FLOOD {
        proto::write_message(&mut burst, REQUEST_KIND, &Request::Stats).expect("encode stats");
    }
    let mut conn = server.loopback_connect();
    conn.write_all(&burst).expect("burst write");

    // Every frame gets exactly one reply, in request order — the read
    // loop completing is itself the no-hang/no-drop assertion.
    let mut slices = 0usize;
    let mut stats_ok = 0usize;
    let mut busy_hints: Vec<u64> = Vec::new();
    for _ in 0..4 + STATS_FLOOD {
        let reply: Response = proto::read_message(&mut conn, RESPONSE_KIND).expect("ordered reply");
        match reply {
            Response::Slice { cached, .. } => {
                assert!(!cached, "distinct fingerprints cannot hit the cache");
                slices += 1;
            }
            Response::Stats(_) => stats_ok += 1,
            Response::Error(ServeError::Busy { retry_after_ms }) => busy_hints.push(retry_after_ms),
            other => panic!("unexpected reply under overload: {other:?}"),
        }
    }

    assert_eq!(
        slices, 2,
        "the queue admits exactly queue_capacity requests"
    );
    assert_eq!(slices + stats_ok + busy_hints.len(), 4 + STATS_FLOOD);
    assert!(
        busy_hints.len() >= STATS_FLOOD,
        "the stats flood must shed while the slices hold the queue full \
         (got {} busy of {} frames)",
        busy_hints.len(),
        4 + STATS_FLOOD,
    );
    for hint in &busy_hints {
        assert_eq!(
            *hint, FULL_QUEUE_HINT_MS,
            "a shed at full depth carries the maximum (5x base) hint"
        );
    }

    let stats = server.stats();
    assert_eq!(stats.shed, busy_hints.len() as u64, "every shed is counted");
    assert_eq!(stats.shards.len(), 1);
    assert_eq!(
        stats.shards[0].depth, 0,
        "depth returns to zero once the backlog drains"
    );
    assert_eq!(
        stats.shards[0].peak_depth, 2,
        "depth never exceeded capacity"
    );
}

#[test]
fn client_retry_rides_out_overload_and_exhausts_when_bounded() {
    let (program, pinball) = recorded();
    let server = Server::new(tiny_queue_config());
    let mut setup = server.loopback_client();
    let up = setup.upload(&program, &pinball).expect("upload");
    let session = setup.open(up.digest).expect("open");

    // Fill the queue: two slices admitted and computing, two shed.
    let mut conn = server.loopback_connect();
    conn.write_all(&cold_slice_burst(session, 4))
        .expect("burst write");

    // An impatient client exhausts its bounded budget while the queue is
    // still full and surfaces the typed error, hint intact.
    let mut impatient = server.loopback_client().with_retry(RetryPolicy::new(2, 1));
    let err = impatient
        .stats()
        .expect_err("bounded retry against a full queue must surface Busy");
    match err {
        ClientError::Server(ServeError::Busy { retry_after_ms }) => {
            assert_eq!(retry_after_ms, FULL_QUEUE_HINT_MS);
        }
        other => panic!("expected a typed Busy, got {other}"),
    }
    assert_eq!(
        impatient.wire_stats().busy_retries,
        2,
        "the client burns exactly its configured retry budget"
    );

    // A patient client sees Busy first, keeps retrying with capped
    // backoff, and is admitted as soon as a slice completes.
    let mut patient = server
        .loopback_client()
        .with_retry(RetryPolicy::new(30_000, 2));
    let stats = patient
        .stats()
        .expect("patient retry is eventually admitted");
    assert!(
        patient.wire_stats().busy_retries >= 1,
        "the patient client must have been told Busy at least once"
    );
    assert!(
        stats.shed >= 3,
        "sheds from the burst and both clients add up"
    );

    // The raw burst's replies arrive complete and in order: the two
    // admitted slices computed, the two over-capacity ones typed Busy.
    let mut replies = Vec::new();
    for _ in 0..4 {
        let reply: Response = proto::read_message(&mut conn, RESPONSE_KIND).expect("burst reply");
        replies.push(reply);
    }
    assert!(matches!(replies[0], Response::Slice { cached: false, .. }));
    assert!(matches!(replies[1], Response::Slice { cached: false, .. }));
    for reply in &replies[2..] {
        assert!(
            matches!(
                reply,
                Response::Error(ServeError::Busy {
                    retry_after_ms: FULL_QUEUE_HINT_MS
                })
            ),
            "over-capacity slices shed with the full-queue hint: {reply:?}"
        );
    }
}
