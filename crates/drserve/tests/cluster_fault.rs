//! Fault injection: kill a fleet node mid-traffic.
//!
//! The bar: in-flight forwards to the dead owner surface as the typed,
//! retryable [`ServeError::Peer`] — never a panic or a hang — requests
//! reroute to the surviving owner once gossip converges, and a node that
//! joins afterwards re-warms its store from its peers.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use drdebug::DebugSession;
use drserve::{
    ClientError, FleetClient, ServeConfig, ServeError, Server, ServerHandle, SliceAt, WireSlice,
};
use minivm::{LiveEnv, Program, RoundRobin};
use pinplay::{record_whole_program, Pinball};
use slicer::{Criterion, SliceOptions};

fn recorded() -> (Arc<Program>, Pinball) {
    let program = workloads::parsec::blackscholes(2);
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(7),
        &mut LiveEnv::new(1),
        2_000_000,
        "cluster-fault",
    )
    .expect("records");
    (program, rec.pinball)
}

fn local_failure_slice(program: &Arc<Program>, pinball: &Pinball) -> Vec<u8> {
    let mut local = DebugSession::new(Arc::clone(program), pinball.clone());
    let id = local.slicer().failure_record().expect("trace non-empty").id;
    let slice = local.slice_criterion(Criterion::Record { id }, SliceOptions::default());
    WireSlice::from_slice(&slice).canonical_bytes()
}

fn config() -> ServeConfig {
    ServeConfig {
        shards: 2,
        gossip_interval: Duration::from_millis(50),
        peer_fail_after: Duration::from_millis(400),
        peer_connect_timeout: Duration::from_millis(250),
        peer_op_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

fn wait_alive(server: &Server, n: u64, who: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while server.stats().cluster.nodes_alive < n {
        assert!(
            Instant::now() < deadline,
            "{who}: fleet failed to converge to {n} alive"
        );
        thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn killing_the_owner_reroutes_and_a_joiner_rewarms() {
    let (program, pinball) = recorded();
    let expected = local_failure_slice(&program, &pinball);

    // Boot a 3-node fleet, indexable so any node can be killed.
    let mut nodes: Vec<Option<(Server, ServerHandle)>> = Vec::new();
    let bootstrap = Server::new(ServeConfig {
        cluster: true,
        ..config()
    });
    let h0 = bootstrap.listen("127.0.0.1:0").expect("bind node 0");
    let seed = h0.addr().to_string();
    nodes.push(Some((bootstrap, h0)));
    for i in 1..3 {
        let server = Server::new(ServeConfig {
            peers: vec![seed.clone()],
            ..config()
        });
        let handle = server
            .listen("127.0.0.1:0")
            .unwrap_or_else(|e| panic!("bind node {i}: {e}"));
        nodes.push(Some((server, handle)));
    }
    let addr_of = |node: &Option<(Server, ServerHandle)>| -> String {
        node.as_ref().expect("node alive").1.addr().to_string()
    };
    for (i, node) in nodes.iter().enumerate() {
        wait_alive(&node.as_ref().unwrap().0, 3, &format!("node {i}"));
    }

    // Upload at the owner, then make a non-owner fetch a copy (the
    // fetch-through on open), so the pinball survives the owner's death.
    let mut fc = FleetClient::connect(&seed).expect("fleet connect");
    let up = fc.upload(&program, &pinball).expect("upload");
    let owner_addr = fc.owner_of(up.digest);
    let owner_ix = (0..3)
        .find(|&i| addr_of(&nodes[i]) == owner_addr)
        .expect("owner in fleet");
    let survivor_ix = (0..3).find(|&i| i != owner_ix).expect("survivor");
    let other_ix = (0..3)
        .find(|&i| i != owner_ix && i != survivor_ix)
        .expect("third node");
    {
        let mut warm = nodes[survivor_ix].as_ref().unwrap().0.loopback_client();
        let s = warm.open(up.digest).expect("fetch-through open");
        warm.close(s).expect("close");
    }

    // Kill the owner: stop its accept loop, then join its workers.
    // Pooled peer connections into it die underneath the survivors.
    drop(nodes[owner_ix].take());

    // Ask the survivor for a slice in a bounded retry loop. Before gossip
    // converges the ring still names the dead node owner, so forwards
    // fail — every such failure MUST be the typed, retryable Peer error
    // (never a panic, a hang, or a protocol violation). After
    // convergence the ring re-routes and the ask succeeds.
    let mut client = nodes[survivor_ix].as_ref().unwrap().0.loopback_client();
    let session = client.open(up.digest).expect("open on survivor");
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut peer_errors = 0u32;
    let reply = loop {
        match client.compute_slice(session, SliceAt::Failure, SliceOptions::default()) {
            Ok(reply) => break reply,
            Err(ClientError::Server(ServeError::Peer { addr, .. })) => {
                assert_eq!(addr, owner_addr, "the failing peer is the dead owner");
                peer_errors += 1;
                assert!(
                    Instant::now() < deadline,
                    "fleet failed to reroute after {peer_errors} typed peer errors"
                );
                thread::sleep(Duration::from_millis(50));
            }
            Err(other) => panic!("only typed retryable errors are acceptable: {other}"),
        }
    };
    assert_eq!(
        reply.slice.canonical_bytes(),
        expected,
        "rerouted slice must still match the local computation"
    );
    for &i in &[survivor_ix, other_ix] {
        let stats = nodes[i].as_ref().unwrap().0.stats();
        assert_eq!(stats.cluster.nodes_alive, 2, "node {i} saw the death");
        assert_eq!(stats.cluster.nodes_dead, 1, "node {i} remembers the corpse");
    }

    // A new node joins the shrunken fleet and re-warms from its peers:
    // opening the digest pulls the container through the cluster even
    // though the original owner is gone.
    let joiner = Server::new(ServeConfig {
        peers: vec![addr_of(&nodes[survivor_ix])],
        ..config()
    });
    let jh = joiner.listen("127.0.0.1:0").expect("bind joiner");
    wait_alive(&joiner, 3, "joiner");
    let mut jc = joiner.loopback_client();
    let js = jc.open(up.digest).expect("joiner re-warms from peers");
    let jr = jc
        .compute_slice(js, SliceAt::Failure, SliceOptions::default())
        .expect("slice after re-warm");
    assert_eq!(jr.slice.canonical_bytes(), expected);
    jc.close(js).expect("close");
    let jstats = joiner.stats();
    assert!(
        jstats.cluster.peer_fetches >= 1,
        "the joiner pulled the pinball from a peer"
    );
    drop(jh);
}
