//! Property tests pinning the [`HashRing`] guarantees the cluster relies
//! on:
//!
//! 1. **Balance** — with enough virtual nodes, no node owns more than
//!    `1/N + ε` of the keyspace (measured exactly via arc lengths, not
//!    sampling).
//! 2. **Minimal remap** — adding one node only moves keys *to* it,
//!    removing one node only moves keys it owned, and either way the
//!    displaced fraction is ~1/N of the keyspace, not a reshuffle.
//! 3. **Agreement** — nodes building rings from differently ordered (or
//!    duplicated) gossip views name the same owner for every digest.

use drserve::HashRing;
use pinplay::PinballDigest;
use proptest::prelude::*;

/// The virtual-node count [`drserve::ServeConfig`] defaults to; the
/// balance bound below is pinned at this setting.
const VNODES: usize = 64;

/// The tolerated imbalance multiplier: no node may own more than
/// `BALANCE_CAP / N` of the keyspace. Loose enough to hold for arbitrary
/// addresses at 64 vnodes, tight enough that a broken point placement
/// (which skews shares by integer factors) trips it.
const BALANCE_CAP: f64 = 1.75;

/// Distinct node addresses, 2..=12 of them. The index keeps every
/// address unique regardless of the random host byte.
fn addrs_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(any::<u8>(), 2..13).prop_map(|hosts| {
        hosts
            .iter()
            .enumerate()
            .map(|(i, h)| format!("10.0.{h}.{}:{}", i % 251, 7000 + i))
            .collect()
    })
}

fn share_of(ring: &HashRing, addr: &str) -> f64 {
    ring.shares()
        .into_iter()
        .find(|(a, _)| a == addr)
        .map(|(_, s)| s)
        .unwrap_or_else(|| panic!("{addr} missing from ring"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No node's exact keyspace share exceeds `BALANCE_CAP / N`.
    #[test]
    fn keyspace_stays_balanced(addrs in addrs_strategy()) {
        let n = addrs.len() as f64;
        let ring = HashRing::new(addrs.clone(), VNODES);
        let shares = ring.shares();
        prop_assert_eq!(shares.len(), addrs.len());
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "shares sum to 1, got {}", total);
        let cap = BALANCE_CAP / n;
        for (addr, share) in &shares {
            prop_assert!(
                *share <= cap,
                "node {} owns {:.4} of the keyspace, cap {:.4}",
                addr, share, cap
            );
        }
    }

    /// Adding one node moves keys only *to* the newcomer; removing one
    /// moves only the keys the victim owned; the displaced keyspace is
    /// the changed node's own ~1/N share in both directions.
    #[test]
    fn membership_change_remaps_about_one_nth(
        addrs in addrs_strategy(),
        extra_port in 20_000u16..40_000,
        victim_pick in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 512..513),
    ) {
        let before = HashRing::new(addrs.clone(), VNODES);

        // Grow by one. The newcomer's port range cannot collide with the
        // generated fleet's 7000+i ports, so it is always a new address.
        let newcomer = format!("10.9.9.9:{extra_port}");
        let grown = HashRing::new(
            addrs.iter().cloned().chain([newcomer.clone()]).collect(),
            VNODES,
        );
        let mut moved = 0usize;
        for &k in &keys {
            let a = before.owner(PinballDigest(k)).unwrap();
            let b = grown.owner(PinballDigest(k)).unwrap();
            if a != b {
                prop_assert_eq!(
                    b, newcomer.as_str(),
                    "an add may move keys only TO the new node"
                );
                moved += 1;
            }
        }
        // Exactly the newcomer's arc share moved; check the exact share
        // and sanity-check the sampled movement against it.
        let fair_grown = 1.0 / (addrs.len() + 1) as f64;
        let new_share = share_of(&grown, &newcomer);
        prop_assert!(
            new_share <= BALANCE_CAP * fair_grown,
            "add displaced {:.4} of the keyspace, fair {:.4}",
            new_share, fair_grown
        );
        prop_assert!(
            (moved as f64 / keys.len() as f64) <= 2.5 * fair_grown,
            "sampled add-remap moved {} of {} keys, fair share {:.4}",
            moved, keys.len(), fair_grown
        );

        // Shrink by one: only the victim's keys may change owner.
        let victim = addrs[(victim_pick % addrs.len() as u64) as usize].clone();
        let shrunk = HashRing::new(
            addrs.iter().filter(|a| **a != victim).cloned().collect(),
            VNODES,
        );
        let victim_share = share_of(&before, &victim);
        prop_assert!(victim_share <= BALANCE_CAP / addrs.len() as f64);
        for &k in &keys {
            let a = before.owner(PinballDigest(k)).unwrap();
            let b = shrunk.owner(PinballDigest(k)).unwrap();
            if a != b {
                prop_assert_eq!(
                    a, victim.as_str(),
                    "a removal may move only the removed node's keys"
                );
            }
        }
    }

    /// Ownership is deterministic and insensitive to view order and
    /// duplicates — gossip never guarantees the order peers arrive in.
    #[test]
    fn ring_agreement_is_order_insensitive(
        addrs in addrs_strategy(),
        rotation in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 64..65),
    ) {
        let a = HashRing::new(addrs.clone(), VNODES);
        let mut shuffled = addrs.clone();
        shuffled.rotate_left((rotation % addrs.len() as u64) as usize);
        shuffled.push(shuffled[0].clone()); // duplicates must not matter
        let b = HashRing::new(shuffled, VNODES);
        prop_assert_eq!(a.len(), b.len(), "duplicate address changed the ring");
        for &k in &keys {
            prop_assert_eq!(a.owner(PinballDigest(k)), b.owner(PinballDigest(k)));
        }
    }
}
