//! Thread-safety audit for the types the server shares across threads.
//!
//! The pool hands `Arc<Mutex<DebugSession>>` to per-connection threads,
//! the cache shares `Arc<WireSlice>`, and `Server` itself is cloned into
//! every serving thread — all of which requires `Send` (and for the
//! shared readers, `Sync`) on the underlying types. These are static
//! assertions: a regression (say, an `Rc` slipping into a session field)
//! fails compilation here, not intermittently at runtime. The smoke
//! tests then actually exercise the two patterns the server relies on.

use std::sync::Arc;
use std::thread;

use drdebug::DebugSession;
use minivm::{assemble, LiveEnv, Program, RoundRobin};
use pinplay::{record_whole_program, Pinball, PinballContainer};
use slicer::{Criterion, SliceOptions, SliceSession, SlicerOptions};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn replay_and_slice_types_are_send_and_sync() {
    // Moved into per-connection threads (pool slots, serve threads).
    assert_send::<DebugSession>();
    assert_send::<SliceSession>();
    assert_send::<PinballContainer>();
    assert_send::<Pinball>();

    // Shared behind Arc by the pool, cache, and store.
    assert_sync::<DebugSession>();
    assert_sync::<SliceSession>();
    assert_sync::<PinballContainer>();

    // The server handle and both client transports cross threads.
    assert_send::<drserve::Server>();
    assert_sync::<drserve::Server>();
    assert_send::<drserve::Client<drserve::LoopbackStream>>();
    assert_send::<drserve::Client<std::net::TcpStream>>();
    assert_send::<drserve::WireSlice>();
    assert_sync::<drserve::WireSlice>();
}

fn recorded() -> (Arc<Program>, Pinball) {
    let program = Arc::new(
        assemble(
            r"
            .data
            acc: .word 0
            .text
            .func main
                movi r1, 1
                spawn r2, worker, r1
                movi r1, 2
                spawn r3, worker, r1
                join r2
                join r3
                la r4, acc
                load r5, r4, 0
                halt
            .endfunc
            .func worker
                movi r3, 12
            loop:
                la r1, acc
                xadd r2, r1, r0
                subi r3, r3, 1
                bgti r3, 0, loop
                halt
            .endfunc
            ",
        )
        .expect("assembles"),
    );
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(5),
        &mut LiveEnv::new(3),
        1_000_000,
        "send-sync",
    )
    .expect("records");
    (program, rec.pinball)
}

#[test]
fn debug_session_migrates_across_threads() {
    let (program, pinball) = recorded();
    let total = pinball.logged_instructions();

    // Thread 1 builds the session and replays halfway.
    let mut session = DebugSession::new(Arc::clone(&program), pinball);
    let session = thread::spawn(move || {
        session.seek_to(total / 2);
        session
    })
    .join()
    .expect("no panic on thread 1");

    // Thread 2 picks the same session up where thread 1 left it.
    let mut session = session;
    let handle = thread::spawn(move || {
        assert!(session.position() >= total / 2);
        session.seek_to(total);
        let slice = session.slice_failure().expect("failure slice");
        slice.records.len()
    });
    assert!(handle.join().expect("no panic on thread 2") > 0);
}

#[test]
fn slice_session_is_shared_by_concurrent_readers() {
    let (program, pinball) = recorded();
    let session = Arc::new(SliceSession::collect(
        Arc::clone(&program),
        &pinball,
        SlicerOptions::default(),
    ));
    let failure = session.failure_record().expect("trace non-empty").id;

    // Two threads slice the same collected trace concurrently — the
    // pattern behind concurrent cache misses on one pooled session.
    let sizes: Vec<usize> = thread::scope(|scope| {
        (0..2)
            .map(|_| {
                let session = Arc::clone(&session);
                scope.spawn(move || {
                    let slice = session
                        .slice_with(Criterion::Record { id: failure }, SliceOptions::default());
                    slice.records.len()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    assert_eq!(sizes[0], sizes[1], "concurrent slices agree");
    assert!(sizes[0] > 0);
}
