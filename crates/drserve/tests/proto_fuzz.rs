//! Wire-protocol corruption fuzzing, mirroring the pinball container's
//! `corruption_fuzz` suite.
//!
//! Every single-bit flip and every truncation of a valid request frame
//! must surface as a typed [`RecvError`] from the frame reader — and,
//! pushed through a real [`Server`], as a [`ServeError::Malformed`]
//! response followed by a clean disconnect. Never a panic, never a
//! hang, never an allocation driven by attacker-controlled lengths.

use std::io::{Cursor, Read, Write};

use drserve::{
    proto, RecvError, Request, Response, ServeConfig, ServeError, Server, SliceAt, REQUEST_KIND,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use slicer::SliceOptions;

/// A scripted byte stream: the server reads the canned input and its
/// responses accumulate in `output`. Runs `serve_stream` synchronously —
/// no threads, so a panic in the server fails the test directly.
struct ScriptedStream {
    input: Cursor<Vec<u8>>,
    output: Vec<u8>,
}

impl ScriptedStream {
    fn new(input: Vec<u8>) -> ScriptedStream {
        ScriptedStream {
            input: Cursor::new(input),
            output: Vec::new(),
        }
    }
}

impl Read for ScriptedStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.input.read(buf)
    }
}

impl Write for ScriptedStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.output.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn sample_frame() -> Vec<u8> {
    let request = Request::ComputeSlice {
        session: 42,
        at: SliceAt::Here {
            key: Some(slicer::LocKey::Mem(0x1000)),
        },
        options: SliceOptions::default(),
    };
    let mut buf = Vec::new();
    proto::write_message(&mut buf, REQUEST_KIND, &request).expect("encodes");
    buf
}

/// Parses every response the server wrote to a scripted stream.
fn responses(output: &[u8]) -> Vec<Response> {
    let mut cursor = output;
    let mut out = Vec::new();
    loop {
        match proto::read_message::<_, Response>(&mut cursor, drserve::RESPONSE_KIND) {
            Ok(r) => out.push(r),
            Err(RecvError::Disconnected) => return out,
            Err(e) => panic!("server wrote an undecodable response: {e}"),
        }
    }
}

#[test]
fn every_single_bit_flip_is_a_typed_recv_error() {
    let frame = sample_frame();
    assert!(frame.len() > 32, "fuzz target too small to be interesting");
    for offset in 0..frame.len() {
        for bit in 0..8 {
            let mut bad = frame.clone();
            bad[offset] ^= 1 << bit;
            let mut cursor = &bad[..];
            let err = proto::read_message::<_, Request>(&mut cursor, REQUEST_KIND).expect_err(
                &format!("flip at byte {offset} bit {bit} must not decode cleanly"),
            );
            assert!(
                matches!(err, RecvError::Frame { .. }),
                "flip at byte {offset} bit {bit}: expected a frame error, got {err:?}"
            );
        }
    }
}

#[test]
fn every_truncation_is_disconnect_or_typed_frame_error() {
    let frame = sample_frame();
    for len in 0..frame.len() {
        let mut cursor = &frame[..len];
        let err = proto::read_message::<_, Request>(&mut cursor, REQUEST_KIND)
            .expect_err(&format!("truncation to {len} bytes must not decode"));
        if len == 0 {
            assert_eq!(err, RecvError::Disconnected, "EOF at boundary is clean");
        } else {
            assert!(
                matches!(err, RecvError::Frame { .. }),
                "truncation to {len} bytes: expected a frame error, got {err:?}"
            );
        }
    }
}

#[test]
fn server_answers_malformed_then_disconnects_for_every_flip() {
    let frame = sample_frame();
    let server = Server::new(ServeConfig::default());
    for offset in 0..frame.len() {
        for bit in 0..8 {
            let mut bad = frame.clone();
            bad[offset] ^= 1 << bit;
            let mut stream = ScriptedStream::new(bad);
            server.serve_stream(&mut stream);
            let replies = responses(&stream.output);
            assert_eq!(
                replies.len(),
                1,
                "flip at byte {offset} bit {bit}: exactly one response"
            );
            match &replies[0] {
                Response::Error(ServeError::Malformed { .. }) => {}
                // A flip in the *payload variant tags* can decode to a
                // different well-formed request; that is fine — the CRC
                // guards transport damage, not semantics — but the
                // response must still be typed, and here every decodable
                // mutation hits an unknown session.
                Response::Error(_) => {}
                other => panic!("flip at byte {offset} bit {bit}: unexpected {other:?}"),
            }
        }
    }
}

#[test]
fn random_garbage_never_panics_the_server() {
    let server = Server::new(ServeConfig::default());
    let mut rng = StdRng::seed_from_u64(0x5eed_cafe);
    for round in 0..200 {
        let len = rng.gen_range(0..512);
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let mut stream = ScriptedStream::new(garbage);
        server.serve_stream(&mut stream);
        for reply in responses(&stream.output) {
            assert!(
                matches!(reply, Response::Error(_)),
                "round {round}: garbage must only ever produce errors, got {reply:?}"
            );
        }
    }
}

#[test]
fn valid_request_then_garbage_answers_then_closes() {
    let server = Server::new(ServeConfig::default());
    let mut input = Vec::new();
    proto::write_message(&mut input, REQUEST_KIND, &Request::Stats).expect("encodes");
    input.extend_from_slice(b"\xff\xff not a frame \x00\x00");
    let mut stream = ScriptedStream::new(input);
    server.serve_stream(&mut stream);
    let replies = responses(&stream.output);
    assert_eq!(replies.len(), 2, "stats answer, then the malformed error");
    assert!(matches!(replies[0], Response::Stats(_)));
    assert!(matches!(
        replies[1],
        Response::Error(ServeError::Malformed { .. })
    ));
}

#[test]
fn oversized_length_is_rejected_before_allocation() {
    // A frame whose varint declares a multi-terabyte payload must be
    // refused up front; if the reader tried to allocate it first, this
    // test would abort rather than fail.
    let mut bad = vec![REQUEST_KIND];
    pinzip::varint::write_u64(&mut bad, 1 << 42);
    bad.extend_from_slice(&[0u8; 16]);
    let server = Server::new(ServeConfig::default());
    let mut stream = ScriptedStream::new(bad);
    server.serve_stream(&mut stream);
    let replies = responses(&stream.output);
    assert_eq!(replies.len(), 1);
    match &replies[0] {
        Response::Error(ServeError::Malformed { reason }) => {
            assert!(reason.contains("message cap"), "reason: {reason}");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
}
