//! Shard-routing behavior: digest stickiness, shared index builds, and
//! the cross-shard stats rollup.
//!
//! Routing is the load-bearing invariant of the sharded service: every
//! request naming a pinball digest lands on shard `digest % N`, and
//! session ids are allocated so `id % N` recovers the owning shard. That
//! is what lets the per-shard caches stay single-flight without any
//! cross-shard locking — eight clients slicing the same pinball funnel
//! into one shard and share one dependence-index build. These tests pin
//! that down end to end through real connections, and check that the
//! `Stats` rollup is an exact sum of the per-shard breakdown.

use std::sync::Arc;
use std::thread;

use drdebug::DebugSession;
use drserve::{ServeConfig, Server, SliceAt};
use minivm::{LiveEnv, Program, RoundRobin};
use pinplay::{record_whole_program, Pinball};
use slicer::{Criterion, RecordId, SliceOptions};

const SHARDS: usize = 4;

fn sharded_config() -> ServeConfig {
    ServeConfig {
        shards: SHARDS,
        max_sessions: 8,
        ..ServeConfig::default()
    }
}

fn recorded(units: u64, tag: &str) -> (Arc<Program>, Pinball) {
    let program = workloads::parsec::blackscholes(units);
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(7),
        &mut LiveEnv::new(1),
        5_000_000,
        tag,
    )
    .expect("records");
    (program, rec.pinball)
}

/// Eight record ids spread evenly through the trace — eight distinct
/// slice criteria that all share one options fingerprint.
fn spread_criteria(program: &Arc<Program>, pinball: &Pinball) -> Vec<RecordId> {
    let mut local = DebugSession::new(Arc::clone(program), pinball.clone());
    let slicer = local.slicer();
    let records = slicer.trace().records();
    let n = records.len();
    assert!(n >= 8, "trace too short to spread 8 criteria");
    (1..=8).map(|k| records[(n - 1) * k / 8].id).collect()
}

#[test]
fn same_digest_funnels_to_one_shard_and_shares_one_index_build() {
    let (program, pinball) = recorded(60, "sharding-funnel");
    let criteria = spread_criteria(&program, &pinball);
    let server = Server::new(sharded_config());

    const CLIENTS: usize = 8;
    let sessions: Vec<u64> = thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let mut client = server.loopback_client();
                let program = Arc::clone(&program);
                let pinball = &pinball;
                let criteria = &criteria;
                scope.spawn(move || {
                    let up = client.upload(&program, pinball).expect("upload");
                    let session = client.open(up.digest).expect("open");
                    for &id in criteria {
                        let at = SliceAt::Criterion {
                            criterion: Criterion::Record { id },
                        };
                        client
                            .compute_slice(session, at, SliceOptions::default())
                            .expect("slice");
                    }
                    (up.digest, session)
                })
            })
            .collect();
        let results: Vec<(pinplay::PinballDigest, u64)> = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        let digest = results[0].0;
        // Session ids all encode the digest's home shard.
        let home = (digest.0 % SHARDS as u64) as usize;
        for (d, session) in &results {
            assert_eq!(*d, digest, "content addressing is deterministic");
            assert_eq!(
                (*session % SHARDS as u64) as usize,
                home,
                "every session for one digest lives on its home shard"
            );
        }
        results.into_iter().map(|(_, s)| s).collect()
    });

    let stats = server.stats();
    assert_eq!(stats.shards.len(), SHARDS);
    assert_eq!(stats.pinballs, 1, "eight uploads dedupe to one pinball");

    // All eight sessions opened on exactly one shard; the rest are idle.
    let opened: Vec<u64> = stats
        .shards
        .iter()
        .map(|s| s.sessions.opened_total)
        .collect();
    assert_eq!(opened.iter().sum::<u64>(), CLIENTS as u64);
    assert_eq!(
        opened.iter().filter(|&&n| n > 0).count(),
        1,
        "sessions for one digest must not spread across shards: {opened:?}"
    );

    // One dependence index serves all 8 clients x 8 criteria: exactly one
    // build (cache miss) happened anywhere in the fleet.
    let index_builds: u64 = stats.shards.iter().map(|s| s.index_cache.misses).sum();
    let index_entries: u64 = stats.shards.iter().map(|s| s.index_cache.entries).sum();
    assert_eq!(index_builds, 1, "one shard builds the index exactly once");
    assert_eq!(index_entries, 1);

    // The slice cache computes each criterion once and serves the rest:
    // requests are serialized by the owning shard's single worker, so the
    // counts are exact, not approximate.
    assert_eq!(stats.cache.misses, criteria.len() as u64);
    assert_eq!(
        stats.cache.hits,
        (CLIENTS * criteria.len()) as u64 - criteria.len() as u64
    );

    // Session ops route by id: a different connection can address a
    // session it did not open.
    let mut outsider = server.loopback_client();
    for session in sessions {
        outsider
            .close(session)
            .expect("close from another connection");
    }
}

#[test]
fn distinct_digests_route_to_their_own_shards() {
    let server = Server::new(sharded_config());
    let mut client = server.loopback_client();
    for units in 3..11 {
        let (program, pinball) = recorded(units, "sharding-spread");
        let up = client.upload(&program, &pinball).expect("upload");
        let session = client.open(up.digest).expect("open");
        assert_eq!(
            session % SHARDS as u64,
            up.digest.0 % SHARDS as u64,
            "the session id encodes the digest's home shard"
        );
        client.close(session).expect("close");
    }
    let stats = server.stats();
    assert_eq!(stats.pinballs, 8);
}

#[test]
fn stats_rollup_is_an_exact_sum_of_the_shard_breakdown() {
    let (program, pinball) = recorded(60, "sharding-rollup");
    let server = Server::new(sharded_config());

    // Mixed traffic from four concurrent clients: uploads (round-robin),
    // session ops (digest-routed), slices (cached and not), stats.
    thread::scope(|scope| {
        for _ in 0..4 {
            let mut client = server.loopback_client();
            let program = Arc::clone(&program);
            let pinball = &pinball;
            scope.spawn(move || {
                let up = client.upload(&program, pinball).expect("upload");
                let session = client.open(up.digest).expect("open");
                client
                    .compute_slice(session, SliceAt::Failure, SliceOptions::default())
                    .expect("slice");
                client.stats().expect("stats");
                client.close(session).expect("close");
            });
        }
    });

    let s = server.stats();
    assert_eq!(s.shards.len(), SHARDS);
    assert_eq!(
        s.requests,
        s.shards.iter().map(|x| x.requests).sum::<u64>(),
        "request rollup must equal the shard sum"
    );
    assert_eq!(s.errors, s.shards.iter().map(|x| x.errors).sum::<u64>());
    assert_eq!(s.errors, 0, "no traffic in this test errors");
    assert_eq!(s.shed, s.shards.iter().map(|x| x.shed).sum::<u64>());
    assert_eq!(s.shed, 0, "default queue depth admits this traffic");
    assert_eq!(
        s.sessions.opened_total,
        s.shards
            .iter()
            .map(|x| x.sessions.opened_total)
            .sum::<u64>()
    );
    assert_eq!(
        s.cache.hits + s.cache.misses,
        s.shards
            .iter()
            .map(|x| x.cache.hits + x.cache.misses)
            .sum::<u64>()
    );
    // Per-op counts rolled up across shards cover every request exactly
    // once: the total of the per-op table equals the request total.
    let per_op_total: u64 = s.per_op.iter().map(|(_, op)| op.count).sum();
    assert_eq!(per_op_total, s.requests);
}
