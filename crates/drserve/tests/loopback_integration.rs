//! End-to-end protocol tests over the in-process loopback transport.
//!
//! The acceptance bar: eight concurrent clients, each opening a session,
//! seeking, and computing a slice, must all get results byte-identical to
//! a direct local [`DebugSession`] computation — and the server's pinball
//! store, session pool, and slice cache must show the expected sharing.

use std::sync::Arc;
use std::thread;

use drdebug::DebugSession;
use drserve::{ClientError, ServeConfig, ServeError, Server, SliceAt, WireSlice, WireStop};
use minivm::{LiveEnv, Program, RoundRobin};
use pinplay::{record_whole_program, Pinball, PinballContainer, PinballDigest};
use slicer::{Criterion, RecordId, SliceOptions};

fn recorded() -> (Arc<Program>, Pinball) {
    let program = workloads::parsec::blackscholes(3);
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(7),
        &mut LiveEnv::new(1),
        2_000_000,
        "serve-integration",
    )
    .expect("records");
    (program, rec.pinball)
}

/// The slice the server should produce for `SliceAt::Failure`, computed
/// locally, in canonical bytes.
fn local_failure_slice(program: &Arc<Program>, pinball: &Pinball) -> Vec<u8> {
    let mut local = DebugSession::new(Arc::clone(program), pinball.clone());
    let id = local.slicer().failure_record().expect("trace non-empty").id;
    let slice = local.slice_criterion(Criterion::Record { id }, SliceOptions::default());
    WireSlice::from_slice(&slice).canonical_bytes()
}

#[test]
fn eight_concurrent_clients_get_byte_identical_slices() {
    let (program, pinball) = recorded();
    let expected = local_failure_slice(&program, &pinball);
    let instructions = pinball.logged_instructions();
    assert!(instructions > 100, "workload too small to be interesting");

    let server = Server::new(ServeConfig {
        max_sessions: 8,
        ..ServeConfig::default()
    });

    const CLIENTS: usize = 8;
    let results: Vec<(bool, Vec<u8>, Vec<u8>)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let mut client = server.loopback_client();
                let program = Arc::clone(&program);
                let pinball = &pinball;
                scope.spawn(move || {
                    let up = client.upload(&program, pinball).expect("upload");
                    assert_eq!(up.instructions, instructions);
                    let session = client.open(up.digest).expect("open");
                    let (_, position) = client.seek(session, instructions / 2).expect("seek");
                    assert!(position >= instructions / 2);
                    let first = client
                        .compute_slice(session, SliceAt::Failure, SliceOptions::default())
                        .expect("slice");
                    let second = client
                        .compute_slice(session, SliceAt::Failure, SliceOptions::default())
                        .expect("slice again");
                    assert!(
                        second.cached,
                        "repeat of an identical request must hit the cache"
                    );
                    client.close(session).expect("close");
                    (
                        up.deduped,
                        first.slice.canonical_bytes(),
                        second.slice.canonical_bytes(),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (_, first, second)) in results.iter().enumerate() {
        assert_eq!(
            first, &expected,
            "client {i}: server slice differs from local computation"
        );
        assert_eq!(second, &expected, "client {i}: cached slice differs");
    }

    // All eight uploads carried identical bytes: exactly one stored copy.
    let deduped = results.iter().filter(|(d, _, _)| *d).count();
    assert_eq!(deduped, CLIENTS - 1, "all but the first upload dedupe");

    let stats = server.stats();
    assert_eq!(stats.pinballs, 1, "one distinct pinball stored");
    assert_eq!(stats.sessions.opened_total, CLIENTS as u64);
    assert_eq!(stats.sessions.rejected_busy, 0);
    assert_eq!(
        stats.cache.hits + stats.cache.misses,
        2 * CLIENTS as u64,
        "every slice request consulted the cache"
    );
    assert!(
        stats.cache.hits >= CLIENTS as u64,
        "at least each client's second request hits ({} hits)",
        stats.cache.hits
    );
    assert_eq!(stats.errors, 0, "clean run: {stats}");
}

#[test]
fn distinct_criteria_share_one_index_build() {
    let (program, pinball) = recorded();

    // Eight *distinct* criteria spread across the trace — every one will
    // miss the slice cache, so only the shared dependence index can save
    // work. Compute the expected answers locally first.
    let mut local = DebugSession::new(Arc::clone(&program), pinball.clone());
    let ids: Vec<RecordId> = {
        let records = local.slicer().trace().records();
        let n = records.len();
        assert!(n >= 8, "workload too small: {n} records");
        (0..8).map(|i| records[n - 1 - i * (n / 8)].id).collect()
    };
    let expected: Vec<Vec<u8>> = ids
        .iter()
        .map(|&id| {
            let slice = local.slice_criterion(Criterion::Record { id }, SliceOptions::default());
            WireSlice::from_slice(&slice).canonical_bytes()
        })
        .collect();

    let server = Server::new(ServeConfig {
        max_sessions: 8,
        ..ServeConfig::default()
    });

    thread::scope(|scope| {
        let handles: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                let mut client = server.loopback_client();
                let program = Arc::clone(&program);
                let pinball = &pinball;
                let expected = &expected[i];
                scope.spawn(move || {
                    let up = client.upload(&program, pinball).expect("upload");
                    let session = client.open(up.digest).expect("open");
                    let reply = client
                        .compute_slice(
                            session,
                            SliceAt::Criterion {
                                criterion: Criterion::Record { id },
                            },
                            SliceOptions::default(),
                        )
                        .expect("slice");
                    assert!(!reply.cached, "criterion {id} is distinct, cannot hit");
                    assert_eq!(
                        &reply.slice.canonical_bytes(),
                        expected,
                        "client {i}: server slice differs from local computation"
                    );
                    client.close(session).expect("close");
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
    });

    let stats = server.stats();
    assert_eq!(stats.errors, 0, "clean run: {stats}");
    assert_eq!(stats.cache.misses, 8, "every distinct criterion computes");
    assert_eq!(stats.cache.hits, 0);
    assert_eq!(
        stats.index_cache.misses, 1,
        "exactly one index build across all eight clients: {stats}"
    );
    assert_eq!(stats.index_cache.hits, 7, "the other seven reuse it");
    assert_eq!(stats.index_cache.entries, 1);
    assert!(stats.index_cache.bytes > 0, "built index is accounted");
}

#[test]
fn tcp_transport_carries_the_same_protocol() {
    let (program, pinball) = recorded();
    let expected = local_failure_slice(&program, &pinball);

    let server = Server::new(ServeConfig::default());
    let handle = server.listen("127.0.0.1:0").expect("bind");
    let mut client = drserve::connect(handle.addr()).expect("connect");

    let up = client.upload(&program, &pinball).expect("upload");
    assert!(!up.deduped);
    let session = client.open(up.digest).expect("open");
    let reply = client
        .compute_slice(session, SliceAt::Failure, SliceOptions::default())
        .expect("slice");
    assert_eq!(reply.slice.canonical_bytes(), expected);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.pinballs, 1);
    drop(client);
    handle.shutdown();
}

#[test]
fn typed_errors_for_misuse() {
    let (program, pinball) = recorded();
    let server = Server::new(ServeConfig::default());
    let mut client = server.loopback_client();

    // Unknown pinball digest.
    let missing = PinballDigest(0xdead_beef);
    match client.open(missing) {
        Err(ClientError::Server(ServeError::UnknownPinball { digest })) => {
            assert_eq!(digest, missing)
        }
        other => panic!("expected UnknownPinball, got {other:?}"),
    }

    // Unknown session.
    match client.run(999) {
        Err(ClientError::Server(ServeError::UnknownSession { session: 999 })) => {}
        other => panic!("expected UnknownSession, got {other:?}"),
    }

    // Damaged container: named chunk, typed error, connection stays usable.
    let mut bytes = PinballContainer::new(pinball.clone())
        .to_bytes()
        .expect("serializes");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    match client.upload_bytes(&program, bytes) {
        Err(ClientError::Server(ServeError::Pinball { chunk, reason, .. })) => {
            assert!(chunk.is_some(), "mid-file damage names a chunk: {reason}");
        }
        other => panic!("expected Pinball error, got {other:?}"),
    }

    // Slicing `Here` with no stop point is a BadRequest, not a panic.
    let up = client.upload(&program, &pinball).expect("upload");
    let session = client.open(up.digest).expect("open");
    match client.compute_slice(
        session,
        SliceAt::Here { key: None },
        SliceOptions::default(),
    ) {
        Err(ClientError::Server(ServeError::BadRequest { .. })) => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }

    // The connection survived all four errors.
    let stats = client.stats().expect("stats still works");
    assert_eq!(stats.errors, 4);
}

/// Relog round-trip: the server turns a failure slice into a
/// content-addressed slice pinball; the digest opens and slices like any
/// upload, the container downloads and slices identically in a local
/// session, and a repeat relog answers from the single-flight cache.
#[test]
fn relog_round_trip_slices_identically_on_server_and_locally() {
    let (program, pinball) = recorded();
    let server = Server::new(ServeConfig::default());
    let mut client = server.loopback_client();
    let up = client.upload(&program, &pinball).expect("upload");
    let session = client.open(up.digest).expect("open");

    let relog = client
        .relog(session, SliceAt::Failure, SliceOptions::default())
        .expect("relog");
    assert!(!relog.cached, "cold relog builds");
    assert_eq!(relog.instructions, relog.kept);
    assert_eq!(
        relog.kept + relog.excluded,
        up.instructions,
        "every region instruction is either kept or excluded"
    );
    assert_ne!(relog.digest, up.digest, "the slice pinball is a new object");

    // The identical request again is served from the relog cache with the
    // same content digest.
    let again = client
        .relog(session, SliceAt::Failure, SliceOptions::default())
        .expect("relog again");
    assert!(again.cached, "repeat relog hits the cache");
    assert_eq!(again.digest, relog.digest);

    // The relogged digest opens and slices like any upload ...
    let sliced_session = client.open(relog.digest).expect("open slice pinball");
    let server_slice = client
        .compute_slice(sliced_session, SliceAt::Failure, SliceOptions::default())
        .expect("slice the slice pinball");

    // ... and the downloaded container slices identically locally.
    let bytes = client.fetch(relog.digest).expect("fetch slice pinball");
    let container = PinballContainer::from_bytes(&bytes).expect("downloaded container loads");
    assert_eq!(container.digest(), relog.digest, "content-addressed bytes");
    assert_eq!(container.pinball.logged_instructions(), relog.instructions);
    let mut local = DebugSession::with_container(Arc::clone(&program), container);
    let id = local.slicer().failure_record().expect("trace non-empty").id;
    let slice = local.slice_criterion(Criterion::Record { id }, SliceOptions::default());
    assert_eq!(
        WireSlice::from_slice(&slice).canonical_bytes(),
        server_slice.slice.canonical_bytes(),
        "server and local slices of the slice pinball are byte-identical"
    );

    let stats = server.stats();
    assert_eq!(stats.errors, 0, "clean run: {stats}");
    assert_eq!(stats.relog_cache.misses, 1, "one slice-pinball build");
    assert_eq!(stats.relog_cache.hits, 1, "the repeat request hit");
    assert!(stats.relog_cache.bytes > 0, "stored container is accounted");
    assert_eq!(
        stats.pinballs, 2,
        "the slice pinball is stored alongside the upload"
    );
    assert!(stats.op("relog").is_some(), "relog op is metered");
}

#[test]
fn seek_then_slice_here_matches_run_position() {
    let (program, pinball) = recorded();
    let server = Server::new(ServeConfig::default());
    let mut client = server.loopback_client();
    let up = client.upload(&program, &pinball).expect("upload");
    let session = client.open(up.digest).expect("open");

    let mid = pinball.logged_instructions() / 2;
    let (reason, position) = client.seek(session, mid).expect("seek to mid");
    assert!(
        matches!(reason, WireStop::Stepped { .. } | WireStop::ReplayStart),
        "mid-log seek lands on a stepped instruction, got {reason:?}"
    );
    assert!(position >= mid, "seek lands at or after the target");

    let here = client
        .compute_slice(
            session,
            SliceAt::Here { key: None },
            SliceOptions::default(),
        )
        .expect("slice here");
    assert!(!here.slice.is_empty());
}
