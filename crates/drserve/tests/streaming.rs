//! End-to-end tests of the streaming-capture subsystem: chunked resumable
//! uploads, digest-first dedupe, live-tail progress, and slicing an
//! unsealed stream — all over the in-process loopback transport.
//!
//! The acceptance bar: a client must obtain a byte-identical slice of an
//! uploaded *prefix* while the rest of the recording is still in flight,
//! and sealing must publish exactly the container a batch upload would
//! have stored (same digest, same slices).

use std::sync::Arc;

use drserve::{ClientError, ServeConfig, ServeError, Server, SliceAt, WireSlice};
use minivm::{assemble, LiveEnv, Program, RoundRobin};
use pinplay::{
    record_whole_program, Pinball, PinballContainer, PinballDigest, StreamReader, StreamWriter,
};
use slicer::{
    compute_slice_indexed, Criterion, DepIndex, SliceOptions, SliceSession, SlicerOptions,
};

const PROG: &str = r"
    .data
    acc: .word 0
    .text
    .func main
        movi r1, 1
        spawn r2, worker, r1
        movi r1, 2
        spawn r3, worker, r1
        join r2
        join r3
        la r4, acc
        load r5, r4, 0
        print r5
        halt
    .endfunc
    .func worker
        movi r3, 150
    loop:
        la r1, acc
        xadd r2, r1, r0
        subi r3, r3, 1
        bgti r3, 0, loop
        halt
    .endfunc
    ";

fn recorded() -> (Arc<Program>, PinballContainer) {
    let program = Arc::new(assemble(PROG).expect("assembles"));
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(7),
        &mut LiveEnv::new(42),
        1_000_000,
        "streaming-test",
    )
    .expect("records");
    // A small checkpoint interval gives the stream many chunkable groups.
    let container = PinballContainer::with_checkpoints(rec.pinball, &program, 64);
    (program, container)
}

/// The slice the server must produce for `criterion` over `pinball`,
/// computed locally with the same configuration the server uses for
/// streams (clustering off, indexed traversal), in canonical bytes.
fn local_slice(program: &Arc<Program>, pinball: &Pinball, criterion: Criterion) -> Vec<u8> {
    let session = SliceSession::collect(
        Arc::clone(program),
        pinball,
        SlicerOptions {
            cluster: false,
            ..SlicerOptions::default()
        },
    );
    let options = SliceOptions::default();
    let index = DepIndex::build(session.trace(), session.pairs(), &options);
    WireSlice::from_slice(&compute_slice_indexed(&index, criterion)).canonical_bytes()
}

/// The last record (failure point) of the partial prefix held by `reader`.
fn prefix_failure(program: &Arc<Program>, reader: &StreamReader) -> (Pinball, Criterion) {
    let partial = reader.partial_container().expect("prefix container");
    let session = SliceSession::collect(
        Arc::clone(program),
        &partial.pinball,
        SlicerOptions {
            cluster: false,
            ..SlicerOptions::default()
        },
    );
    let id = session.failure_record().expect("non-empty prefix").id;
    (partial.pinball, Criterion::Record { id })
}

#[test]
fn streamed_upload_matches_batch_digest_and_dedupes() {
    let (program, container) = recorded();
    let server = Server::new(ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    });
    let mut client = server.loopback_client();

    assert!(
        !client.probe(container.digest()).expect("probe"),
        "fresh server must not know the digest"
    );
    let up = client
        .upload_streamed(&program, &container, 7)
        .expect("streamed upload");
    assert_eq!(up.digest, container.digest(), "streamed digest == batch");
    assert_eq!(up.instructions, container.pinball.logged_instructions());
    assert!(!up.deduped, "first upload stores");
    assert!(client.probe(up.digest).expect("probe"), "now known");

    // A second client streaming the same recording never sends the body:
    // the digest probe in BeginStream short-circuits.
    let mut second = server.loopback_client();
    let before = second.wire_stats().bytes_sent;
    let again = second
        .upload_streamed(&program, &container, 7)
        .expect("dedup upload");
    assert!(again.deduped, "identical pinball dedupes");
    assert_eq!(again.digest, up.digest);
    let sent = second.wire_stats().bytes_sent - before;
    assert!(
        (sent as usize) < container.to_bytes().expect("bytes").len() / 2,
        "dedupe must skip the body ({sent} bytes sent)"
    );

    // The published container is the real recording: a session opened on
    // it slices byte-identically to a local computation.
    let session = client.open(up.digest).expect("open");
    let reply = client
        .compute_slice(session, SliceAt::Failure, SliceOptions::default())
        .expect("slice");
    assert!(!reply.slice.is_empty());
}

#[test]
fn slices_of_a_growing_stream_match_local_prefix_slices() {
    let (program, container) = recorded();
    let server = Server::new(ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    });
    let mut client = server.loopback_client();

    let writer = StreamWriter::new(&container).expect("plans");
    let chunks = writer.chunks(16);
    assert!(chunks.len() >= 8, "workload should split into many chunks");
    let stream = 1u64;
    client
        .begin_stream(stream, &program, None)
        .expect("begin stream");

    // Mirror the server's absorption locally so every comparison is
    // against exactly the prefix the server holds.
    let mut mirror = StreamReader::new();
    let quarter = chunks.len() / 4;
    for (seq, chunk) in chunks.iter().enumerate().take(quarter) {
        let ack = client
            .append_chunk(stream, seq as u32, chunk.to_vec())
            .expect("append");
        assert_eq!(ack.next_seq as usize, seq + 1);
        mirror.absorb(chunk).expect("mirror absorbs");
    }

    // A quarter of the trace is up; the rest has not been sent. The
    // server must already answer a correct slice of that prefix.
    let (prefix_pinball, criterion) = prefix_failure(&program, &mirror);
    assert!(
        mirror.events_absorbed() < container.pinball.events.len(),
        "three quarters of the recording are still outstanding"
    );
    let reply = client
        .slice_stream(stream, SliceAt::Failure, SliceOptions::default())
        .expect("slice of unsealed prefix");
    assert_eq!(
        reply.slice.canonical_bytes(),
        local_slice(&program, &prefix_pinball, criterion),
        "prefix slice must be byte-identical to a local computation"
    );

    // A criterion past the absorbed prefix is a typed rejection, not a
    // panic or a wrong answer.
    let full_session = SliceSession::collect(
        Arc::clone(&program),
        &container.pinball,
        SlicerOptions {
            cluster: false,
            ..SlicerOptions::default()
        },
    );
    let last_id = full_session.failure_record().expect("records").id;
    let err = client
        .slice_stream(
            stream,
            SliceAt::Criterion {
                criterion: Criterion::Record { id: last_id },
            },
            SliceOptions::default(),
        )
        .expect_err("criterion not yet uploaded");
    assert!(
        matches!(err, ClientError::Server(ServeError::BadRequest { .. })),
        "{err:?}"
    );

    // Grow the stream and slice again: the server's incremental index
    // absorbs the new suffix and stays byte-identical to batch.
    for (seq, chunk) in chunks.iter().enumerate().skip(quarter) {
        client
            .append_chunk(stream, seq as u32, chunk.to_vec())
            .expect("append");
        mirror.absorb(chunk).expect("mirror absorbs");
        if seq == chunks.len() / 2 {
            let (prefix_pinball, criterion) = prefix_failure(&program, &mirror);
            let reply = client
                .slice_stream(stream, SliceAt::Failure, SliceOptions::default())
                .expect("mid-stream slice");
            assert_eq!(
                reply.slice.canonical_bytes(),
                local_slice(&program, &prefix_pinball, criterion),
                "mid-stream slice diverged from the local prefix slice"
            );
        }
    }

    // Seal: the published container is byte-for-byte the batch save.
    let up = client
        .seal_stream(stream, writer.footer().to_vec())
        .expect("seal");
    assert_eq!(up.digest, writer.digest());
    assert!(!up.deduped);
    let fetched = client.fetch(up.digest).expect("fetch");
    assert_eq!(fetched, writer.sealed_bytes(), "stored bytes == batch save");

    // Post-seal the stream still slices — now over the full trace.
    let reply = client
        .slice_stream(stream, SliceAt::Failure, SliceOptions::default())
        .expect("post-seal slice");
    assert_eq!(
        reply.slice.canonical_bytes(),
        local_slice(
            &program,
            &container.pinball,
            Criterion::Record { id: last_id }
        ),
    );
}

#[test]
fn out_of_order_duplicate_and_resumed_chunks_converge() {
    let (program, container) = recorded();
    let server = Server::new(ServeConfig::default());
    let mut client = server.loopback_client();

    let writer = StreamWriter::new(&container).expect("plans");
    let chunks = writer.chunks(6);
    assert_eq!(chunks.len(), 6);
    let stream = 2u64;
    client.begin_stream(stream, &program, None).expect("begin");

    // Deliver 0, 3, 2 — 3 and 2 buffer behind the gap at 1.
    client
        .append_chunk(stream, 0, chunks[0].to_vec())
        .expect("chunk 0");
    let ack = client
        .append_chunk(stream, 3, chunks[3].to_vec())
        .expect("chunk 3");
    assert_eq!(ack.next_seq, 1);
    assert_eq!(ack.pending, vec![3]);
    let ack = client
        .append_chunk(stream, 2, chunks[2].to_vec())
        .expect("chunk 2");
    assert_eq!(ack.next_seq, 1);
    assert_eq!(ack.pending, vec![2, 3]);

    // Sealing across a gap is refused with a typed answer naming it.
    let err = client
        .seal_stream(stream, writer.footer().to_vec())
        .expect_err("cannot seal across a gap");
    assert!(
        matches!(&err, ClientError::Server(ServeError::BadRequest { reason })
            if reason.contains("waiting for chunk 1")),
        "{err:?}"
    );

    // Filling the gap drains everything buffered behind it.
    let ack = client
        .append_chunk(stream, 1, chunks[1].to_vec())
        .expect("chunk 1");
    assert_eq!(ack.next_seq, 4);
    assert!(ack.pending.is_empty());

    // A duplicate below the high-water mark is acknowledged idempotently.
    let ack = client
        .append_chunk(stream, 2, chunks[2].to_vec())
        .expect("duplicate chunk 2");
    assert_eq!(ack.next_seq, 4);

    // Simulated reconnect: a new connection re-begins the same stream and
    // reads the high-water mark instead of restarting from zero.
    let mut resumed = server.loopback_client();
    let ack = resumed
        .begin_stream(stream, &program, None)
        .expect("resume");
    assert_eq!(ack.next_seq, 4, "resume sees the high-water mark");
    let status = resumed.stream_status(stream).expect("status");
    assert_eq!(status.next_seq, 4);
    for (seq, chunk) in chunks.iter().enumerate().skip(ack.next_seq as usize) {
        resumed
            .append_chunk(stream, seq as u32, chunk.to_vec())
            .expect("remaining chunk");
    }
    let up = resumed
        .seal_stream(stream, writer.footer().to_vec())
        .expect("seal");
    assert_eq!(up.digest, writer.digest(), "resumed upload converges");

    // A duplicate seal (lost ack) answers idempotently with the digest.
    let again = resumed
        .seal_stream(stream, writer.footer().to_vec())
        .expect("idempotent seal");
    assert_eq!(again.digest, up.digest);
    assert!(again.deduped);
}

#[test]
fn tail_follows_a_live_upload_from_a_second_client() {
    let (program, container) = recorded();
    let server = Server::new(ServeConfig::default());
    let mut writer_client = server.loopback_client();
    let mut tailer = server.loopback_client();

    let writer = StreamWriter::new(&container).expect("plans");
    let chunks = writer.chunks(8);
    let stream = 3u64;
    writer_client
        .begin_stream(stream, &program, None)
        .expect("begin");

    let mut last = tailer.tail(stream).expect("tail before any chunk");
    assert_eq!(last.chunks, 0);
    assert!(!last.sealed);
    for (seq, chunk) in chunks.iter().enumerate() {
        writer_client
            .append_chunk(stream, seq as u32, chunk.to_vec())
            .expect("append");
        let now = tailer.tail(stream).expect("tail");
        assert_eq!(now.chunks as usize, seq + 1);
        assert!(now.events >= last.events, "events are monotone");
        assert!(
            now.instructions >= last.instructions,
            "instructions are monotone"
        );
        assert!(!now.sealed);
        assert_eq!(now.digest, None);
        assert_eq!(
            now.expected_events,
            container.pinball.events.len() as u64,
            "the header chunk announces the total"
        );
        last = now;
    }
    assert_eq!(last.events, container.pinball.events.len() as u64);
    assert_eq!(
        last.instructions,
        container.pinball.logged_instructions(),
        "fully absorbed stream retires the whole recording"
    );

    let up = writer_client
        .seal_stream(stream, writer.footer().to_vec())
        .expect("seal");
    let done = tailer.tail(stream).expect("tail after seal");
    assert!(done.sealed);
    assert_eq!(done.digest, Some(up.digest));

    // The tailer picks the published digest straight up and debugs it.
    let session = tailer.open(up.digest).expect("open published pinball");
    let reply = tailer
        .compute_slice(session, SliceAt::Failure, SliceOptions::default())
        .expect("slice published pinball");
    assert!(!reply.slice.is_empty());
}

#[test]
fn stream_misuse_is_typed_never_a_panic() {
    let (program, container) = recorded();
    let server = Server::new(ServeConfig::default());
    let mut client = server.loopback_client();

    // Ops on a stream that was never begun.
    for err in [
        client.stream_status(99).expect_err("no such stream"),
        client.tail(99).expect_err("no such stream"),
        client
            .append_chunk(99, 0, b"zzz".to_vec())
            .expect_err("no such stream"),
        client
            .slice_stream(99, SliceAt::Failure, SliceOptions::default())
            .expect_err("no such stream"),
        client
            .seal_stream(99, b"zzz".to_vec())
            .expect_err("no such stream"),
    ] {
        assert!(
            matches!(
                err,
                ClientError::Server(ServeError::UnknownStream { stream: 99 })
            ),
            "{err:?}"
        );
    }

    let stream = 4u64;
    client.begin_stream(stream, &program, None).expect("begin");

    // Slicing before any events exist is a typed rejection.
    let err = client
        .slice_stream(stream, SliceAt::Failure, SliceOptions::default())
        .expect_err("nothing to slice yet");
    assert!(matches!(
        err,
        ClientError::Server(ServeError::BadRequest { .. })
    ));

    // SliceAt::Here needs a stopped session; streams have none.
    let writer = StreamWriter::new(&container).expect("plans");
    client
        .append_chunk(stream, 0, writer.chunks(4)[0].to_vec())
        .expect("append");
    let err = client
        .slice_stream(stream, SliceAt::Here { key: None }, SliceOptions::default())
        .expect_err("Here is meaningless on a stream");
    assert!(matches!(
        err,
        ClientError::Server(ServeError::BadRequest { .. })
    ));

    // Damaged chunk bytes: typed pinball error, and the stream is dropped
    // so a retry starts clean. (Arbitrary garbage can be indistinguishable
    // from a pending frame prefix until sealing, so use a *complete* frame
    // of an invalid kind — damage the reader can prove immediately.)
    let bad_frame = vec![0x7f, 0, 0, 0, 0, 0, 0];
    let err = client
        .append_chunk(stream, 1, bad_frame)
        .expect_err("garbage chunk");
    assert!(
        matches!(err, ClientError::Server(ServeError::Pinball { .. })),
        "{err:?}"
    );
    let err = client.stream_status(stream).expect_err("stream dropped");
    assert!(matches!(
        err,
        ClientError::Server(ServeError::UnknownStream { .. })
    ));

    // An unknown digest probes as unknown.
    assert!(!client.probe(PinballDigest(0xdead_beef)).expect("probe"));
}
