//! Content-addressed slice cache.
//!
//! Cyclic debugging recomputes the same slices over and over: every debug
//! iteration replays the same pinball and asks about the same failure
//! point. The cache exploits that shape. A result is keyed by *content*,
//! never by session: the pinball's [`PinballDigest`] (a fold of its chunk
//! CRCs), the resolved [`Criterion`], and the
//! [`SliceOptions::fingerprint`](slicer::SliceOptions::fingerprint). Two
//! different clients debugging two uploads of the identical pinball
//! therefore share entries, and reopening a session after an LRU eviction
//! loses no cached work.
//!
//! Eviction is LRU by lookup order with a fixed entry capacity; all
//! counters are surfaced through [`CacheStats`] on the `Stats` path.
//!
//! Alongside the slice cache sits the [`IndexCache`]: the same
//! content-addressed idea one level down. A [`DepIndex`] is keyed by
//! (pinball digest, options fingerprint) only — *not* by criterion — so
//! every criterion a client asks about on one uploaded pinball shares a
//! single index build. Lookups are single-flight: concurrent requests for
//! the same key serialize on a per-entry lock, so eight clients racing on
//! a cold key produce exactly one build while the other seven wait and
//! reuse it.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use pinplay::PinballDigest;
use slicer::{Criterion, DepIndex, LocKey, RecordId};

use crate::proto::{CacheStats, WireSlice};

/// Hashable form of a [`Criterion`] (which does not itself derive `Hash`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CriterionKey {
    Record(RecordId),
    Value(RecordId, LocKey),
}

impl From<Criterion> for CriterionKey {
    fn from(c: Criterion) -> CriterionKey {
        match c {
            Criterion::Record { id } => CriterionKey::Record(id),
            Criterion::Value { id, key } => CriterionKey::Value(id, key),
        }
    }
}

/// Full cache key: what was sliced, where, under which options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    digest: PinballDigest,
    criterion: CriterionKey,
    options: u64,
}

struct Entry {
    slice: Arc<WireSlice>,
    bytes: u64,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<CacheKey, Entry>,
    /// Monotonic lookup clock driving LRU order.
    tick: u64,
    bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded, thread-safe, content-addressed store of canonical slices.
pub struct SliceCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl SliceCache {
    /// Creates a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> SliceCache {
        SliceCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Looks up a slice, counting a hit or miss and refreshing LRU order.
    pub fn get(
        &self,
        digest: PinballDigest,
        criterion: Criterion,
        options_fingerprint: u64,
    ) -> Option<Arc<WireSlice>> {
        let key = CacheKey {
            digest,
            criterion: criterion.into(),
            options: options_fingerprint,
        };
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                let slice = Arc::clone(&entry.slice);
                inner.hits += 1;
                Some(slice)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores a computed slice, evicting the least recently used entry if
    /// the cache is full. Re-inserting an existing key refreshes it.
    pub fn insert(
        &self,
        digest: PinballDigest,
        criterion: Criterion,
        options_fingerprint: u64,
        slice: Arc<WireSlice>,
    ) {
        let key = CacheKey {
            digest,
            criterion: criterion.into(),
            options: options_fingerprint,
        };
        let bytes = slice.canonical_bytes().len() as u64;
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        while inner.map.len() >= self.capacity {
            // O(entries) scan; the capacity is a configuration-sized bound,
            // not a dataset.
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("map non-empty while over capacity");
            let evicted = inner.map.remove(&victim).expect("victim present");
            inner.bytes -= evicted.bytes;
            inner.evictions += 1;
        }
        inner.bytes += bytes;
        inner.map.insert(
            key,
            Entry {
                slice,
                bytes,
                last_used: tick,
            },
        );
    }

    /// Counter snapshot for the `Stats` path.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len() as u64,
            bytes: inner.bytes,
        }
    }
}

/// Cache key for a dependence index: which pinball, under which options.
/// The criterion is deliberately absent — one index answers all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct IndexKey {
    digest: PinballDigest,
    options: u64,
}

struct IndexEntry {
    /// Single-flight slot: the builder fills it while holding the lock;
    /// concurrent requesters for the same key block here instead of
    /// building their own copy.
    slot: Arc<Mutex<Option<Arc<DepIndex>>>>,
    /// `DepIndex::approx_bytes` once built, 0 while the build is in flight.
    bytes: u64,
    last_used: u64,
}

struct IndexInner {
    map: HashMap<IndexKey, IndexEntry>,
    tick: u64,
    bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded, thread-safe cache of [`DepIndex`]es keyed by
/// (pinball digest, options fingerprint), with single-flight builds.
///
/// A *miss* is counted when a key is first requested and this caller
/// becomes its builder; every later request for the key — including ones
/// that arrive while the build is still running and wait for it — counts
/// as a *hit*, because it did not trigger a second build.
pub struct IndexCache {
    inner: Mutex<IndexInner>,
    capacity: usize,
}

impl IndexCache {
    /// Creates a cache holding at most `capacity` indexes (min 1).
    pub fn new(capacity: usize) -> IndexCache {
        IndexCache {
            inner: Mutex::new(IndexInner {
                map: HashMap::new(),
                tick: 0,
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Returns the cached index for `(digest, fingerprint)`, building it
    /// with `build` exactly once per cache residency. Concurrent callers
    /// for the same key block until the one build finishes; callers for
    /// different keys proceed independently (the outer map lock is never
    /// held across a build).
    pub fn get_or_build<F>(
        &self,
        digest: PinballDigest,
        options_fingerprint: u64,
        build: F,
    ) -> Arc<DepIndex>
    where
        F: FnOnce() -> Arc<DepIndex>,
    {
        let key = IndexKey {
            digest,
            options: options_fingerprint,
        };
        let slot = {
            let mut inner = self.inner.lock().expect("index cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.last_used = tick;
                let slot = Arc::clone(&entry.slot);
                inner.hits += 1;
                slot
            } else {
                inner.misses += 1;
                while inner.map.len() >= self.capacity {
                    // O(entries) scan; capacity is a configuration-sized
                    // bound, not a dataset.
                    let victim = inner
                        .map
                        .iter()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(k, _)| *k)
                        .expect("map non-empty while over capacity");
                    let evicted = inner.map.remove(&victim).expect("victim present");
                    inner.bytes -= evicted.bytes;
                    inner.evictions += 1;
                }
                let slot = Arc::new(Mutex::new(None));
                inner.map.insert(
                    key,
                    IndexEntry {
                        slot: Arc::clone(&slot),
                        bytes: 0,
                        last_used: tick,
                    },
                );
                slot
            }
        };
        let mut guard = slot.lock().expect("index slot lock");
        if let Some(index) = guard.as_ref() {
            return Arc::clone(index);
        }
        let index = build();
        *guard = Some(Arc::clone(&index));
        let bytes = index.approx_bytes();
        let mut inner = self.inner.lock().expect("index cache lock");
        if let Some(entry) = inner.map.get_mut(&key) {
            // The entry may have been evicted while the build ran; only a
            // still-resident entry contributes to the byte count.
            let delta = bytes - entry.bytes;
            entry.bytes = bytes;
            inner.bytes += delta;
        }
        index
    }

    /// Counter snapshot for the `Stats` path.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("index cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len() as u64,
            bytes: inner.bytes,
        }
    }
}

/// What one relog produced: the handle and counters a repeat request can
/// answer with, without touching the session again. The slice-pinball
/// container itself lives in the server's content-addressed store under
/// `digest`; the cache only remembers that it exists.
#[derive(Debug, Clone, Copy)]
pub struct RelogOutcome {
    /// Content digest of the slice pinball in the store.
    pub digest: PinballDigest,
    /// The debugger's relog report (kept/excluded/forced counters).
    pub report: drdebug::RelogReport,
    /// Serialized size of the stored container, for byte accounting.
    pub bytes: u64,
}

/// Cache key for a relog: which pinball, sliced where, under which
/// options. Unlike [`IndexKey`] the criterion *is* part of the key — each
/// criterion relogs to a different slice pinball.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RelogKey {
    digest: PinballDigest,
    criterion: CriterionKey,
    options: u64,
}

struct RelogEntry {
    /// Single-flight slot, exactly as in [`IndexCache`]: the builder
    /// fills it under the lock; concurrent requesters for the same key
    /// block here instead of relogging twice.
    slot: Arc<Mutex<Option<Arc<RelogOutcome>>>>,
    bytes: u64,
    last_used: u64,
}

struct RelogInner {
    map: HashMap<RelogKey, RelogEntry>,
    tick: u64,
    bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded, thread-safe cache of relog outcomes keyed by
/// (pinball digest, criterion, options fingerprint), with single-flight
/// builds mirroring [`IndexCache`]: concurrent relog requests for the
/// same slice produce exactly one slice pinball.
pub struct RelogCache {
    inner: Mutex<RelogInner>,
    capacity: usize,
}

impl RelogCache {
    /// Creates a cache holding at most `capacity` outcomes (min 1).
    pub fn new(capacity: usize) -> RelogCache {
        RelogCache {
            inner: Mutex::new(RelogInner {
                map: HashMap::new(),
                tick: 0,
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Returns the cached outcome for the key, building it with `build`
    /// exactly once per cache residency. The second element is `true`
    /// when the cache answered without running `build` — the wire-level
    /// `cached` flag. Concurrent callers for the same key block until the
    /// one build finishes; the outer map lock is never held across a
    /// build.
    pub fn get_or_build<F>(
        &self,
        digest: PinballDigest,
        criterion: Criterion,
        options_fingerprint: u64,
        build: F,
    ) -> (Arc<RelogOutcome>, bool)
    where
        F: FnOnce() -> Arc<RelogOutcome>,
    {
        let key = RelogKey {
            digest,
            criterion: criterion.into(),
            options: options_fingerprint,
        };
        let slot = {
            let mut inner = self.inner.lock().expect("relog cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.last_used = tick;
                let slot = Arc::clone(&entry.slot);
                inner.hits += 1;
                slot
            } else {
                inner.misses += 1;
                while inner.map.len() >= self.capacity {
                    // O(entries) scan; capacity is a configuration-sized
                    // bound, not a dataset.
                    let victim = inner
                        .map
                        .iter()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(k, _)| *k)
                        .expect("map non-empty while over capacity");
                    let evicted = inner.map.remove(&victim).expect("victim present");
                    inner.bytes -= evicted.bytes;
                    inner.evictions += 1;
                }
                let slot = Arc::new(Mutex::new(None));
                inner.map.insert(
                    key,
                    RelogEntry {
                        slot: Arc::clone(&slot),
                        bytes: 0,
                        last_used: tick,
                    },
                );
                slot
            }
        };
        let mut guard = slot.lock().expect("relog slot lock");
        if let Some(outcome) = guard.as_ref() {
            return (Arc::clone(outcome), true);
        }
        let outcome = build();
        *guard = Some(Arc::clone(&outcome));
        let bytes = outcome.bytes;
        let mut inner = self.inner.lock().expect("relog cache lock");
        if let Some(entry) = inner.map.get_mut(&key) {
            // The entry may have been evicted while the build ran; only a
            // still-resident entry contributes to the byte count.
            let delta = bytes - entry.bytes;
            entry.bytes = bytes;
            inner.bytes += delta;
        }
        (outcome, false)
    }

    /// Looks up an outcome without installing a build slot, counting a
    /// hit or miss — the peer-forward path, which obtains outcomes from a
    /// digest's owner rather than building them here. A slot whose build
    /// is still in flight counts as a miss.
    pub fn peek(
        &self,
        digest: PinballDigest,
        criterion: Criterion,
        options_fingerprint: u64,
    ) -> Option<Arc<RelogOutcome>> {
        let key = RelogKey {
            digest,
            criterion: criterion.into(),
            options: options_fingerprint,
        };
        let slot = {
            let mut inner = self.inner.lock().expect("relog cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            match inner.map.get_mut(&key) {
                Some(entry) => {
                    entry.last_used = tick;
                    Some(Arc::clone(&entry.slot))
                }
                None => None,
            }
        };
        let found = slot.and_then(|slot| slot.lock().expect("relog slot lock").clone());
        let mut inner = self.inner.lock().expect("relog cache lock");
        match &found {
            Some(_) => inner.hits += 1,
            None => inner.misses += 1,
        }
        found
    }

    /// Stores an outcome obtained elsewhere (a forwarded relog answered
    /// by the digest's owner), evicting LRU entries to stay within
    /// capacity. Re-inserting an existing key refreshes it.
    pub fn insert(
        &self,
        digest: PinballDigest,
        criterion: Criterion,
        options_fingerprint: u64,
        outcome: Arc<RelogOutcome>,
    ) {
        let key = RelogKey {
            digest,
            criterion: criterion.into(),
            options: options_fingerprint,
        };
        let bytes = outcome.bytes;
        let mut inner = self.inner.lock().expect("relog cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        while inner.map.len() >= self.capacity {
            // O(entries) scan; capacity is a configuration-sized bound,
            // not a dataset.
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("map non-empty while over capacity");
            let evicted = inner.map.remove(&victim).expect("victim present");
            inner.bytes -= evicted.bytes;
            inner.evictions += 1;
        }
        inner.bytes += bytes;
        inner.map.insert(
            key,
            RelogEntry {
                slot: Arc::new(Mutex::new(Some(outcome))),
                bytes,
                last_used: tick,
            },
        );
    }

    /// Counter snapshot for the `Stats` path.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("relog cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len() as u64,
            bytes: inner.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer::SliceStats;

    fn slice(id: RecordId) -> Arc<WireSlice> {
        Arc::new(WireSlice {
            criterion: Criterion::Record { id },
            records: vec![id],
            data_edges: Vec::new(),
            control_edges: Vec::new(),
            stats: SliceStats::default(),
        })
    }

    const D: PinballDigest = PinballDigest(0xfeed);

    #[test]
    fn hit_after_insert_and_counters() {
        let cache = SliceCache::new(4);
        let c = Criterion::Record { id: 1 };
        assert!(cache.get(D, c, 0).is_none());
        cache.insert(D, c, 0, slice(1));
        let got = cache.get(D, c, 0).expect("hit");
        assert_eq!(got.records, vec![1]);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.bytes > 0);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = SliceCache::new(8);
        let c = Criterion::Record { id: 1 };
        cache.insert(D, c, 0, slice(1));
        assert!(cache.get(PinballDigest(0xbeef), c, 0).is_none(), "digest");
        assert!(
            cache.get(D, Criterion::Record { id: 2 }, 0).is_none(),
            "criterion"
        );
        assert!(cache.get(D, c, 1).is_none(), "options");
        assert!(
            cache
                .get(
                    D,
                    Criterion::Value {
                        id: 1,
                        key: LocKey::Mem(0)
                    },
                    0
                )
                .is_none(),
            "record vs value"
        );
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let cache = SliceCache::new(2);
        let a = Criterion::Record { id: 1 };
        let b = Criterion::Record { id: 2 };
        let c = Criterion::Record { id: 3 };
        cache.insert(D, a, 0, slice(1));
        cache.insert(D, b, 0, slice(2));
        cache.get(D, a, 0).expect("a cached"); // refresh a; b is now LRU
        cache.insert(D, c, 0, slice(3)); // evicts b
        assert!(cache.get(D, a, 0).is_some(), "recently used survives");
        assert!(cache.get(D, b, 0).is_none(), "LRU evicted");
        assert!(cache.get(D, c, 0).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    /// A real (tiny) dependence index, so byte accounting is exercised
    /// against `DepIndex::approx_bytes` rather than a stub.
    fn tiny_index() -> Arc<DepIndex> {
        let program = Arc::new(
            minivm::assemble(
                r"
                .text
                .func main
                    movi r1, 2
                    addi r1, r1, 3
                    halt
                .endfunc
                ",
            )
            .expect("assembles"),
        );
        let rec = pinplay::record_whole_program(
            &program,
            &mut minivm::RoundRobin::new(4),
            &mut minivm::LiveEnv::new(0),
            10_000,
            "index-cache-test",
        )
        .expect("records");
        let mut session = drdebug::DebugSession::new(program, rec.pinball);
        session.dep_index_for(&slicer::SliceOptions::default())
    }

    #[test]
    fn index_cache_single_flight_builds_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let index = tiny_index();
        let cache = IndexCache::new(4);
        let builds = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = &cache;
                let builds = &builds;
                let index = Arc::clone(&index);
                scope.spawn(move || {
                    let got = cache.get_or_build(D, 7, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window: the other threads must
                        // wait on the slot, not build their own.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        index
                    });
                    assert!(!got.is_empty(), "waiters get the built index");
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "single-flight");
        let s = cache.stats();
        assert_eq!((s.misses, s.hits, s.entries), (1, 7, 1));
        assert_eq!(s.bytes, index.approx_bytes());
    }

    #[test]
    fn index_cache_keys_on_fingerprint_and_evicts_lru() {
        let index = tiny_index();
        let cache = IndexCache::new(1);
        let mut builds = 0;
        let mut build = |cache: &IndexCache, fp: u64| {
            cache.get_or_build(D, fp, || {
                builds += 1;
                Arc::clone(&index)
            });
        };
        build(&cache, 1); // miss, build
        build(&cache, 1); // hit
        build(&cache, 2); // different options: miss, evicts fp 1
        build(&cache, 1); // miss again after eviction
        assert_eq!(builds, 3);
        let s = cache.stats();
        assert_eq!((s.misses, s.hits, s.evictions, s.entries), (3, 1, 2, 1));
        assert_eq!(s.bytes, index.approx_bytes(), "evicted bytes freed");
    }

    fn outcome(tag: u64) -> Arc<RelogOutcome> {
        Arc::new(RelogOutcome {
            digest: PinballDigest(tag),
            report: drdebug::RelogReport::default(),
            bytes: 100,
        })
    }

    #[test]
    fn relog_cache_single_flight_and_cached_flag() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let cache = RelogCache::new(4);
        let c = Criterion::Record { id: 1 };
        let builds = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = &cache;
                let builds = &builds;
                scope.spawn(move || {
                    let (got, _cached) = cache.get_or_build(D, c, 0, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        outcome(0xabc)
                    });
                    assert_eq!(got.digest, PinballDigest(0xabc));
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "single-flight");
        let s = cache.stats();
        assert_eq!((s.misses, s.hits, s.entries, s.bytes), (1, 7, 1, 100));
        // The builder's own call reports uncached; a later call is cached.
        let (_, cached) = cache.get_or_build(D, c, 0, || outcome(0xabc));
        assert!(cached, "repeat relog is served from the cache");
    }

    #[test]
    fn relog_cache_keys_on_criterion_and_options() {
        let cache = RelogCache::new(8);
        let a = Criterion::Record { id: 1 };
        let b = Criterion::Record { id: 2 };
        let (_, cached) = cache.get_or_build(D, a, 0, || outcome(1));
        assert!(!cached, "cold key builds");
        let (_, cached) = cache.get_or_build(D, b, 0, || outcome(2));
        assert!(!cached, "different criterion is a different slice pinball");
        let (_, cached) = cache.get_or_build(D, a, 9, || outcome(3));
        assert!(!cached, "different options relog differently");
        let (got, cached) = cache.get_or_build(D, a, 0, || outcome(4));
        assert!(cached);
        assert_eq!(got.digest, PinballDigest(1), "original outcome retained");
        assert_eq!(cache.stats().misses, 3);
    }
}
