//! The drserve front end: nonblocking transports over the sharded
//! [`Service`].
//!
//! The server is two layers. The [`Service`] (in [`crate::service`]) is
//! the whole protocol — sharded workers, admission control, batching — and
//! never touches a socket. This module is the I/O in front of it: a
//! nonblocking accept loop hands connections to a small pool of
//! *dispatcher* threads, each multiplexing many connections: it reads
//! whatever bytes arrived, carves complete request frames out with
//! [`proto::frame_extent`], submits them to the service (which routes each
//! to its shard), and writes replies back in request order as the shards
//! finish — so one slow slice on a connection never parks a thread, and a
//! pipelined client can have many requests in flight.
//!
//! Both transports — TCP ([`Server::listen`] / [`connect`]) and the
//! in-process loopback pipe ([`Server::loopback_client`] /
//! [`Server::loopback_connect`]) — feed the same dispatchers through the
//! `NonblockStream` trait, so tests and benchmarks exercise the real
//! multiplexing without sockets. [`Server::serve_stream`] remains a
//! blocking one-connection loop over the same service for callers that
//! bring their own thread.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};

use crate::client::Client;
use crate::loopback::{pipe, LoopbackStream};
use crate::proto::{
    self, RecvError, Request, Response, ServeError, ServeStats, REQUEST_KIND, RESPONSE_KIND,
};
use crate::service::{Reply, Service};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum live debug sessions *per shard* (pool capacity).
    pub max_sessions: usize,
    /// Idle time after which a session may be reclaimed.
    pub idle_timeout: Duration,
    /// Maximum cached slices per shard.
    pub cache_capacity: usize,
    /// Maximum cached dependence indexes per shard (one per pinball digest
    /// and options fingerprint; each costs memory proportional to the
    /// trace).
    pub index_cache_capacity: usize,
    /// Maximum cached relog outcomes per shard (one per pinball digest,
    /// criterion, and options fingerprint; the slice pinballs themselves
    /// live in the content-addressed store).
    pub relog_cache_capacity: usize,
    /// Base back-off hint attached to [`ServeError::Busy`] rejections; the
    /// admission controller scales it up to 5× with queue depth
    /// ([`crate::service::retry_hint`]).
    pub retry_after_ms: u64,
    /// Worker shards, each with its own session pool, caches, and metrics.
    /// `0` (the default) sizes to the machine: one per CPU, capped at 8.
    pub shards: usize,
    /// Dispatcher threads multiplexing connection I/O. `0` (the default)
    /// sizes to the machine.
    pub dispatchers: usize,
    /// Per-shard queue bound: admitted-but-unfinished requests beyond this
    /// are load-shed with [`ServeError::Busy`] instead of queueing.
    pub queue_capacity: usize,
    /// Most requests one worker wakeup drains. Requests batched together
    /// share one `Stats` rollup and one encoded response frame.
    pub batch_max: usize,
    /// Seed peer addresses for fleet membership. Non-empty peers enable
    /// cluster mode at [`Server::listen`] time: the node gossips with the
    /// seeds, learns the full peer map, and joins the consistent-hash
    /// ring over pinball digests.
    pub peers: Vec<String>,
    /// The address this node advertises to the fleet (what its ring
    /// points hash from). `None` uses the actual bound address — fine on
    /// one host; set it explicitly behind NAT or when binding `0.0.0.0`.
    pub advertise: Option<String>,
    /// Forces cluster mode on even with no seeds — the bootstrap node of
    /// a fresh fleet, which has nobody to gossip with until peers dial in.
    pub cluster: bool,
    /// Virtual nodes per member on the consistent-hash ring. More points
    /// flatten the keyspace imbalance (≈ `1/N + O(1/√(NV))`) at a small
    /// ring-build cost.
    pub virtual_nodes: usize,
    /// Anti-entropy period: how often the gossip thread bumps its
    /// heartbeat and exchanges views with one peer.
    pub gossip_interval: Duration,
    /// Liveness timeout: a peer whose heartbeat makes no progress for
    /// this long is marked dead (transport failures mark it dead sooner).
    pub peer_fail_after: Duration,
    /// Connect timeout for pooled peer connections.
    pub peer_connect_timeout: Duration,
    /// Read/write timeout for one forwarded peer operation (a cold slice
    /// at the owner can legitimately take a while).
    pub peer_op_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_sessions: 8,
            idle_timeout: Duration::from_secs(300),
            cache_capacity: 256,
            index_cache_capacity: 32,
            relog_cache_capacity: 32,
            retry_after_ms: 50,
            shards: 0,
            dispatchers: 0,
            queue_capacity: 512,
            batch_max: 32,
            peers: Vec::new(),
            advertise: None,
            cluster: false,
            virtual_nodes: 64,
            gossip_interval: Duration::from_millis(500),
            peer_fail_after: Duration::from_millis(2500),
            peer_connect_timeout: Duration::from_secs(1),
            peer_op_timeout: Duration::from_secs(10),
        }
    }
}

/// A byte stream the dispatcher can poll without blocking. Both real
/// sockets and the in-process loopback pipe qualify.
trait NonblockStream: Read + Write + Send {
    /// Switches the stream between blocking and nonblocking reads.
    fn set_nonblocking_mode(&self, nonblocking: bool) -> io::Result<()>;
}

impl NonblockStream for TcpStream {
    fn set_nonblocking_mode(&self, nonblocking: bool) -> io::Result<()> {
        TcpStream::set_nonblocking(self, nonblocking)
    }
}

impl NonblockStream for LoopbackStream {
    fn set_nonblocking_mode(&self, nonblocking: bool) -> io::Result<()> {
        LoopbackStream::set_nonblocking(self, nonblocking)
    }
}

/// A reply slot in a connection's in-order response queue.
// One slot per pipelined request; boxing the ready response to shrink
// the enum would cost an allocation on the shed/malformed path.
#[allow(clippy::large_enum_variant)]
enum Pending {
    /// Answered at submit time (admission shed, malformed frame).
    Ready(Response),
    /// In flight on a worker shard.
    Wait(Receiver<Reply>),
}

/// One multiplexed connection: buffered reads, buffered writes, and the
/// in-order queue of outstanding replies. Replies are written strictly in
/// request order even though shards finish out of order.
struct Conn {
    stream: Box<dyn NonblockStream>,
    rd: Vec<u8>,
    wr: Vec<u8>,
    /// Bytes of `wr` already flushed to the stream.
    wr_at: usize,
    pending: VecDeque<Pending>,
    /// Stop reading (peer EOF or framing desync); drop the connection once
    /// every pending reply has been written out.
    closing: bool,
}

impl Conn {
    fn new(stream: Box<dyn NonblockStream>) -> Conn {
        Conn {
            stream,
            rd: Vec::new(),
            wr: Vec::new(),
            wr_at: 0,
            pending: VecDeque::new(),
            closing: false,
        }
    }

    /// One poll round: harvest finished replies, flush, read, decode,
    /// submit. Returns `false` when the connection should be dropped;
    /// sets `progress` when any byte or reply moved.
    fn poll(&mut self, service: &Service, scratch: &mut [u8], progress: &mut bool) -> bool {
        // Move completed replies — strictly from the front, preserving
        // request order — into the write buffer.
        loop {
            match self.pending.front_mut() {
                Some(Pending::Ready(_)) => {
                    let Some(Pending::Ready(response)) = self.pending.pop_front() else {
                        unreachable!("front was Ready");
                    };
                    let _ = proto::write_message(&mut self.wr, RESPONSE_KIND, &response);
                    *progress = true;
                }
                Some(Pending::Wait(rx)) => match rx.try_recv() {
                    Ok(Reply::Response(response)) => {
                        self.pending.pop_front();
                        let _ = proto::write_message(&mut self.wr, RESPONSE_KIND, &response);
                        *progress = true;
                    }
                    Ok(Reply::Frame(frame)) => {
                        self.pending.pop_front();
                        self.wr.extend_from_slice(&frame);
                        *progress = true;
                    }
                    Err(TryRecvError::Empty) => break,
                    // Worker gone mid-request: service shutdown.
                    Err(TryRecvError::Disconnected) => return false,
                },
                None => break,
            }
        }
        // Flush as much of the write buffer as the stream accepts.
        while self.wr_at < self.wr.len() {
            match self.stream.write(&self.wr[self.wr_at..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.wr_at += n;
                    *progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.wr_at == self.wr.len() && self.wr_at > 0 {
            self.wr.clear();
            self.wr_at = 0;
        }
        if self.closing {
            // Linger only until every reply is out.
            return !(self.pending.is_empty() && self.wr.is_empty());
        }
        // Read whatever arrived.
        loop {
            match self.stream.read(scratch) {
                // EOF: answer what is already in flight, then drop.
                Ok(0) => {
                    self.closing = true;
                    break;
                }
                Ok(n) => {
                    self.rd.extend_from_slice(&scratch[..n]);
                    *progress = true;
                    if n < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        // Carve out and submit every complete frame — a pipelining client
        // gets all of them in flight across the shards at once.
        let mut consumed = 0;
        loop {
            match proto::try_decode::<Request>(&self.rd[consumed..], REQUEST_KIND) {
                Ok(None) => break,
                Ok(Some((request, used))) => {
                    consumed += used;
                    *progress = true;
                    match service.submit(request, true) {
                        Ok(rx) => self.pending.push_back(Pending::Wait(rx)),
                        // Shed at admission: the typed Busy goes out in
                        // order like any other reply.
                        Err(e) => self.pending.push_back(Pending::Ready(Response::Error(e))),
                    }
                }
                Err(RecvError::Frame { reason }) | Err(RecvError::Io(reason)) => {
                    // Framing is out of sync: answer, flush, disconnect.
                    service.observe_malformed();
                    self.pending.push_back(Pending::Ready(Response::Error(
                        ServeError::Malformed { reason },
                    )));
                    self.closing = true;
                    self.rd.clear();
                    consumed = 0;
                    *progress = true;
                    break;
                }
                Err(RecvError::Disconnected) => {
                    self.closing = true;
                    break;
                }
            }
        }
        if consumed > 0 {
            self.rd.drain(..consumed);
        }
        true
    }
}

/// The dispatcher pool: D threads, each polling its own set of
/// connections. New connections are dealt round-robin.
struct DispatchPool {
    txs: Vec<Sender<Box<dyn NonblockStream>>>,
    rr: AtomicUsize,
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl DispatchPool {
    fn new(service: Service, dispatchers: usize) -> DispatchPool {
        let stop = Arc::new(AtomicBool::new(false));
        let mut txs = Vec::with_capacity(dispatchers);
        let mut threads = Vec::with_capacity(dispatchers);
        for _ in 0..dispatchers {
            let (tx, rx) = unbounded::<Box<dyn NonblockStream>>();
            txs.push(tx);
            let service = service.clone();
            let stop = Arc::clone(&stop);
            threads.push(thread::spawn(move || dispatcher_loop(&service, &rx, &stop)));
        }
        DispatchPool {
            txs,
            rr: AtomicUsize::new(0),
            stop,
            threads: Mutex::new(threads),
        }
    }

    /// Assigns a connection to a dispatcher.
    fn register(&self, stream: Box<dyn NonblockStream>) {
        let ix = self.rr.fetch_add(1, Ordering::Relaxed) % self.txs.len();
        let _ = self.txs[ix].send(stream);
    }
}

impl Drop for DispatchPool {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.txs.clear();
        for handle in self
            .threads
            .lock()
            .expect("dispatch handles lock")
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

/// One dispatcher thread: accept handed-off connections, poll them all,
/// back off briefly when nothing moves.
fn dispatcher_loop(
    service: &Service,
    incoming: &Receiver<Box<dyn NonblockStream>>,
    stop: &AtomicBool,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    // Spin-then-sleep idle ladder: a handful of yields keeps single-client
    // round-trip latency low (the reply is usually ready within
    // microseconds); persistent idleness drops to a short sleep so an idle
    // server costs ~no CPU.
    let mut idle_rounds = 0u32;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        loop {
            match incoming.try_recv() {
                Ok(stream) => {
                    let _ = stream.set_nonblocking_mode(true);
                    conns.push(Conn::new(stream));
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    if conns.is_empty() {
                        return;
                    }
                    break;
                }
            }
        }
        let mut progress = false;
        conns.retain_mut(|conn| conn.poll(service, &mut scratch, &mut progress));
        if progress {
            idle_rounds = 0;
        } else {
            idle_rounds = idle_rounds.saturating_add(1);
            if idle_rounds < 64 {
                thread::yield_now();
            } else {
                thread::sleep(Duration::from_micros(100));
            }
        }
    }
}

/// A replay-and-slice server: the sharded [`Service`] plus its dispatcher
/// pool. Cheap to clone; all clones share state.
///
/// Field order is load-bearing for shutdown: dispatchers drop (and join)
/// first, releasing their `Service` clones, then the service's own drop
/// joins the worker shards.
#[derive(Clone)]
pub struct Server {
    dispatch: Arc<DispatchPool>,
    service: Service,
}

impl Server {
    /// Creates a server with the given tuning: one worker thread per
    /// shard, plus the dispatcher pool.
    pub fn new(config: ServeConfig) -> Server {
        let dispatchers = if config.dispatchers > 0 {
            config.dispatchers
        } else {
            (thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                / 2)
            .clamp(1, 4)
        };
        let service = Service::new(config);
        let dispatch = Arc::new(DispatchPool::new(service.clone(), dispatchers));
        Server { dispatch, service }
    }

    /// The sharded service behind this server.
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Handles one request on the calling thread's behalf — submitted to
    /// the owning shard like any other request, blocking until the worker
    /// answers. Never panics on bad input: every failure (including an
    /// admission shed) is a typed [`Response::Error`].
    pub fn handle(&self, request: Request) -> Response {
        self.service.call(request)
    }

    /// Current metrics snapshot (also served as [`Response::Stats`]):
    /// the cross-shard rollup with the per-shard breakdown attached.
    pub fn stats(&self) -> ServeStats {
        self.service.stats()
    }

    /// Serves one connection on the calling thread until the peer
    /// disconnects, the stream fails, or a malformed frame forces a close.
    /// Frame errors are answered with [`ServeError::Malformed`] and then
    /// the connection is dropped, because framing may be out of sync.
    pub fn serve_stream<S: Read + Write>(&self, mut stream: S) {
        loop {
            match proto::read_message::<S, Request>(&mut stream, REQUEST_KIND) {
                Ok(request) => {
                    let done = match self.service.submit(request, true) {
                        Ok(rx) => match rx.recv() {
                            Ok(Reply::Frame(frame)) => stream
                                .write_all(&frame)
                                .and_then(|()| stream.flush())
                                .is_err(),
                            Ok(Reply::Response(response)) => {
                                proto::write_message(&mut stream, RESPONSE_KIND, &response).is_err()
                            }
                            Err(_) => true, // service shut down
                        },
                        Err(e) => {
                            proto::write_message(&mut stream, RESPONSE_KIND, &Response::Error(e))
                                .is_err()
                        }
                    };
                    if done {
                        return;
                    }
                }
                Err(RecvError::Disconnected) | Err(RecvError::Io(_)) => return,
                Err(RecvError::Frame { reason }) => {
                    self.service.observe_malformed();
                    let response = Response::Error(ServeError::Malformed { reason });
                    let _ = proto::write_message(&mut stream, RESPONSE_KIND, &response);
                    return;
                }
            }
        }
    }

    /// Binds a TCP listener and serves connections through the dispatcher
    /// pool until [`ServerHandle::shutdown`]. The accept loop is
    /// nonblocking; accepted sockets are multiplexed, not given threads.
    ///
    /// When the config names seed [`ServeConfig::peers`], an
    /// [`ServeConfig::advertise`] address, or sets
    /// [`ServeConfig::cluster`], the node joins the fleet here: the
    /// advertise address defaults to the bound one, and the gossip thread
    /// starts alongside the accept loop.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn listen<A: ToSocketAddrs>(&self, addr: A) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let config = self.service.config();
        if config.cluster || !config.peers.is_empty() || config.advertise.is_some() {
            let advertise = config
                .advertise
                .clone()
                .unwrap_or_else(|| local_addr.to_string());
            let seeds = config.peers.clone();
            self.service.enable_cluster(advertise, seeds);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let dispatch = Arc::clone(&self.dispatch);
        let accept = thread::spawn(move || {
            while !accept_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((socket, _peer)) => {
                        let _ = socket.set_nodelay(true);
                        dispatch.register(Box::new(socket));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(ServerHandle {
            addr: local_addr,
            stop,
            accept: Some(accept),
        })
    }

    /// Opens a raw in-process connection to this server: the returned
    /// stream speaks the full wire protocol against the dispatcher pool.
    /// Unlike [`Server::loopback_client`] there is no typed client in the
    /// way, so callers can pipeline many request frames before reading
    /// replies — the saturation benchmark's load generator.
    pub fn loopback_connect(&self) -> LoopbackStream {
        let (client_end, server_end) = pipe();
        self.dispatch.register(Box::new(server_end));
        client_end
    }

    /// Connects a [`Client`] to this server through an in-process pipe —
    /// the full wire protocol, multiplexed by the dispatcher pool exactly
    /// like a TCP connection.
    pub fn loopback_client(&self) -> Client<LoopbackStream> {
        Client::new(self.loopback_connect())
    }
}

/// A running TCP front end. Dropping the handle shuts the listener down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept thread. Connections already
    /// handed to the dispatchers keep being served until the server
    /// itself drops.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Connects a TCP [`Client`] to a listening server.
///
/// # Errors
///
/// Returns the connect error if the server is unreachable.
pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client<TcpStream>> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    Ok(Client::new(stream))
}
