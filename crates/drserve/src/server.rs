//! The drserve server: transport-free request handling plus the TCP and
//! loopback front ends.
//!
//! [`Server::handle`] is the whole protocol — one `Request` in, one
//! `Response` out, no I/O — so the same code path serves TCP sockets,
//! in-process loopback pipes, and direct unit tests. The transports are
//! thin: [`Server::serve_stream`] frames requests off any `Read + Write`,
//! [`Server::listen`] accepts TCP connections onto per-connection
//! threads, and [`Server::loopback_client`] wires a [`Client`] to the
//! server through an in-memory pipe.
//!
//! Shared state is one `Arc`: the pinball store (content-addressed by
//! [`PinballDigest`]), the session pool, the slice cache, and the
//! metrics. Cloning a `Server` clones the handle, not the state.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use minivm::Program;
use pinplay::{PinballContainer, PinballDigest};
use slicer::Criterion;

use crate::cache::{IndexCache, RelogCache, RelogOutcome, SliceCache};
use crate::client::Client;
use crate::loopback::{pipe, LoopbackStream};
use crate::metrics::ServeMetrics;
use crate::pool::SessionManager;
use crate::proto::{
    self, RecvError, Request, Response, ServeError, ServeStats, SliceAt, WireSlice, REQUEST_KIND,
    RESPONSE_KIND,
};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum live debug sessions (pool capacity).
    pub max_sessions: usize,
    /// Idle time after which a session may be reclaimed.
    pub idle_timeout: Duration,
    /// Maximum cached slices.
    pub cache_capacity: usize,
    /// Maximum cached dependence indexes (one per pinball digest and
    /// options fingerprint; each costs memory proportional to the trace).
    pub index_cache_capacity: usize,
    /// Maximum cached relog outcomes (one per pinball digest, criterion,
    /// and options fingerprint; the slice pinballs themselves live in the
    /// content-addressed store).
    pub relog_cache_capacity: usize,
    /// Back-off hint attached to [`ServeError::Busy`] rejections.
    pub retry_after_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_sessions: 8,
            idle_timeout: Duration::from_secs(300),
            cache_capacity: 256,
            index_cache_capacity: 32,
            relog_cache_capacity: 32,
            retry_after_ms: 50,
        }
    }
}

/// One uploaded pinball: the program it replays plus the parsed container.
struct Stored {
    program: Arc<Program>,
    container: PinballContainer,
}

struct ServerState {
    store: Mutex<HashMap<PinballDigest, Stored>>,
    pool: SessionManager,
    cache: SliceCache,
    index_cache: IndexCache,
    relog_cache: RelogCache,
    metrics: ServeMetrics,
}

/// A replay-and-slice server. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Server {
    state: Arc<ServerState>,
}

impl Server {
    /// Creates a server with the given tuning.
    pub fn new(config: ServeConfig) -> Server {
        Server {
            state: Arc::new(ServerState {
                store: Mutex::new(HashMap::new()),
                pool: SessionManager::new(
                    config.max_sessions,
                    config.idle_timeout,
                    config.retry_after_ms,
                ),
                cache: SliceCache::new(config.cache_capacity),
                index_cache: IndexCache::new(config.index_cache_capacity),
                relog_cache: RelogCache::new(config.relog_cache_capacity),
                metrics: ServeMetrics::new(),
            }),
        }
    }

    /// Handles one request. Never panics on bad input: every failure is a
    /// typed [`Response::Error`].
    pub fn handle(&self, request: Request) -> Response {
        let op = request.op();
        let started = Instant::now();
        let response = self.dispatch(request);
        self.state.metrics.observe(
            op,
            started.elapsed(),
            matches!(response, Response::Error(_)),
        );
        response
    }

    fn dispatch(&self, request: Request) -> Response {
        match self.try_dispatch(request) {
            Ok(response) => response,
            Err(e) => Response::Error(e),
        }
    }

    fn try_dispatch(&self, request: Request) -> Result<Response, ServeError> {
        match request {
            Request::UploadPinball { program, container } => {
                let container = PinballContainer::from_bytes(&container)?;
                let digest = container.digest();
                let instructions = container.pinball.logged_instructions();
                let mut store = self.state.store.lock().expect("store lock");
                let deduped = store.contains_key(&digest);
                if !deduped {
                    store.insert(
                        digest,
                        Stored {
                            program: Arc::new(program),
                            container,
                        },
                    );
                }
                Ok(Response::Uploaded {
                    digest,
                    instructions,
                    deduped,
                })
            }
            Request::OpenSession { digest } => {
                // Clone what the session needs while holding the store
                // lock, then build it outside.
                let (program, container) = {
                    let store = self.state.store.lock().expect("store lock");
                    let stored = store
                        .get(&digest)
                        .ok_or(ServeError::UnknownPinball { digest })?;
                    (Arc::clone(&stored.program), stored.container.clone())
                };
                let session = self.state.pool.open(digest, move || {
                    drdebug::DebugSession::with_container(program, container)
                })?;
                Ok(Response::SessionOpened { session })
            }
            Request::Break { session, pc, tid } => {
                let (slot, _) = self.state.pool.checkout(session)?;
                let id = slot.lock().expect("session lock").add_breakpoint(pc, tid);
                Ok(Response::BreakpointSet { id })
            }
            Request::Run { session } => {
                let (slot, _) = self.state.pool.checkout(session)?;
                let mut guard = slot.lock().expect("session lock");
                let reason = guard.cont();
                Ok(Response::Stopped {
                    reason: reason.into(),
                    position: guard.position(),
                })
            }
            Request::Seek { session, target } => {
                let (slot, _) = self.state.pool.checkout(session)?;
                let mut guard = slot.lock().expect("session lock");
                let reason = guard.seek_to(target);
                Ok(Response::Stopped {
                    reason: reason.into(),
                    position: guard.position(),
                })
            }
            Request::ComputeSlice {
                session,
                at,
                options,
            } => {
                let started = Instant::now();
                let (slot, digest) = self.state.pool.checkout(session)?;
                let criterion = resolve_criterion(&slot, at)?;
                let fingerprint = options.fingerprint();
                if let Some(hit) = self.state.cache.get(digest, criterion, fingerprint) {
                    return Ok(Response::Slice {
                        slice: (*hit).clone(),
                        cached: true,
                        micros: started.elapsed().as_micros() as u64,
                    });
                }
                // One dependence index answers every criterion on this
                // pinball under these options: fetch it from the shared
                // cache (building at most once, even under concurrency)
                // and install it into the session so the traversal below
                // runs warm.
                let index = self
                    .state
                    .index_cache
                    .get_or_build(digest, fingerprint, || {
                        slot.lock().expect("session lock").dep_index_for(&options)
                    });
                let slice = {
                    let mut guard = slot.lock().expect("session lock");
                    guard.install_dep_index(fingerprint, index);
                    guard.slice_criterion(criterion, options)
                };
                let wire = Arc::new(WireSlice::from_slice(&slice));
                self.state
                    .cache
                    .insert(digest, criterion, fingerprint, Arc::clone(&wire));
                Ok(Response::Slice {
                    slice: (*wire).clone(),
                    cached: false,
                    micros: started.elapsed().as_micros() as u64,
                })
            }
            Request::Relog {
                session,
                at,
                options,
            } => {
                let started = Instant::now();
                let (slot, digest) = self.state.pool.checkout(session)?;
                let criterion = resolve_criterion(&slot, at)?;
                let fingerprint = options.fingerprint();
                let (outcome, cached) =
                    self.state
                        .relog_cache
                        .get_or_build(digest, criterion, fingerprint, || {
                            // Resolve the dependence index through the
                            // shared cache (one build per pinball and
                            // options), relog under the session lock, then
                            // publish the slice pinball into the
                            // content-addressed store so it is open-able,
                            // fetchable, and sliceable like any upload.
                            let index =
                                self.state
                                    .index_cache
                                    .get_or_build(digest, fingerprint, || {
                                        slot.lock().expect("session lock").dep_index_for(&options)
                                    });
                            let (container, report) = {
                                let mut guard = slot.lock().expect("session lock");
                                guard.install_dep_index(fingerprint, index);
                                guard.relog_criterion(criterion, options)
                            };
                            let slice_digest = container.digest();
                            let bytes = container.to_bytes().map(|b| b.len() as u64).unwrap_or(0);
                            let mut store = self.state.store.lock().expect("store lock");
                            if let Some(program) =
                                store.get(&digest).map(|s| Arc::clone(&s.program))
                            {
                                store
                                    .entry(slice_digest)
                                    .or_insert(Stored { program, container });
                            }
                            Arc::new(RelogOutcome {
                                digest: slice_digest,
                                report,
                                bytes,
                            })
                        });
                Ok(Response::Relogged {
                    digest: outcome.digest,
                    instructions: outcome.report.instructions,
                    kept: outcome.report.kept,
                    excluded: outcome.report.excluded,
                    cached,
                    micros: started.elapsed().as_micros() as u64,
                })
            }
            Request::FetchPinball { digest } => {
                let container = {
                    let store = self.state.store.lock().expect("store lock");
                    let stored = store
                        .get(&digest)
                        .ok_or(ServeError::UnknownPinball { digest })?;
                    stored.container.clone()
                };
                let bytes = container.to_bytes()?;
                Ok(Response::PinballData {
                    digest,
                    container: bytes,
                })
            }
            Request::Stats => Ok(Response::Stats(self.stats())),
            Request::CloseSession { session } => {
                self.state.pool.close(session)?;
                Ok(Response::Closed { session })
            }
        }
    }

    /// Current metrics snapshot (also served as [`Response::Stats`]).
    pub fn stats(&self) -> ServeStats {
        let mut stats = self.state.metrics.snapshot();
        stats.cache = self.state.cache.stats();
        stats.index_cache = self.state.index_cache.stats();
        stats.relog_cache = self.state.relog_cache.stats();
        stats.sessions = self.state.pool.stats();
        stats.pinballs = self.state.store.lock().expect("store lock").len() as u64;
        stats
    }

    /// Serves one connection until the peer disconnects, the stream
    /// fails, or a malformed frame forces a close. Frame errors are
    /// answered with [`ServeError::Malformed`] and then the connection is
    /// dropped, because framing may be out of sync.
    pub fn serve_stream<S: Read + Write>(&self, mut stream: S) {
        loop {
            match proto::read_message::<S, Request>(&mut stream, REQUEST_KIND) {
                Ok(request) => {
                    let response = self.handle(request);
                    if proto::write_message(&mut stream, RESPONSE_KIND, &response).is_err() {
                        return;
                    }
                }
                Err(RecvError::Disconnected) | Err(RecvError::Io(_)) => return,
                Err(RecvError::Frame { reason }) => {
                    self.state
                        .metrics
                        .observe("malformed", Duration::ZERO, true);
                    let response = Response::Error(ServeError::Malformed { reason });
                    let _ = proto::write_message(&mut stream, RESPONSE_KIND, &response);
                    return;
                }
            }
        }
    }

    /// Binds a TCP listener and serves connections on background threads
    /// until [`ServerHandle::shutdown`].
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn listen<A: ToSocketAddrs>(&self, addr: A) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let server = self.clone();
        let accept = thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !accept_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((socket, _peer)) => {
                        let _ = socket.set_nodelay(true);
                        let server = server.clone();
                        conns.push(thread::spawn(move || {
                            // Blocking per-connection I/O; the accept
                            // socket's non-blocking flag is not inherited
                            // as semantics we rely on, so reset it.
                            let _ = socket.set_nonblocking(false);
                            server.serve_stream(socket);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
                conns.retain(|h| !h.is_finished());
            }
            for conn in conns {
                let _ = conn.join();
            }
        });
        Ok(ServerHandle {
            addr: local_addr,
            stop,
            accept: Some(accept),
        })
    }

    /// Connects a [`Client`] to this server through an in-process pipe —
    /// the full wire protocol with no sockets. The serving thread exits
    /// when the client is dropped.
    pub fn loopback_client(&self) -> Client<LoopbackStream> {
        let (client_end, server_end) = pipe();
        let server = self.clone();
        thread::spawn(move || server.serve_stream(server_end));
        Client::new(client_end)
    }
}

/// Resolves where a slice anchors into a concrete [`Criterion`].
fn resolve_criterion(
    slot: &Arc<Mutex<drdebug::DebugSession>>,
    at: SliceAt,
) -> Result<Criterion, ServeError> {
    match at {
        SliceAt::Criterion { criterion } => Ok(criterion),
        SliceAt::Failure => {
            let mut guard = slot.lock().expect("session lock");
            let id =
                guard
                    .slicer()
                    .failure_record()
                    .map(|r| r.id)
                    .ok_or(ServeError::BadRequest {
                        reason: "trace is empty; nothing to slice".to_string(),
                    })?;
            Ok(Criterion::Record { id })
        }
        SliceAt::Here { key } => {
            let mut guard = slot.lock().expect("session lock");
            let id = guard.record_at_stop().ok_or(ServeError::BadRequest {
                reason: "session is not stopped at a sliceable record".to_string(),
            })?;
            Ok(match key {
                Some(key) => Criterion::Value { id, key },
                None => Criterion::Record { id },
            })
        }
    }
}

/// A running TCP front end. Dropping the handle shuts the listener down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits for in-flight connections, joins the
    /// accept thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Connects a TCP [`Client`] to a listening server.
///
/// # Errors
///
/// Returns the connect error if the server is unreachable.
pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client<TcpStream>> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    Ok(Client::new(stream))
}
