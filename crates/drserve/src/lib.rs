//! drserve: a concurrent replay-and-slice server over DrDebug pinballs.
//!
//! The DrDebug workflow (Wang et al., CGO 2014) is *cyclic*: a developer
//! replays the same recorded region over and over, each iteration setting
//! breakpoints, seeking, and asking for dynamic slices. drserve turns
//! that loop into a service so many clients — interactive debuggers, CI
//! triage jobs, bisection scripts — share one server that holds the
//! expensive state:
//!
//! - **Pinball store** — uploads are content-addressed by
//!   [`PinballDigest`](pinplay::PinballDigest) (a fold over the
//!   container's chunk CRCs), so ten clients uploading the same recording
//!   store it once.
//! - **Sharded execution** ([`service::Service`]) — requests execute on N
//!   shared-nothing worker shards routed by pinball digest (session ids
//!   encode their home shard), behind bounded queues with queue-depth
//!   admission control: overload answers [`ServeError::Busy`] with a
//!   backlog-scaled retry hint ([`retry_hint`]) instead of queueing
//!   without bound, and batched `Stats` requests share one rollup and
//!   one encoded frame per batch.
//! - **Session pool** ([`pool::SessionManager`]) — live
//!   [`drdebug::DebugSession`]s are pooled *per shard* with LRU
//!   eviction, idle expiry, and a hard cap: when every slot is
//!   mid-request the server answers [`ServeError::Busy`] with a retry
//!   hint instead of queueing forever.
//! - **Slice cache** ([`cache::SliceCache`]) — slices are cached by
//!   (pinball digest, criterion, options fingerprint), so the second
//!   debug iteration that asks "why is this value wrong" gets its answer
//!   without re-collecting the trace. Entries are canonical
//!   ([`WireSlice`]): byte-identical to a local computation.
//! - **Index cache** ([`cache::IndexCache`]) — dependence indexes
//!   ([`slicer::DepIndex`]) are cached by (pinball digest, options
//!   fingerprint) with single-flight builds, so *distinct* criteria on
//!   one pinball — which all miss the slice cache — still share a single
//!   index build and answer in time proportional to the slice.
//! - **Wire protocol** ([`proto`]) — length-prefixed, CRC-checked frames
//!   reusing the pinball container's own [`pinzip::frame`] encoding.
//!   Malformed input yields a typed error or a clean disconnect, never a
//!   panic.
//!
//! Transports are interchangeable: nonblocking TCP ([`Server::listen`]
//! / [`connect`]) and an in-process loopback pipe
//! ([`Server::loopback_client`]) are multiplexed onto the same
//! dispatcher threads, so tests and benchmarks exercise the real
//! framing, routing, and admission path without sockets. Clients may
//! pipeline: replies always arrive in request order.
//!
//! ```
//! use drserve::{Server, ServeConfig, SliceAt};
//! use minivm::{assemble, LiveEnv, RoundRobin};
//! use pinplay::record_whole_program;
//! use slicer::SliceOptions;
//! use std::sync::Arc;
//!
//! let program = Arc::new(assemble(r"
//!     .text
//!     .func main
//!         movi r1, 2
//!         addi r1, r1, 3
//!         halt
//!     .endfunc
//! ").unwrap());
//! let rec = record_whole_program(
//!     &program, &mut RoundRobin::new(8), &mut LiveEnv::new(0), 10_000, "doc",
//! ).unwrap();
//!
//! let server = Server::new(ServeConfig::default());
//! let mut client = server.loopback_client();
//! let up = client.upload(&program, &rec.pinball).unwrap();
//! let session = client.open(up.digest).unwrap();
//! let reply = client
//!     .compute_slice(session, SliceAt::Failure, SliceOptions::default())
//!     .unwrap();
//! assert!(!reply.cached && !reply.slice.is_empty());
//! let again = client
//!     .compute_slice(session, SliceAt::Failure, SliceOptions::default())
//!     .unwrap();
//! assert!(again.cached, "second identical request hits the cache");
//! assert_eq!(again.slice.canonical_bytes(), reply.slice.canonical_bytes());
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod cluster;
pub mod loopback;
pub mod metrics;
pub mod pool;
pub mod proto;
pub mod server;
pub mod service;
pub mod store;

pub use cache::RelogOutcome;
pub use client::{
    Client, ClientError, PeerMapReply, RelogReply, RetryPolicy, SliceReply, StreamAck, TailReply,
    Uploaded, WireStats,
};
pub use cluster::{FleetClient, FleetSession, HashRing};
pub use loopback::{pipe, LoopbackStream};
pub use proto::{
    CacheStats, ClusterStats, NodeInfo, OpStats, RecvError, Request, Response, ServeError,
    ServeStats, SessionId, SessionStats, ShardStats, SliceAt, WireBreakpoint, WireSlice, WireStop,
    MAX_MESSAGE, REQUEST_KIND, RESPONSE_KIND,
};
pub use server::{connect, ServeConfig, Server, ServerHandle};
pub use service::{retry_hint, Service};
pub use store::PinballStore;
