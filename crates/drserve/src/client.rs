//! Typed client for the drserve wire protocol.
//!
//! [`Client`] wraps any `Read + Write` stream — a `TcpStream` from
//! [`crate::connect`] or a loopback pipe from
//! [`crate::Server::loopback_client`] — and exposes one method per
//! request. Each method writes a single request frame, reads a single
//! response frame, and converts protocol-level [`ServeError`]s and
//! unexpected response shapes into a typed [`ClientError`].

use std::fmt;
use std::io::{Read, Write};
use std::thread;
use std::time::Duration;

use minivm::{Pc, Program, Tid};
use pinplay::{Pinball, PinballContainer, PinballDigest, StreamWriter};
use slicer::{Criterion, SliceOptions};

use crate::proto::{
    self, NodeInfo, RecvError, Request, Response, ServeError, ServeStats, SessionId, SliceAt,
    WireBreakpoint, WireSlice, WireStop, REQUEST_KIND, RESPONSE_KIND,
};

/// Bounded retry-with-backoff for [`ServeError::Busy`] answers.
///
/// The protocol is strictly request/response and a `Busy` rejection means
/// the request was *never executed* (it was shed at admission or at the
/// session pool), so resending is always safe. The server's
/// `retry_after_ms` hint scales with the rejecting shard's backlog; the
/// client honors it, capped by `max_backoff_ms`, and gives up after
/// `attempts` retries — bounded pressure, never a retry storm.
///
/// The default policy is **no retries**: `Busy` surfaces as
/// [`ClientError::Server`] so callers that want to see backpressure
/// (tests, load generators) see it. Opt in with [`Client::set_retry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Resends after the first `Busy` answer (0 = surface immediately).
    pub attempts: u32,
    /// Upper bound on one backoff sleep, milliseconds (the server hint is
    /// clamped to this).
    pub max_backoff_ms: u64,
}

impl RetryPolicy {
    /// Never retry; surface `Busy` to the caller. The default.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 0,
            max_backoff_ms: 0,
        }
    }

    /// Retry up to `attempts` times, sleeping the server's hint clamped
    /// to `max_backoff_ms` between sends.
    pub fn new(attempts: u32, max_backoff_ms: u64) -> RetryPolicy {
        RetryPolicy {
            attempts,
            max_backoff_ms,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The stream failed or delivered an undecodable frame.
    Transport(RecvError),
    /// The server answered with a typed error.
    Server(ServeError),
    /// The server answered with a response that does not match the
    /// request (a protocol bug, not a user error).
    Protocol(String),
    /// The server is not the owner of the digest under the fleet's
    /// consistent-hash ring and answered [`Response::Redirect`]: resend
    /// the request to `addr`. [`crate::FleetClient`] follows these
    /// automatically.
    Redirected {
        /// The owning node's advertised address.
        addr: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::Redirected { addr } => write!(f, "redirected to owner {addr}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> ClientError {
        ClientError::Transport(e)
    }
}

/// Result of a successful upload.
#[derive(Debug, Clone, Copy)]
pub struct Uploaded {
    /// Content digest — the handle for [`Client::open`].
    pub digest: PinballDigest,
    /// Instructions the pinball's replay retires.
    pub instructions: u64,
    /// Whether the server already held an identical pinball.
    pub deduped: bool,
}

/// Absorption state of a streaming upload, as acknowledged by the server.
#[derive(Debug, Clone)]
pub struct StreamAck {
    /// The stream this describes.
    pub stream: u64,
    /// High-water mark: every chunk with `seq < next_seq` is absorbed.
    /// A resuming client resends from here.
    pub next_seq: u32,
    /// Out-of-order chunks buffered beyond a gap, ascending by seq.
    pub pending: Vec<u32>,
    /// Replay events decoded from the absorbed prefix.
    pub events: u64,
    /// A [`Client::begin_stream`] `expect_digest` matched a stored
    /// pinball: the body need not be sent.
    pub already_have: bool,
}

/// Live-tail progress of a stream another process is still writing.
#[derive(Debug, Clone, Copy)]
pub struct TailReply {
    /// The stream this describes.
    pub stream: u64,
    /// Contiguous chunks absorbed (the high-water mark).
    pub chunks: u32,
    /// Replay events decoded from the absorbed prefix.
    pub events: u64,
    /// Instructions the absorbed prefix retires when replayed.
    pub instructions: u64,
    /// Total events the sealed container will hold (0 before the header
    /// chunk arrives).
    pub expected_events: u64,
    /// Whether the stream has been sealed and published.
    pub sealed: bool,
    /// The published content digest, once sealed.
    pub digest: Option<PinballDigest>,
}

/// Result of a slice request.
#[derive(Debug, Clone)]
pub struct SliceReply {
    /// The slice in canonical wire form.
    pub slice: WireSlice,
    /// Whether the content-addressed cache served it.
    pub cached: bool,
    /// Server-side handling time, microseconds.
    pub micros: u64,
}

/// Result of a relog request: the slice pinball's identity and size.
#[derive(Debug, Clone, Copy)]
pub struct RelogReply {
    /// Content digest of the slice pinball — pass to [`Client::open`] to
    /// debug it or [`Client::fetch`] to download it.
    pub digest: PinballDigest,
    /// Instructions the slice pinball's replay retires.
    pub instructions: u64,
    /// Region instructions kept (slice statements + forced sync).
    pub kept: u64,
    /// Region instructions the relog excluded.
    pub excluded: u64,
    /// Whether the server's relog cache served it without rebuilding.
    pub cached: bool,
    /// Server-side handling time, microseconds.
    pub micros: u64,
}

/// A fleet node's peer map: its own advertised address, the ring's
/// virtual-node count, and everything it knows about its peers. The
/// inputs a digest-aware client needs to rebuild the owner ring locally.
#[derive(Debug, Clone)]
pub struct PeerMapReply {
    /// The answering node's advertised address.
    pub self_addr: String,
    /// Virtual nodes per member in the fleet's consistent-hash ring.
    pub virtual_nodes: u64,
    /// The answering node's view: itself first, then every known peer.
    pub nodes: Vec<NodeInfo>,
}

/// Wire-level counters of one client connection: how many exchanges ran
/// and how many encoded bytes crossed the stream in each direction
/// (frame headers included). Surfaced by [`Client::wire_stats`] so tools
/// can report what the binary wire codec actually costs per call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Request/response exchanges completed or attempted.
    pub requests: u64,
    /// Bytes written to the stream (request frames).
    pub bytes_sent: u64,
    /// Bytes read from the stream (response frames).
    pub bytes_received: u64,
    /// Exchanges resent after a [`ServeError::Busy`] answer under the
    /// client's [`RetryPolicy`].
    pub busy_retries: u64,
}

/// A `Read + Write` adapter that counts the bytes crossing it.
struct Counting<S> {
    inner: S,
    sent: u64,
    received: u64,
}

impl<S: Read> Read for Counting<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.received += n as u64;
        Ok(n)
    }
}

impl<S: Write> Write for Counting<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.sent += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A connected protocol client. One outstanding request at a time.
pub struct Client<S: Read + Write> {
    stream: Counting<S>,
    requests: u64,
    busy_retries: u64,
    retry: RetryPolicy,
}

impl<S: Read + Write> Client<S> {
    /// Wraps an already-connected stream.
    pub fn new(stream: S) -> Client<S> {
        Client {
            stream: Counting {
                inner: stream,
                sent: 0,
                received: 0,
            },
            requests: 0,
            busy_retries: 0,
            retry: RetryPolicy::none(),
        }
    }

    /// Sets how [`Client::call`] reacts to [`ServeError::Busy`] answers.
    pub fn set_retry(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Builder-style [`Client::set_retry`].
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Client<S> {
        self.retry = policy;
        self
    }

    /// Wire-level byte counters accumulated since the client connected.
    pub fn wire_stats(&self) -> WireStats {
        WireStats {
            requests: self.requests,
            bytes_sent: self.stream.sent,
            bytes_received: self.stream.received,
            busy_retries: self.busy_retries,
        }
    }

    /// One request/response exchange. A [`ServeError::Busy`] answer is
    /// resent under the client's [`RetryPolicy`] (default: never),
    /// sleeping the server's backlog-scaled hint between sends; resending
    /// is safe because a shed request was never executed.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] on stream failure.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut attempt = 0u32;
        loop {
            self.requests += 1;
            proto::write_message(&mut self.stream, REQUEST_KIND, request)
                .map_err(|e| ClientError::Transport(RecvError::Io(e.to_string())))?;
            let response: Response = proto::read_message(&mut self.stream, RESPONSE_KIND)?;
            if let Response::Error(ServeError::Busy { retry_after_ms }) = &response {
                if attempt < self.retry.attempts {
                    attempt += 1;
                    self.busy_retries += 1;
                    let backoff = (*retry_after_ms).min(self.retry.max_backoff_ms).max(1);
                    thread::sleep(Duration::from_millis(backoff));
                    continue;
                }
            }
            return Ok(response);
        }
    }

    /// Uploads serialized container bytes alongside the program they replay.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ServeError::Pinball`] when the
    /// container is damaged; transport errors as usual.
    pub fn upload_bytes(
        &mut self,
        program: &Program,
        container: Vec<u8>,
    ) -> Result<Uploaded, ClientError> {
        match self.call(&Request::UploadPinball {
            program: program.clone(),
            container,
        })? {
            Response::Uploaded {
                digest,
                instructions,
                deduped,
            } => Ok(Uploaded {
                digest,
                instructions,
                deduped,
            }),
            other => Err(unexpected("Uploaded", &other)),
        }
    }

    /// Convenience: wraps a pinball in a container (current format) and
    /// uploads it.
    ///
    /// # Errors
    ///
    /// As for [`Client::upload_bytes`]; serialization failures surface as
    /// [`ClientError::Protocol`].
    pub fn upload(
        &mut self,
        program: &Program,
        pinball: &Pinball,
    ) -> Result<Uploaded, ClientError> {
        let bytes = PinballContainer::new(pinball.clone())
            .to_bytes()
            .map_err(|e| ClientError::Protocol(format!("container encode: {e}")))?;
        self.upload_bytes(program, bytes)
    }

    /// Opens a pooled debug session over an uploaded pinball.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownPinball`] if the digest was never uploaded;
    /// [`ServeError::Busy`] under backpressure.
    pub fn open(&mut self, digest: PinballDigest) -> Result<SessionId, ClientError> {
        match self.call(&Request::OpenSession { digest })? {
            Response::SessionOpened { session } => Ok(session),
            other => Err(unexpected("SessionOpened", &other)),
        }
    }

    /// Sets a breakpoint, returning its id.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for a dead session handle.
    pub fn add_breakpoint(
        &mut self,
        session: SessionId,
        pc: Pc,
        tid: Option<Tid>,
    ) -> Result<u32, ClientError> {
        match self.call(&Request::Break { session, pc, tid })? {
            Response::BreakpointSet { id } => Ok(id),
            other => Err(unexpected("BreakpointSet", &other)),
        }
    }

    /// Continues replay to the next stop event.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for a dead session handle.
    pub fn run(&mut self, session: SessionId) -> Result<(WireStop, u64), ClientError> {
        match self.call(&Request::Run { session })? {
            Response::Stopped { reason, position } => Ok((reason, position)),
            other => Err(unexpected("Stopped", &other)),
        }
    }

    /// Seeks to the state after `target` retired instructions.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for a dead session handle.
    pub fn seek(
        &mut self,
        session: SessionId,
        target: u64,
    ) -> Result<(WireStop, u64), ClientError> {
        match self.call(&Request::Seek { session, target })? {
            Response::Stopped { reason, position } => Ok((reason, position)),
            other => Err(unexpected("Stopped", &other)),
        }
    }

    /// Computes (or fetches from the server's cache) a dynamic slice.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when `at` cannot be resolved (e.g.
    /// `Here` while not stopped); [`ServeError::UnknownSession`] for a
    /// dead session handle.
    pub fn compute_slice(
        &mut self,
        session: SessionId,
        at: SliceAt,
        options: SliceOptions,
    ) -> Result<SliceReply, ClientError> {
        match self.call(&Request::ComputeSlice {
            session,
            at,
            options,
        })? {
            Response::Slice {
                slice,
                cached,
                micros,
            } => Ok(SliceReply {
                slice,
                cached,
                micros,
            }),
            other => Err(unexpected("Slice", &other)),
        }
    }

    /// Relogs a dynamic slice into a server-stored *slice pinball* and
    /// returns its content digest. The result is cached server-side by
    /// (pinball, criterion, options), so repeating the request answers
    /// from the cache with the same digest.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when `at` cannot be resolved;
    /// [`ServeError::UnknownSession`] for a dead session handle.
    pub fn relog(
        &mut self,
        session: SessionId,
        at: SliceAt,
        options: SliceOptions,
    ) -> Result<RelogReply, ClientError> {
        match self.call(&Request::Relog {
            session,
            at,
            options,
        })? {
            Response::Relogged {
                digest,
                instructions,
                kept,
                excluded,
                cached,
                micros,
            } => Ok(RelogReply {
                digest,
                instructions,
                kept,
                excluded,
                cached,
                micros,
            }),
            other => Err(unexpected("Relogged", &other)),
        }
    }

    /// Downloads a stored pinball container (an upload or a relogged
    /// slice pinball) as serialized bytes, loadable with
    /// [`PinballContainer::from_bytes`].
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownPinball`] if the digest is not stored.
    pub fn fetch(&mut self, digest: PinballDigest) -> Result<Vec<u8>, ClientError> {
        match self.call(&Request::FetchPinball { digest })? {
            Response::PinballData { container, .. } => Ok(container),
            other => Err(unexpected("PinballData", &other)),
        }
    }

    /// Lists the breakpoints set in a session, ascending by id.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for a dead session handle.
    pub fn break_list(&mut self, session: SessionId) -> Result<Vec<WireBreakpoint>, ClientError> {
        match self.call(&Request::BreakList { session })? {
            Response::Breakpoints { breakpoints, .. } => Ok(breakpoints),
            other => Err(unexpected("Breakpoints", &other)),
        }
    }

    /// Fetches the server's metrics snapshot.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Closes a session, freeing its pool slot.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if it is already gone.
    pub fn close(&mut self, session: SessionId) -> Result<(), ClientError> {
        match self.call(&Request::CloseSession { session })? {
            Response::Closed { .. } => Ok(()),
            other => Err(unexpected("Closed", &other)),
        }
    }

    /// Asks whether the server already stores a pinball with `digest` —
    /// the digest-first dedupe probe a client sends before paying to
    /// transfer the body.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn probe(&mut self, digest: PinballDigest) -> Result<bool, ClientError> {
        match self.call(&Request::ProbePinball { digest })? {
            Response::Probed { known, .. } => Ok(known),
            other => Err(unexpected("Probed", &other)),
        }
    }

    /// Fetches the node's peer map — the fleet membership view a
    /// digest-aware client routes by. A standalone (non-fleet) node
    /// answers with an empty view.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn peer_map(&mut self) -> Result<PeerMapReply, ClientError> {
        expect_peer_view(self.call(&Request::PeerMap)?)
    }

    /// One anti-entropy exchange: offers `view` and returns the node's
    /// merged view. Used by the gossip thread; exposed for tools that
    /// want to inject membership (e.g. tests).
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn gossip(&mut self, view: Vec<NodeInfo>) -> Result<PeerMapReply, ClientError> {
        expect_peer_view(self.call(&Request::Gossip { view })?)
    }

    /// Peer-to-peer slice with a pre-resolved criterion, executed locally
    /// by the receiver (never re-forwarded). Used by non-owner nodes to
    /// forward to the digest's owner.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownPinball`] when the receiver does not store
    /// the digest (the forwarder then pushes the container and retries).
    pub fn peer_slice(
        &mut self,
        digest: PinballDigest,
        criterion: Criterion,
        options: SliceOptions,
    ) -> Result<SliceReply, ClientError> {
        match self.call(&Request::PeerSlice {
            digest,
            criterion,
            options,
        })? {
            Response::Slice {
                slice,
                cached,
                micros,
            } => Ok(SliceReply {
                slice,
                cached,
                micros,
            }),
            other => Err(unexpected("Slice", &other)),
        }
    }

    /// Peer-to-peer relog with a pre-resolved criterion, executed locally
    /// by the receiver (never re-forwarded).
    ///
    /// # Errors
    ///
    /// As for [`Client::peer_slice`].
    pub fn peer_relog(
        &mut self,
        digest: PinballDigest,
        criterion: Criterion,
        options: SliceOptions,
    ) -> Result<RelogReply, ClientError> {
        match self.call(&Request::PeerRelog {
            digest,
            criterion,
            options,
        })? {
            Response::Relogged {
                digest,
                instructions,
                kept,
                excluded,
                cached,
                micros,
            } => Ok(RelogReply {
                digest,
                instructions,
                kept,
                excluded,
                cached,
                micros,
            }),
            other => Err(unexpected("Relogged", &other)),
        }
    }

    /// Peer-to-peer store probe, answered from the receiver's local store
    /// only (never forwarded) — the transfer-dedupe check a node runs
    /// before pulling a container from a peer.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn peer_probe(&mut self, digest: PinballDigest) -> Result<bool, ClientError> {
        match self.call(&Request::PeerProbe { digest })? {
            Response::Probed { known, .. } => Ok(known),
            other => Err(unexpected("Probed", &other)),
        }
    }

    /// Downloads a stored pinball *with its program* from the receiver's
    /// local store only (never forwarded) — the peer fetch-through and
    /// re-warm primitive.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownPinball`] when the receiver does not store
    /// the digest locally.
    pub fn fetch_stored(
        &mut self,
        digest: PinballDigest,
    ) -> Result<(Program, Vec<u8>), ClientError> {
        match self.call(&Request::FetchStored { digest })? {
            Response::StoredData {
                program, container, ..
            } => Ok((program, container)),
            other => Err(unexpected("StoredData", &other)),
        }
    }

    /// Opens — or, after a reconnect, resumes — a streaming upload. The
    /// ack's `next_seq` is the high-water mark to resend from; its
    /// `already_have` means `expect_digest` matched a stored pinball and
    /// the body can be skipped.
    ///
    /// # Errors
    ///
    /// Transport errors; [`ServeError::Busy`] under backpressure.
    pub fn begin_stream(
        &mut self,
        stream: u64,
        program: &Program,
        expect_digest: Option<PinballDigest>,
    ) -> Result<StreamAck, ClientError> {
        expect_ack(self.call(&Request::BeginStream {
            stream,
            program: program.clone(),
            expect_digest,
        })?)
    }

    /// Appends one chunk at `seq`. Out-of-order sends are buffered
    /// server-side; duplicates below the acked high-water mark are
    /// acknowledged idempotently, so blind resends after a reconnect are
    /// safe.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownStream`] when the stream was never begun (or
    /// was dropped after damage); [`ServeError::Pinball`] when the chunk
    /// bytes fail to decode.
    pub fn append_chunk(
        &mut self,
        stream: u64,
        seq: u32,
        bytes: Vec<u8>,
    ) -> Result<StreamAck, ClientError> {
        expect_ack(self.call(&Request::AppendChunk { stream, seq, bytes })?)
    }

    /// Seals a stream: the server absorbs the footer, validates the
    /// reassembled container, and publishes it under its content digest.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] while chunks are still missing;
    /// [`ServeError::Pinball`] when validation fails.
    pub fn seal_stream(&mut self, stream: u64, footer: Vec<u8>) -> Result<Uploaded, ClientError> {
        match self.call(&Request::SealStream { stream, footer })? {
            Response::Uploaded {
                digest,
                instructions,
                deduped,
            } => Ok(Uploaded {
                digest,
                instructions,
                deduped,
            }),
            other => Err(unexpected("Uploaded", &other)),
        }
    }

    /// Reports a stream's absorption state without changing it — the
    /// reconnect probe a resuming uploader sends first.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownStream`] when the stream does not exist.
    pub fn stream_status(&mut self, stream: u64) -> Result<StreamAck, ClientError> {
        expect_ack(self.call(&Request::StreamStatus { stream })?)
    }

    /// Polls live-tail progress of a stream another process is writing.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownStream`] when the stream does not exist.
    pub fn tail(&mut self, stream: u64) -> Result<TailReply, ClientError> {
        match self.call(&Request::Tail { stream })? {
            Response::TailUpdate {
                stream,
                chunks,
                events,
                instructions,
                expected_events,
                sealed,
                digest,
            } => Ok(TailReply {
                stream,
                chunks,
                events,
                instructions,
                expected_events,
                sealed,
                digest,
            }),
            other => Err(unexpected("TailUpdate", &other)),
        }
    }

    /// Slices the prefix of a stream absorbed so far, without waiting for
    /// the seal. The server grows its dependence index incrementally, so
    /// repeated slices as the stream fills pay only for the new suffix.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when the criterion is not yet in the
    /// absorbed prefix; [`ServeError::UnknownStream`] as usual.
    pub fn slice_stream(
        &mut self,
        stream: u64,
        at: SliceAt,
        options: SliceOptions,
    ) -> Result<SliceReply, ClientError> {
        match self.call(&Request::SliceStream {
            stream,
            at,
            options,
        })? {
            Response::Slice {
                slice,
                cached,
                micros,
            } => Ok(SliceReply {
                slice,
                cached,
                micros,
            }),
            other => Err(unexpected("Slice", &other)),
        }
    }

    /// Streams a container to the server in `chunks` resumable pieces:
    /// digest-first dedupe (a known digest skips the body entirely),
    /// resume from the server's high-water mark, then seal. Returns the
    /// same [`Uploaded`] a batch [`Client::upload_bytes`] would — and the
    /// same digest, byte for byte. The stream id is the digest itself, so
    /// a client retrying after a crash resumes its own upload.
    ///
    /// # Errors
    ///
    /// As for [`Client::upload_bytes`]; serialization failures surface as
    /// [`ClientError::Protocol`].
    pub fn upload_streamed(
        &mut self,
        program: &Program,
        container: &PinballContainer,
        chunks: usize,
    ) -> Result<Uploaded, ClientError> {
        let writer = StreamWriter::new(container)
            .map_err(|e| ClientError::Protocol(format!("container encode: {e}")))?;
        let digest = writer.digest();
        let stream = digest.0;
        let ack = self.begin_stream(stream, program, Some(digest))?;
        if ack.already_have {
            return Ok(Uploaded {
                digest,
                instructions: writer.instructions(),
                deduped: true,
            });
        }
        let pieces = writer.chunks(chunks);
        for (seq, piece) in pieces.iter().enumerate().skip(ack.next_seq as usize) {
            self.append_chunk(stream, seq as u32, piece.to_vec())?;
        }
        self.seal_stream(stream, writer.footer().to_vec())
    }
}

fn expect_ack(response: Response) -> Result<StreamAck, ClientError> {
    match response {
        Response::StreamAck {
            stream,
            next_seq,
            pending,
            events,
            already_have,
        } => Ok(StreamAck {
            stream,
            next_seq,
            pending,
            events,
            already_have,
        }),
        other => Err(unexpected("StreamAck", &other)),
    }
}

fn expect_peer_view(response: Response) -> Result<PeerMapReply, ClientError> {
    match response {
        Response::PeerView {
            self_addr,
            virtual_nodes,
            nodes,
        } => Ok(PeerMapReply {
            self_addr,
            virtual_nodes,
            nodes,
        }),
        other => Err(unexpected("PeerView", &other)),
    }
}

fn unexpected(want: &str, got: &Response) -> ClientError {
    match got {
        Response::Error(e) => ClientError::Server(e.clone()),
        Response::Redirect { addr } => ClientError::Redirected { addr: addr.clone() },
        other => ClientError::Protocol(format!("expected {want}, got {other:?}")),
    }
}
