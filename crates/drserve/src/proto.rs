//! The drserve wire protocol: length-prefixed, checksummed, typed.
//!
//! Every message — request or response — is one [`pinzip::frame`] frame on
//! the stream:
//!
//! ```text
//! +------+----------------+------------+------------------------+
//! | kind | varint(c_len)  | crc32 (LE) | payload (c_len bytes)  |
//! | 1 B  | 1..10 B        | 4 B        | LZSS-compressed binser |
//! +------+----------------+------------+------------------------+
//! ```
//!
//! `kind` is [`REQUEST_KIND`] (`'Q'`) client→server and [`RESPONSE_KIND`]
//! (`'R'`) server→client; the payload is the [`pinzip::binser`] binary
//! encoding of [`Request`] or [`Response`] — the same record codec the v3
//! pinball container uses on disk, so large messages (pinball uploads,
//! slice responses) skip JSON text entirely. Reusing the pinball
//! container's framing means the same guarantees apply on the wire as on
//! disk: the CRC is verified before decompression, a flipped bit or
//! truncated tail surfaces as a typed [`RecvError`] naming what went
//! wrong — never a panic — and the reader bounds the declared length
//! ([`MAX_MESSAGE`]) before allocating.
//!
//! The protocol is strictly request/response: the client writes one
//! request frame, the server answers with exactly one response frame.
//! Errors travel as an ordinary [`Response::Error`] carrying a typed
//! [`ServeError`], so clients can distinguish backpressure
//! ([`ServeError::Busy`], with a retry hint) from misuse
//! ([`ServeError::UnknownSession`]) from damage
//! ([`ServeError::Pinball`], naming the damaged chunk).

use std::fmt;
use std::io::{Read, Write};

use serde::{Deserialize, Serialize};

use minivm::{Pc, Program, Tid};
use pinplay::PinballDigest;
use slicer::{Criterion, LocKey, RecordId, Slice, SliceOptions, SliceStats};

/// Frame kind tag for client→server messages (`'Q'`).
pub const REQUEST_KIND: u8 = b'Q';
/// Frame kind tag for server→client messages (`'R'`).
pub const RESPONSE_KIND: u8 = b'R';
/// Upper bound on one message's *compressed* payload. A frame declaring
/// more is rejected before any allocation — a four-byte length field must
/// never convince the server to reserve gigabytes.
pub const MAX_MESSAGE: usize = 64 << 20;

/// Server-assigned handle of one pooled debug session.
pub type SessionId = u64;

/// A client→server message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Store a pinball (container bytes, any supported version) and the
    /// program it replays. Identical pinballs — by content digest — dedupe
    /// server-side.
    UploadPinball {
        /// The program the pinball was recorded from.
        program: Program,
        /// Serialized container ([`pinplay::PinballContainer::to_bytes`];
        /// v1/v2/v3 auto-detect server-side).
        container: Vec<u8>,
    },
    /// Open a pooled [`drdebug::DebugSession`] over an uploaded pinball.
    OpenSession {
        /// Content digest returned by a prior upload.
        digest: PinballDigest,
    },
    /// Set a breakpoint in a session.
    Break {
        /// The session to mutate.
        session: SessionId,
        /// Program point to stop at.
        pc: Pc,
        /// Restrict to one thread (`None` = any).
        tid: Option<Tid>,
    },
    /// Continue replay until a stop event (breakpoint, trap, region end).
    Run {
        /// The session to advance.
        session: SessionId,
    },
    /// Seek the session to the state after `target` retired instructions.
    Seek {
        /// The session to reposition.
        session: SessionId,
        /// Target position in retired instructions.
        target: u64,
    },
    /// Compute (or fetch from the content-addressed cache) a dynamic slice.
    ComputeSlice {
        /// The session whose pinball is sliced.
        session: SessionId,
        /// Where to anchor the slice.
        at: SliceAt,
        /// Traversal options; part of the cache key via
        /// [`SliceOptions::fingerprint`].
        options: SliceOptions,
    },
    /// Relog a dynamic slice into a *slice pinball*: a v3 container that
    /// replays only the slice statements (plus forced synchronization).
    /// The result is stored server-side under its own content digest —
    /// downloadable with [`Request::FetchPinball`] and sliceable like any
    /// upload — and cached by (pinball digest, criterion, options
    /// fingerprint) with single-flight dedup.
    Relog {
        /// The session whose pinball is relogged.
        session: SessionId,
        /// Where to anchor the slice being relogged.
        at: SliceAt,
        /// Traversal options; part of the cache key via
        /// [`SliceOptions::fingerprint`].
        options: SliceOptions,
    },
    /// Download a stored pinball container (an upload or a relogged slice
    /// pinball) as serialized bytes.
    FetchPinball {
        /// Content digest of the container to fetch.
        digest: PinballDigest,
    },
    /// List the breakpoints set in a session. A small, read-only request —
    /// like [`Request::Stats`] it is batch-drained by the worker shard
    /// (several queued requests answered per channel wakeup).
    BreakList {
        /// The session to inspect.
        session: SessionId,
    },
    /// Fetch server metrics: per-op latency, cache hit rate, pool state.
    Stats,
    /// Close a session, returning its pool slot.
    CloseSession {
        /// The session to close.
        session: SessionId,
    },
    /// Ask whether a pinball with this content digest is already stored —
    /// the digest-first dedupe probe. A client that hashes its container
    /// locally asks this before paying to send the body; a `known` answer
    /// means the upload can be skipped entirely.
    ProbePinball {
        /// Content digest the client is about to upload.
        digest: PinballDigest,
    },
    /// Open — or, after a reconnect, resume — a streaming upload. The
    /// server answers [`Response::StreamAck`] with the high-water mark,
    /// so a resuming client learns which chunks to resend. Every op
    /// naming this `stream` id routes to the same shard.
    BeginStream {
        /// Client-chosen stream id (the upload's digest makes a good,
        /// resumable choice); routing key for every stream op.
        stream: u64,
        /// The program the streamed pinball replays.
        program: Program,
        /// The container's content digest, when the client knows it up
        /// front. A match against the store short-circuits the upload:
        /// the server answers with `already_have` set and the client
        /// skips the body.
        expect_digest: Option<PinballDigest>,
    },
    /// Append one chunk of container bytes at sequence `seq`. Chunks may
    /// arrive out of order (buffered until the gap fills) and duplicates
    /// below the high-water mark are acknowledged idempotently, so a
    /// client may blindly resend after a reconnect.
    AppendChunk {
        /// The stream to extend.
        stream: u64,
        /// Zero-based chunk sequence number
        /// ([`pinplay::StreamWriter::chunks`] order).
        seq: u32,
        /// Raw container bytes of this chunk.
        bytes: Vec<u8>,
    },
    /// Seal a stream: absorb the footer (index frame + `PBIX` trailer),
    /// verify the reassembled container, and publish it into the
    /// content-addressed store under its digest — from then on it is an
    /// ordinary upload, openable with [`Request::OpenSession`].
    SealStream {
        /// The stream to seal.
        stream: u64,
        /// Footer bytes ([`pinplay::StreamWriter::footer`]).
        footer: Vec<u8>,
    },
    /// Report a stream's absorption state without changing it — the
    /// reconnect probe a resuming uploader sends first.
    StreamStatus {
        /// The stream to inspect.
        stream: u64,
    },
    /// Live-tail progress of a stream: chunks and instructions absorbed
    /// so far, and the published digest once sealed. A second process
    /// polls this to follow a recording while it is still uploading.
    Tail {
        /// The stream to follow.
        stream: u64,
    },
    /// Compute a dynamic slice over the prefix of a stream absorbed so
    /// far — without waiting for the seal. The server maintains the
    /// dependence index incrementally ([`slicer::DepIndex::append`]), so
    /// repeated slices as the stream grows pay only for the new suffix.
    SliceStream {
        /// The stream whose absorbed prefix is sliced.
        stream: u64,
        /// Where to anchor the slice ([`SliceAt::Here`] is meaningless
        /// without a stopped session and is rejected).
        at: SliceAt,
        /// Traversal options; changing them mid-stream rebuilds the
        /// incremental index.
        options: SliceOptions,
    },
    /// One anti-entropy round of the fleet's gossip protocol: the sender
    /// offers its whole peer view (including itself, so first contact is
    /// also the introduction) and the receiver merges it and answers
    /// [`Response::PeerView`] with *its* merged view — state flows both
    /// ways in one exchange. Sent between fleet nodes, never by ordinary
    /// clients.
    Gossip {
        /// Every node the sender knows about, liveness and store summary
        /// included.
        view: Vec<NodeInfo>,
    },
    /// Fetch the fleet's peer map and ring parameters. A digest-aware
    /// client asks this once, builds the same consistent-hash ring the
    /// servers use, and from then on sends every digest-keyed request
    /// straight to its owner — zero forwarding hops on the hot path.
    /// A node outside any fleet answers with an empty view.
    PeerMap,
    /// Peer-to-peer slice: compute (or serve from cache) a slice for a
    /// digest this node *owns*, with no session handle in play. Sent by a
    /// non-owner forwarding a client's `ComputeSlice`; always executed
    /// locally by the receiver — never re-forwarded, so transient ring
    /// disagreement cannot create forwarding cycles.
    PeerSlice {
        /// The owned pinball to slice.
        digest: PinballDigest,
        /// The already-resolved criterion (the forwarding node resolves
        /// `SliceAt` against its local session first).
        criterion: Criterion,
        /// Traversal options; part of the cache key.
        options: SliceOptions,
    },
    /// Peer-to-peer relog: like [`Request::PeerSlice`] but producing (or
    /// serving from cache) a slice pinball. Never re-forwarded.
    PeerRelog {
        /// The owned pinball to relog.
        digest: PinballDigest,
        /// The already-resolved criterion.
        criterion: Criterion,
        /// Traversal options; part of the cache key.
        options: SliceOptions,
    },
    /// Peer-to-peer fetch of a stored pinball *with its program* — what a
    /// node needs to open sessions locally after pulling a digest from its
    /// owner (peer-cache fill, or a rejoining node re-warming). Answered
    /// from the local store only, never re-forwarded.
    FetchStored {
        /// Content digest of the container to fetch.
        digest: PinballDigest,
    },
    /// Peer-to-peer store probe: like [`Request::ProbePinball`] but
    /// answered from the receiver's local store only — never re-forwarded,
    /// so transfer-dedupe probes between nodes cannot cycle.
    PeerProbe {
        /// Content digest to look up.
        digest: PinballDigest,
    },
}

impl Request {
    /// Short operation name, used as the metrics key.
    pub fn op(&self) -> &'static str {
        match self {
            Request::UploadPinball { .. } => "upload",
            Request::OpenSession { .. } => "open",
            Request::Break { .. } => "break",
            Request::Run { .. } => "run",
            Request::Seek { .. } => "seek",
            Request::ComputeSlice { .. } => "slice",
            Request::Relog { .. } => "relog",
            Request::FetchPinball { .. } => "fetch",
            Request::BreakList { .. } => "breaklist",
            Request::Stats => "stats",
            Request::CloseSession { .. } => "close",
            Request::ProbePinball { .. } => "probe",
            Request::BeginStream { .. } => "beginstream",
            Request::AppendChunk { .. } => "appendchunk",
            Request::SealStream { .. } => "sealstream",
            Request::StreamStatus { .. } => "streamstatus",
            Request::Tail { .. } => "tail",
            Request::SliceStream { .. } => "slicestream",
            Request::Gossip { .. } => "gossip",
            Request::PeerMap => "peermap",
            Request::PeerSlice { .. } => "peerslice",
            Request::PeerRelog { .. } => "peerrelog",
            Request::FetchStored { .. } => "fetchstored",
            Request::PeerProbe { .. } => "peerprobe",
        }
    }
}

/// One fleet node's liveness and store summary, as exchanged by gossip
/// and served in [`Response::PeerView`].
///
/// Merge precedence when two views disagree about a node: a higher
/// `incarnation` (chosen fresh at each process start) wins outright — how
/// a restarted node replaces its dead former self. Within one
/// incarnation, a higher `heartbeat` is fresher evidence and its `alive`
/// flag is adopted; at equal heartbeats a dead claim sticks (only
/// heartbeat progress, which a truly dead node cannot make, revives).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// The address the node advertises (and listens on).
    pub addr: String,
    /// Process-lifetime nonce; a restart picks a strictly higher one.
    pub incarnation: u64,
    /// Monotonic liveness counter, bumped once per gossip round.
    pub heartbeat: u64,
    /// Whether the fleet currently believes the node is serving. Only
    /// alive nodes own ring segments.
    pub alive: bool,
    /// Distinct pinballs in the node's content-addressed store — the
    /// gossiped store summary.
    pub pinballs: u64,
}

/// Where a [`Request::ComputeSlice`] anchors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SliceAt {
    /// The failure point: the last record of the trace.
    Failure,
    /// The session's current stop point — `None` slices on everything the
    /// stopped statement used, `Some(key)` on one location's value.
    Here {
        /// The location to explain, if any.
        key: Option<LocKey>,
    },
    /// An explicit criterion (record id already known to the client).
    Criterion {
        /// The criterion to slice for.
        criterion: Criterion,
    },
}

/// A server→client message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Upload accepted (or deduped against an identical prior upload).
    Uploaded {
        /// Content digest — the handle for [`Request::OpenSession`].
        digest: PinballDigest,
        /// Instructions the pinball's replay retires.
        instructions: u64,
        /// Whether an identical pinball was already stored.
        deduped: bool,
    },
    /// Session opened.
    SessionOpened {
        /// Handle for subsequent session-scoped requests.
        session: SessionId,
    },
    /// Breakpoint set.
    BreakpointSet {
        /// Breakpoint id within the session.
        id: u32,
    },
    /// The session stopped (after [`Request::Run`] or [`Request::Seek`]).
    Stopped {
        /// Why it stopped.
        reason: WireStop,
        /// Instructions retired at the stop.
        position: u64,
    },
    /// A computed (or cached) slice.
    Slice {
        /// The slice in canonical wire form.
        slice: WireSlice,
        /// Whether the content-addressed cache served it.
        cached: bool,
        /// Server-side time spent answering, in microseconds.
        micros: u64,
    },
    /// A slice pinball was produced (or served from the relog cache).
    Relogged {
        /// Content digest of the slice pinball — open it with
        /// [`Request::OpenSession`] or download it with
        /// [`Request::FetchPinball`].
        digest: PinballDigest,
        /// Instructions the slice pinball's replay retires.
        instructions: u64,
        /// Instructions kept by the relog (slice statements + forced
        /// synchronization); always equals `instructions`.
        kept: u64,
        /// Instructions of the original region the relog skipped.
        excluded: u64,
        /// Whether the relog cache served it without rebuilding.
        cached: bool,
        /// Server-side time spent answering, in microseconds.
        micros: u64,
    },
    /// The breakpoints currently set in a session.
    Breakpoints {
        /// The session that was inspected.
        session: SessionId,
        /// Every breakpoint, ascending by id.
        breakpoints: Vec<WireBreakpoint>,
    },
    /// Serialized container bytes for a [`Request::FetchPinball`].
    PinballData {
        /// The digest that was fetched.
        digest: PinballDigest,
        /// Container bytes ([`pinplay::PinballContainer::to_bytes`]).
        container: Vec<u8>,
    },
    /// Server statistics snapshot.
    Stats(ServeStats),
    /// Session closed.
    Closed {
        /// The session that was closed.
        session: SessionId,
    },
    /// Answer to [`Request::ProbePinball`].
    Probed {
        /// The digest that was probed.
        digest: PinballDigest,
        /// Whether the store already holds a pinball with this digest.
        known: bool,
    },
    /// Absorption state of a streaming upload — the answer to
    /// [`Request::BeginStream`], [`Request::AppendChunk`], and
    /// [`Request::StreamStatus`].
    StreamAck {
        /// The stream this describes.
        stream: u64,
        /// High-water mark: every chunk with `seq < next_seq` has been
        /// absorbed contiguously. A resuming client resends from here.
        next_seq: u32,
        /// Out-of-order chunks buffered beyond a gap, ascending by seq —
        /// a resuming client skips these when filling the gap.
        pending: Vec<u32>,
        /// Replay events decoded from the absorbed prefix.
        events: u64,
        /// Set on a [`Request::BeginStream`] whose `expect_digest`
        /// matched a stored pinball: the body need not be sent.
        already_have: bool,
    },
    /// Live-tail progress — the answer to [`Request::Tail`].
    TailUpdate {
        /// The stream this describes.
        stream: u64,
        /// Contiguous chunks absorbed (the high-water mark).
        chunks: u32,
        /// Replay events decoded from the absorbed prefix.
        events: u64,
        /// Instructions the absorbed prefix retires when replayed.
        instructions: u64,
        /// Total events the sealed container will hold (from the
        /// container header), or 0 before the header chunk arrives.
        expected_events: u64,
        /// Whether the stream has been sealed and published.
        sealed: bool,
        /// The published content digest, once sealed.
        digest: Option<PinballDigest>,
    },
    /// The node's merged fleet view — the answer to both
    /// [`Request::Gossip`] and [`Request::PeerMap`]. Empty (`self_addr`
    /// blank, no nodes) on a node outside any fleet.
    PeerView {
        /// The answering node's advertised address.
        self_addr: String,
        /// Virtual nodes per member on the consistent-hash ring — a
        /// client must build its ring with the same count to agree on
        /// ownership.
        virtual_nodes: u64,
        /// Every known node, the answerer included.
        nodes: Vec<NodeInfo>,
    },
    /// The request names a digest owned by another fleet node and must be
    /// re-sent there — the answer to a [`Request::BeginStream`] whose
    /// `expect_digest` hashes to a different owner. Streams transfer
    /// chunk-by-chunk state, so they start at the owner rather than being
    /// forwarded frame-by-frame.
    Redirect {
        /// Advertised address of the owning node.
        addr: String,
    },
    /// Program plus container bytes for a [`Request::FetchStored`] — what
    /// a peer needs to install the pinball in its own store and open
    /// sessions over it.
    StoredData {
        /// The digest that was fetched.
        digest: PinballDigest,
        /// The program the pinball replays.
        program: Program,
        /// Container bytes ([`pinplay::PinballContainer::to_bytes`]).
        container: Vec<u8>,
    },
    /// The request failed; the connection stays usable (except after
    /// [`ServeError::Malformed`], which is followed by disconnect because
    /// framing may be out of sync).
    Error(ServeError),
}

/// One breakpoint in serializable form — the payload of
/// [`Response::Breakpoints`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireBreakpoint {
    /// Breakpoint id within the session.
    pub id: u32,
    /// Program point it stops at.
    pub pc: Pc,
    /// Thread restriction (`None` = any thread).
    pub tid: Option<Tid>,
    /// Disabled breakpoints are kept but never hit.
    pub enabled: bool,
}

/// Why a session stopped — [`drdebug::StopReason`] in serializable form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireStop {
    /// A breakpoint was hit.
    Breakpoint {
        /// Breakpoint id.
        id: u32,
        /// Thread that hit it.
        tid: Tid,
        /// The breakpoint's pc.
        pc: Pc,
    },
    /// A watchpoint was hit.
    Watchpoint {
        /// Watchpoint id.
        id: u32,
        /// Writing thread.
        tid: Tid,
        /// The writing instruction's pc.
        pc: Pc,
        /// Value written.
        value: i64,
    },
    /// The session is at the region entry.
    ReplayStart,
    /// One instruction retired (seek/step landings).
    Stepped {
        /// Thread that stepped.
        tid: Tid,
        /// The stepped instruction's pc.
        pc: Pc,
    },
    /// The replay log is exhausted.
    ReplayEnd,
    /// The recorded trap reproduced.
    Trapped {
        /// Human-readable trap description.
        error: String,
    },
}

impl From<drdebug::StopReason> for WireStop {
    fn from(r: drdebug::StopReason) -> WireStop {
        use drdebug::StopReason as S;
        match r {
            S::Breakpoint { id, tid, pc } => WireStop::Breakpoint { id, tid, pc },
            S::Watchpoint { id, tid, pc, value } => WireStop::Watchpoint { id, tid, pc, value },
            S::ReplayStart => WireStop::ReplayStart,
            S::Stepped { tid, pc } => WireStop::Stepped { tid, pc },
            S::ReplayEnd => WireStop::ReplayEnd,
            S::Trapped(e) => WireStop::Trapped {
                error: format!("{e:?}"),
            },
        }
    }
}

/// A dynamic slice in canonical wire form: every collection sorted, so two
/// computations of the same slice serialize byte-identically regardless of
/// traversal order or hash-set iteration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireSlice {
    /// The criterion the slice was computed for.
    pub criterion: Criterion,
    /// Included record ids, ascending.
    pub records: Vec<RecordId>,
    /// Data-dependence edges `(user, def, key)`, sorted.
    pub data_edges: Vec<(RecordId, RecordId, LocKey)>,
    /// Control-dependence edges `(dependent, branch)`, sorted.
    pub control_edges: Vec<(RecordId, RecordId)>,
    /// Traversal statistics of the compute that produced this slice. On a
    /// cache hit these describe the *original* compute.
    pub stats: SliceStats,
}

impl WireSlice {
    /// Canonicalizes a freshly computed [`Slice`].
    pub fn from_slice(slice: &Slice) -> WireSlice {
        let mut records: Vec<RecordId> = slice.records.iter().copied().collect();
        records.sort_unstable();
        let mut data_edges: Vec<(RecordId, RecordId, LocKey)> = slice
            .data_edges
            .iter()
            .map(|e| (e.user, e.def, e.key))
            .collect();
        data_edges.sort_unstable();
        data_edges.dedup();
        let mut control_edges = slice.control_edges.clone();
        control_edges.sort_unstable();
        control_edges.dedup();
        WireSlice {
            criterion: slice.criterion,
            records,
            data_edges,
            control_edges,
            stats: slice.stats,
        }
    }

    /// The canonical byte encoding — what "byte-identical slice results"
    /// means across server and local computation. Uses the same
    /// [`pinzip::binser`] codec as the wire frames; the encoding is
    /// deterministic (interned strings in first-appearance order, sorted
    /// collections), so equal slices encode to equal bytes.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        pinzip::binser::to_vec(self)
    }

    /// Number of statement instances in the slice.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the slice is empty (it never is: the criterion is included).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// A typed protocol-level failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServeError {
    /// The request frame or its payload could not be decoded. The server
    /// answers with this and then disconnects (framing may be out of sync).
    Malformed {
        /// What failed to decode.
        reason: String,
    },
    /// No pinball with this digest has been uploaded.
    UnknownPinball {
        /// The digest that missed.
        digest: PinballDigest,
    },
    /// No such session (never opened, closed, or evicted).
    UnknownSession {
        /// The missing session id.
        session: SessionId,
    },
    /// No streaming upload with this id exists on its shard (never begun,
    /// or the server restarted). Resume by re-sending
    /// [`Request::BeginStream`] and every chunk.
    UnknownStream {
        /// The missing stream id.
        stream: u64,
    },
    /// The pool is at capacity with every session in use — backpressure,
    /// not a queue. Retry after the hinted delay.
    Busy {
        /// Suggested client back-off in milliseconds.
        retry_after_ms: u64,
    },
    /// The uploaded pinball container is damaged or unreadable.
    Pinball {
        /// Damaged frame ordinal, when the damage is chunk-localized.
        chunk: Option<u64>,
        /// What the damaged frame holds (`"header"`, `"events"`, ...).
        kind: Option<String>,
        /// Decoder message.
        reason: String,
    },
    /// The request is well-formed but cannot be served (e.g. slicing
    /// `Here` while not stopped anywhere).
    BadRequest {
        /// Why the request cannot be served.
        reason: String,
    },
    /// A fleet forward failed in flight: the digest's owner was
    /// unreachable or its connection broke mid-exchange. Retryable, like
    /// [`ServeError::Busy`]: the forward either never executed or its
    /// answer was lost, and once gossip reroutes ownership a resend
    /// lands on a live owner.
    Peer {
        /// The owner that could not be reached.
        addr: String,
        /// What failed (connect, timeout, stream error).
        reason: String,
    },
}

impl From<pinplay::PinballError> for ServeError {
    fn from(e: pinplay::PinballError) -> ServeError {
        match e {
            pinplay::PinballError::Chunk {
                chunk,
                kind,
                reason,
            } => ServeError::Pinball {
                chunk: Some(chunk as u64),
                kind: Some(kind.to_string()),
                reason,
            },
            other => ServeError::Pinball {
                chunk: None,
                kind: None,
                reason: other.to_string(),
            },
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Malformed { reason } => write!(f, "malformed request: {reason}"),
            ServeError::UnknownPinball { digest } => write!(f, "unknown pinball {digest}"),
            ServeError::UnknownSession { session } => write!(f, "unknown session {session}"),
            ServeError::UnknownStream { stream } => write!(f, "unknown stream {stream}"),
            ServeError::Busy { retry_after_ms } => {
                write!(f, "server busy; retry after {retry_after_ms} ms")
            }
            ServeError::Pinball {
                chunk,
                kind,
                reason,
            } => match (chunk, kind) {
                (Some(c), Some(k)) => write!(f, "bad pinball: chunk {c} ({k}) damaged: {reason}"),
                _ => write!(f, "bad pinball: {reason}"),
            },
            ServeError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServeError::Peer { addr, reason } => {
                write!(f, "peer {addr} unreachable: {reason} (retryable)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Accumulated latency of one operation kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpStats {
    /// Requests observed.
    pub count: u64,
    /// Total handling time, microseconds.
    pub total_micros: u64,
    /// Worst single request, microseconds.
    pub max_micros: u64,
}

impl OpStats {
    /// Mean handling time in microseconds (0 when no requests).
    pub fn mean_micros(&self) -> u64 {
        self.total_micros.checked_div(self.count).unwrap_or(0)
    }
}

/// Slice-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: u64,
    /// Canonical bytes currently cached.
    pub bytes: u64,
}

impl CacheStats {
    /// Hits per lookup, in percent (0 when no lookups).
    pub fn hit_rate_percent(&self) -> u64 {
        (self.hits * 100)
            .checked_div(self.hits + self.misses)
            .unwrap_or(0)
    }
}

/// Session-pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Sessions currently open.
    pub open: u64,
    /// Sessions opened over the server's lifetime.
    pub opened_total: u64,
    /// Sessions evicted (least recently used) to admit new ones.
    pub evicted_lru: u64,
    /// Sessions expired by the idle timeout.
    pub expired_idle: u64,
    /// Opens rejected with [`ServeError::Busy`].
    pub rejected_busy: u64,
}

/// Fleet counters: gossip, forwarding, and peer-cache activity. In
/// [`ServeStats::cluster`] the forwarded-op fields are exact sums over
/// the per-shard entries ([`ShardStats::cluster`]); the membership and
/// gossip fields (`nodes_alive`, `nodes_dead`, `gossip_rounds`) are
/// node-global and attached only to the rollup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Whether this node is part of a fleet. Always `false` in per-shard
    /// entries.
    pub enabled: bool,
    /// Fleet members currently believed alive, this node included.
    pub nodes_alive: u64,
    /// Known members currently believed dead (seeds never heard from
    /// included).
    pub nodes_dead: u64,
    /// Anti-entropy gossip rounds completed.
    pub gossip_rounds: u64,
    /// Requests forwarded to a digest's owner (slice, relog, upload,
    /// probe, peer fetches excluded — those are `peer_fetches`).
    pub forwards: u64,
    /// Forwards that failed in flight and surfaced as
    /// [`ServeError::Peer`].
    pub forward_errors: u64,
    /// `BeginStream` requests answered with [`Response::Redirect`]
    /// because the expected digest belongs to another node.
    pub redirects: u64,
    /// Digest-keyed requests for *remotely owned* digests answered from
    /// this node's local caches — repeat questions that never crossed the
    /// wire again.
    pub peer_cache_hits: u64,
    /// Containers pulled from peers into the local store (fetch-through
    /// on open/fetch, and re-warm after a rejoin).
    pub peer_fetches: u64,
    /// Containers pushed to their owner (a sealed stream publishing from
    /// a non-owner node).
    pub peer_pushes: u64,
}

/// One worker shard's private counters. The server routes every request
/// to a shard by pinball digest (or session id, which encodes its shard);
/// each shard owns its own session pool, slice cache, index cache, relog
/// cache, and metrics, so these numbers are contention-free to collect.
/// The `Stats` op rolls all shards up into one [`ServeStats`] and attaches
/// the per-shard breakdown in [`ServeStats::shards`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index (`0..shards`).
    pub shard: u64,
    /// Requests this shard executed (including errors).
    pub requests: u64,
    /// Requests this shard answered with [`Response::Error`].
    pub errors: u64,
    /// Requests load-shed at admission with [`ServeError::Busy`] because
    /// this shard's queue was at capacity. Shed requests are rejected by
    /// the dispatcher and never enter the queue; they are counted in
    /// `requests`/`errors` too.
    pub shed: u64,
    /// Queue depth (admitted, not yet completed) at snapshot time.
    pub depth: u64,
    /// Highest queue depth ever observed.
    pub peak_depth: u64,
    /// Batches drained from the queue (each batch is one channel wakeup
    /// answering up to `batch_max` requests).
    pub batches: u64,
    /// Session-pool counters of this shard.
    pub sessions: SessionStats,
    /// Slice-cache counters of this shard.
    pub cache: CacheStats,
    /// Dependence-index cache counters of this shard.
    pub index_cache: CacheStats,
    /// Relog-cache counters of this shard.
    pub relog_cache: CacheStats,
    /// Fleet forwarding counters of this shard (`enabled` and the
    /// node-global gossip fields stay zero here).
    pub cluster: ClusterStats,
}

/// One snapshot of the server's metrics — the payload of
/// [`Response::Stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Microseconds since the server started.
    pub uptime_micros: u64,
    /// Total requests handled (including errors).
    pub requests: u64,
    /// Requests answered with [`Response::Error`].
    pub errors: u64,
    /// Per-operation latency, keyed by [`Request::op`] name.
    pub per_op: Vec<(String, OpStats)>,
    /// Slice-cache counters.
    pub cache: CacheStats,
    /// Dependence-index cache counters. A miss is one index *build*; hits
    /// are queries (any criterion, same pinball and options) answered by
    /// an already-built index.
    pub index_cache: CacheStats,
    /// Relog-cache counters. A miss is one slice-pinball build; hits are
    /// repeat relog requests (same pinball, criterion, and options)
    /// answered by the stored digest.
    pub relog_cache: CacheStats,
    /// Session-pool counters.
    pub sessions: SessionStats,
    /// Distinct pinballs stored.
    pub pinballs: u64,
    /// Requests load-shed at admission across every shard (each one
    /// answered with a typed [`ServeError::Busy`] carrying a
    /// backlog-scaled retry hint).
    pub shed: u64,
    /// Fleet counters: membership, gossip rounds, forwards, redirects,
    /// peer-cache hits. The forwarded-op fields are exact sums over
    /// [`ShardStats::cluster`]; all zero (and `enabled` false) on a
    /// standalone node.
    pub cluster: ClusterStats,
    /// Per-shard breakdown. The rollup fields above are exact sums over
    /// these entries (caches, sessions, requests, errors, shed).
    pub shards: Vec<ShardStats>,
}

impl ServeStats {
    /// Requests per second over the server's uptime.
    pub fn requests_per_sec(&self) -> f64 {
        if self.uptime_micros == 0 {
            0.0
        } else {
            self.requests as f64 * 1e6 / self.uptime_micros as f64
        }
    }

    /// The stats for one op, if it was ever requested.
    pub fn op(&self, name: &str) -> Option<&OpStats> {
        self.per_op.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }
}

impl fmt::Display for ServeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests         {:>8}  ({} errors, {:.1} req/s over {:.1}s)",
            self.requests,
            self.errors,
            self.requests_per_sec(),
            self.uptime_micros as f64 / 1e6,
        )?;
        for (name, op) in &self.per_op {
            writeln!(
                f,
                "  {name:<14} {:>8}  mean {:>7} us  max {:>7} us",
                op.count,
                op.mean_micros(),
                op.max_micros
            )?;
        }
        writeln!(
            f,
            "slice cache      {:>8} hits / {} misses ({}% hit rate), {} entries, {} evictions",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate_percent(),
            self.cache.entries,
            self.cache.evictions,
        )?;
        writeln!(
            f,
            "index cache      {:>8} hits / {} misses ({}% hit rate), {} entries, {} evictions, {} bytes",
            self.index_cache.hits,
            self.index_cache.misses,
            self.index_cache.hit_rate_percent(),
            self.index_cache.entries,
            self.index_cache.evictions,
            self.index_cache.bytes,
        )?;
        writeln!(
            f,
            "relog cache      {:>8} hits / {} misses ({}% hit rate), {} entries, {} evictions, {} bytes",
            self.relog_cache.hits,
            self.relog_cache.misses,
            self.relog_cache.hit_rate_percent(),
            self.relog_cache.entries,
            self.relog_cache.evictions,
            self.relog_cache.bytes,
        )?;
        writeln!(
            f,
            "sessions         {:>8} open  ({} total, {} lru-evicted, {} idle-expired, {} busy-rejected)",
            self.sessions.open,
            self.sessions.opened_total,
            self.sessions.evicted_lru,
            self.sessions.expired_idle,
            self.sessions.rejected_busy,
        )?;
        writeln!(f, "pinballs stored  {:>8}", self.pinballs)?;
        if self.cluster.enabled {
            writeln!(
                f,
                "cluster          {:>8} alive / {} dead, {} gossip rounds, {} forwards ({} errors), {} redirects, {} peer hits, {} fetches, {} pushes",
                self.cluster.nodes_alive,
                self.cluster.nodes_dead,
                self.cluster.gossip_rounds,
                self.cluster.forwards,
                self.cluster.forward_errors,
                self.cluster.redirects,
                self.cluster.peer_cache_hits,
                self.cluster.peer_fetches,
                self.cluster.peer_pushes,
            )?;
        }
        write!(f, "shed at admission{:>8}", self.shed)?;
        for s in &self.shards {
            write!(
                f,
                "\n  shard {:<3} {:>8} reqs  {:>4} errors  {:>4} shed  depth {:>3} (peak {:>3})  {:>5} batches  {:>3} sessions",
                s.shard,
                s.requests,
                s.errors,
                s.shed,
                s.depth,
                s.peak_depth,
                s.batches,
                s.sessions.open,
            )?;
        }
        Ok(())
    }
}

/// Why a message could not be read from the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// The peer closed the stream at a message boundary — a clean
    /// disconnect, not an error.
    Disconnected,
    /// The stream failed mid-message.
    Io(String),
    /// The frame was present but undecodable: truncated, failed its CRC,
    /// oversized, the wrong kind, or carrying an invalid payload.
    Frame {
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Disconnected => f.write_str("peer disconnected"),
            RecvError::Io(e) => write!(f, "stream error: {e}"),
            RecvError::Frame { reason } => write!(f, "bad frame: {reason}"),
        }
    }
}

impl std::error::Error for RecvError {}

fn frame_err(reason: impl fmt::Display) -> RecvError {
    RecvError::Frame {
        reason: reason.to_string(),
    }
}

/// Serializes `value` as one protocol frame and writes it to the stream.
///
/// # Errors
///
/// Returns the underlying I/O error when the stream fails.
pub fn write_message<W: Write + ?Sized, T: Serialize>(
    w: &mut W,
    kind: u8,
    value: &T,
) -> std::io::Result<()> {
    let payload = pinzip::binser::to_vec(value);
    let mut buf = Vec::new();
    pinzip::frame::write_frame(&mut buf, kind, &payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Reads exactly one protocol frame of the expected kind from the stream
/// and decodes its binary payload.
///
/// The header is consumed byte-wise (kind, LEB128 length, CRC), the
/// declared length is bounded by [`MAX_MESSAGE`] *before* the payload is
/// allocated, and the reassembled frame goes through
/// [`pinzip::frame::read_frame`] so the CRC is verified ahead of
/// decompression — the same order the pinball container uses.
///
/// # Errors
///
/// [`RecvError::Disconnected`] on EOF at a message boundary;
/// [`RecvError::Io`] on mid-message stream failure; [`RecvError::Frame`]
/// on anything undecodable.
pub fn read_message<R: Read + ?Sized, T: serde::Deserialize>(
    r: &mut R,
    expect_kind: u8,
) -> Result<T, RecvError> {
    let mut frame_buf: Vec<u8> = Vec::with_capacity(64);

    // Kind byte: EOF here is a clean disconnect.
    let mut byte = [0u8; 1];
    match r.read(&mut byte) {
        Ok(0) => return Err(RecvError::Disconnected),
        Ok(_) => frame_buf.push(byte[0]),
        Err(e) => return Err(RecvError::Io(e.to_string())),
    }
    if byte[0] != expect_kind {
        return Err(frame_err(format!(
            "unexpected frame kind {:#04x} (want {expect_kind:#04x})",
            byte[0]
        )));
    }

    // LEB128 compressed length, one byte at a time (10 bytes max for u64).
    let clen = {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            read_exact(r, &mut byte)?;
            frame_buf.push(byte[0]);
            if shift >= 64 {
                return Err(frame_err("length varint overflows u64"));
            }
            v |= u64::from(byte[0] & 0x7f) << shift;
            if byte[0] & 0x80 == 0 {
                break v;
            }
            shift += 7;
        }
    };
    if clen > MAX_MESSAGE as u64 {
        return Err(frame_err(format!(
            "declared payload of {clen} bytes exceeds the {MAX_MESSAGE}-byte message cap"
        )));
    }

    // CRC + payload, then verify/decompress through the shared frame reader.
    let start = frame_buf.len();
    frame_buf.resize(start + 4 + clen as usize, 0);
    read_exact(r, &mut frame_buf[start..])?;
    let mut pos = 0;
    let frame = pinzip::frame::read_frame(&frame_buf, &mut pos).map_err(frame_err)?;
    pinzip::binser::from_slice(&frame.payload).map_err(|e| frame_err(format!("bad payload: {e}")))
}

/// How far one frame extends into `buf`, without decoding its payload.
///
/// The nonblocking dispatcher accumulates bytes from a socket and needs to
/// know when a whole frame has arrived. Returns `Ok(None)` while `buf`
/// holds only a prefix (read more and retry), `Ok(Some(total))` when
/// `buf[..total]` is exactly one frame, and [`RecvError::Frame`] when the
/// header is already provably invalid (wrong kind byte, varint overflow,
/// or a declared length beyond [`MAX_MESSAGE`]) — detectable before the
/// rest of the frame arrives, so oversized garbage is rejected early.
pub fn frame_extent(buf: &[u8], expect_kind: u8) -> Result<Option<usize>, RecvError> {
    let Some(&kind) = buf.first() else {
        return Ok(None);
    };
    if kind != expect_kind {
        return Err(frame_err(format!(
            "unexpected frame kind {kind:#04x} (want {expect_kind:#04x})"
        )));
    }
    let mut clen: u64 = 0;
    let mut shift = 0u32;
    let mut at = 1usize;
    loop {
        let Some(&byte) = buf.get(at) else {
            return Ok(None);
        };
        at += 1;
        if shift >= 64 {
            return Err(frame_err("length varint overflows u64"));
        }
        clen |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    if clen > MAX_MESSAGE as u64 {
        return Err(frame_err(format!(
            "declared payload of {clen} bytes exceeds the {MAX_MESSAGE}-byte message cap"
        )));
    }
    let total = at + 4 + clen as usize;
    Ok(if buf.len() >= total {
        Some(total)
    } else {
        None
    })
}

/// Decodes one message from the front of `buf` if a complete frame is
/// present, returning the value and the bytes consumed. `Ok(None)` means
/// "keep reading"; errors are as for [`read_message`].
///
/// # Errors
///
/// [`RecvError::Frame`] on an invalid header, failed CRC, or undecodable
/// payload.
pub fn try_decode<T: serde::Deserialize>(
    buf: &[u8],
    expect_kind: u8,
) -> Result<Option<(T, usize)>, RecvError> {
    match frame_extent(buf, expect_kind)? {
        None => Ok(None),
        Some(total) => {
            let mut cursor = &buf[..total];
            let value = read_message(&mut cursor, expect_kind)?;
            Ok(Some((value, total)))
        }
    }
}

fn read_exact<R: Read + ?Sized>(r: &mut R, buf: &mut [u8]) -> Result<(), RecvError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            frame_err("frame truncated")
        } else {
            RecvError::Io(e.to_string())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_roundtrip() {
        let req = Request::Seek {
            session: 7,
            target: 4096,
        };
        let mut buf: Vec<u8> = Vec::new();
        write_message(&mut buf, REQUEST_KIND, &req).unwrap();
        let mut cursor = &buf[..];
        let back: Request = read_message(&mut cursor, REQUEST_KIND).unwrap();
        assert!(matches!(
            back,
            Request::Seek {
                session: 7,
                target: 4096
            }
        ));
        assert!(cursor.is_empty(), "message fully consumed");
    }

    #[test]
    fn eof_at_boundary_is_disconnect_elsewhere_truncation() {
        let mut buf: Vec<u8> = Vec::new();
        write_message(&mut buf, REQUEST_KIND, &Request::Stats).unwrap();
        let mut empty: &[u8] = &[];
        assert_eq!(
            read_message::<_, Request>(&mut empty, REQUEST_KIND).unwrap_err(),
            RecvError::Disconnected
        );
        for cut in 1..buf.len() {
            let mut cursor = &buf[..cut];
            let err = read_message::<_, Request>(&mut cursor, REQUEST_KIND).unwrap_err();
            assert!(
                matches!(err, RecvError::Frame { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let mut buf: Vec<u8> = Vec::new();
        write_message(&mut buf, RESPONSE_KIND, &Request::Stats).unwrap();
        let mut cursor = &buf[..];
        assert!(matches!(
            read_message::<_, Request>(&mut cursor, REQUEST_KIND).unwrap_err(),
            RecvError::Frame { .. }
        ));
    }

    #[test]
    fn try_decode_handles_partial_complete_and_pipelined_frames() {
        let mut buf: Vec<u8> = Vec::new();
        write_message(&mut buf, REQUEST_KIND, &Request::Stats).unwrap();
        let one = buf.len();
        write_message(
            &mut buf,
            REQUEST_KIND,
            &Request::Seek {
                session: 3,
                target: 99,
            },
        )
        .unwrap();
        // Every strict prefix of the first frame wants more bytes.
        for cut in 0..one {
            assert_eq!(
                frame_extent(&buf[..cut], REQUEST_KIND).unwrap(),
                None,
                "cut at {cut}"
            );
        }
        // Two pipelined frames decode front-to-back.
        let (first, used) = try_decode::<Request>(&buf, REQUEST_KIND).unwrap().unwrap();
        assert!(matches!(first, Request::Stats));
        assert_eq!(used, one);
        let (second, used2) = try_decode::<Request>(&buf[used..], REQUEST_KIND)
            .unwrap()
            .unwrap();
        assert!(matches!(
            second,
            Request::Seek {
                session: 3,
                target: 99
            }
        ));
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn frame_extent_rejects_bad_headers_early() {
        assert!(matches!(
            frame_extent(b"X", REQUEST_KIND),
            Err(RecvError::Frame { .. })
        ));
        let mut oversized = vec![REQUEST_KIND];
        pinzip::varint::write_u64(&mut oversized, 1 << 40);
        assert!(matches!(
            frame_extent(&oversized, REQUEST_KIND),
            Err(RecvError::Frame { reason }) if reason.contains("message cap")
        ));
    }

    #[test]
    fn oversized_declared_length_is_rejected_without_allocation() {
        // kind + varint declaring ~2^40 bytes.
        let mut buf = vec![REQUEST_KIND];
        pinzip::varint::write_u64(&mut buf, 1 << 40);
        buf.extend_from_slice(&[0u8; 4]);
        let mut cursor = &buf[..];
        let err = read_message::<_, Request>(&mut cursor, REQUEST_KIND).unwrap_err();
        assert!(
            matches!(&err, RecvError::Frame { reason } if reason.contains("message cap")),
            "{err:?}"
        );
    }
}
