//! In-process byte-stream transport: a pair of connected duplex endpoints.
//!
//! [`pipe`] returns two [`LoopbackStream`]s wired head-to-tail: bytes
//! written to one are read from the other, with blocking reads and
//! EOF-on-drop semantics — exactly the contract `TcpStream` gives the
//! protocol layer, minus the socket. Tests and benchmarks drive a real
//! server through the real framing without touching the network, and the
//! server code cannot tell the difference (both transports are just
//! `Read + Write`).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One direction of the pipe: a bounded-ish byte queue plus liveness.
struct Half {
    state: Mutex<HalfState>,
    readable: Condvar,
}

struct HalfState {
    buf: VecDeque<u8>,
    /// Set when the writing end is dropped; readers drain then see EOF.
    closed: bool,
}

impl Half {
    fn new() -> Arc<Half> {
        Arc::new(Half {
            state: Mutex::new(HalfState {
                buf: VecDeque::new(),
                closed: false,
            }),
            readable: Condvar::new(),
        })
    }

    fn close(&self) {
        self.state.lock().expect("pipe lock").closed = true;
        self.readable.notify_all();
    }
}

/// One endpoint of an in-process duplex byte stream.
///
/// Reading blocks until the peer writes or hangs up; writing never blocks
/// (the queue is unbounded — protocol messages are request/response, so at
/// most one message is in flight per direction). Dropping an endpoint
/// closes *both* directions it touches: the peer's pending read drains the
/// remaining bytes and then sees EOF, and the peer's writes fail with
/// [`io::ErrorKind::BrokenPipe`].
pub struct LoopbackStream {
    rx: Arc<Half>,
    tx: Arc<Half>,
    nonblocking: AtomicBool,
}

/// Creates a connected pair of in-process streams.
pub fn pipe() -> (LoopbackStream, LoopbackStream) {
    let a = Half::new();
    let b = Half::new();
    (
        LoopbackStream {
            rx: Arc::clone(&a),
            tx: Arc::clone(&b),
            nonblocking: AtomicBool::new(false),
        },
        LoopbackStream {
            rx: b,
            tx: a,
            nonblocking: AtomicBool::new(false),
        },
    )
}

impl LoopbackStream {
    /// Switches this endpoint between blocking and nonblocking reads,
    /// mirroring [`std::net::TcpStream::set_nonblocking`]. In nonblocking
    /// mode a read with no buffered bytes returns
    /// [`io::ErrorKind::WouldBlock`] instead of parking on the condvar;
    /// writes never block in either mode.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        self.nonblocking.store(nonblocking, Ordering::Relaxed);
        Ok(())
    }
}

impl Read for LoopbackStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut state = self.rx.state.lock().expect("pipe lock");
        loop {
            if !state.buf.is_empty() {
                let n = buf.len().min(state.buf.len());
                // Bulk-copy from the deque's (up to two) contiguous runs;
                // byte-at-a-time popping dominates profiles under load.
                let (head, tail) = state.buf.as_slices();
                if n <= head.len() {
                    buf[..n].copy_from_slice(&head[..n]);
                } else {
                    buf[..head.len()].copy_from_slice(head);
                    buf[head.len()..n].copy_from_slice(&tail[..n - head.len()]);
                }
                state.buf.drain(..n);
                return Ok(n);
            }
            if state.closed {
                return Ok(0); // EOF
            }
            if self.nonblocking.load(Ordering::Relaxed) {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "loopback read would block",
                ));
            }
            state = self.rx.readable.wait(state).expect("pipe lock");
        }
    }
}

impl Write for LoopbackStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut state = self.tx.state.lock().expect("pipe lock");
        if state.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "loopback peer hung up",
            ));
        }
        state.buf.extend(buf);
        self.tx.readable.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for LoopbackStream {
    fn drop(&mut self) {
        // Wake the peer's blocked read (EOF) and fail its future writes.
        self.tx.close();
        self.rx.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bytes_flow_both_ways() {
        let (mut a, mut b) = pipe();
        a.write_all(b"ping").unwrap();
        let mut got = [0u8; 4];
        b.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"pong");
    }

    #[test]
    fn drop_unblocks_reader_with_eof() {
        let (a, mut b) = pipe();
        let reader = thread::spawn(move || {
            let mut buf = Vec::new();
            b.read_to_end(&mut buf).unwrap();
            buf
        });
        drop(a);
        assert!(reader.join().unwrap().is_empty());
    }

    #[test]
    fn pending_bytes_drain_before_eof() {
        let (mut a, mut b) = pipe();
        a.write_all(b"tail").unwrap();
        drop(a);
        let mut buf = Vec::new();
        b.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"tail");
        assert!(b.write_all(b"x").is_err(), "write to hung-up peer fails");
    }

    #[test]
    fn nonblocking_read_returns_would_block() {
        let (mut a, mut b) = pipe();
        b.set_nonblocking(true).unwrap();
        let mut buf = [0u8; 4];
        let err = b.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        a.write_all(b"data").unwrap();
        assert_eq!(b.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf, b"data");
        drop(a);
        // EOF still wins over WouldBlock once the peer hangs up.
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn blocking_read_wakes_on_write() {
        let (mut a, mut b) = pipe();
        let reader = thread::spawn(move || {
            let mut got = [0u8; 5];
            b.read_exact(&mut got).unwrap();
            got
        });
        thread::sleep(std::time::Duration::from_millis(20));
        a.write_all(b"hello").unwrap();
        assert_eq!(&reader.join().unwrap(), b"hello");
    }
}
