//! Content-addressed pinball store, lock-striped for sharded access.
//!
//! The store is the only piece of server state every shard shares:
//! uploads must dedupe globally (ten clients uploading one recording
//! store it once, whichever shards their requests land on), and a relog
//! on one shard publishes a slice pinball that any shard may open later.
//! To keep that sharing off the hot path, the map is split into
//! power-of-two stripes, each behind its own mutex, indexed by the
//! digest's low bits — two shards touching different pinballs never
//! contend.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use minivm::Program;
use pinplay::{PinballContainer, PinballDigest};

/// One stored pinball: the program it replays plus the parsed container.
pub struct Stored {
    /// The program the pinball was recorded from.
    pub program: Arc<Program>,
    /// The parsed container. Shared, never cloned: every open session and
    /// fetch gets an `Arc` handle onto the same decoded event log.
    pub container: Arc<PinballContainer>,
}

/// A striped, content-addressed map from [`PinballDigest`] to [`Stored`].
pub struct PinballStore {
    stripes: Vec<Mutex<HashMap<PinballDigest, Stored>>>,
    /// `stripes.len() - 1`; stripe count is a power of two so the mask is
    /// a cheap digest → stripe map.
    mask: u64,
}

impl PinballStore {
    /// Creates a store with at least `stripes` lock stripes (rounded up
    /// to a power of two, min 1).
    pub fn new(stripes: usize) -> PinballStore {
        let n = stripes.max(1).next_power_of_two();
        PinballStore {
            stripes: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n as u64 - 1,
        }
    }

    fn stripe(&self, digest: PinballDigest) -> &Mutex<HashMap<PinballDigest, Stored>> {
        &self.stripes[(digest.0 & self.mask) as usize]
    }

    /// Stores `(program, container)` under `digest` unless an identical
    /// pinball is already present. Returns `true` when the insert was
    /// deduped against an existing entry.
    pub fn insert_if_absent(
        &self,
        digest: PinballDigest,
        program: Arc<Program>,
        container: Arc<PinballContainer>,
    ) -> bool {
        let mut stripe = self.stripe(digest).lock().expect("store stripe lock");
        match stripe.entry(digest) {
            Entry::Occupied(_) => true,
            Entry::Vacant(slot) => {
                slot.insert(Stored { program, container });
                false
            }
        }
    }

    /// Hands out shared handles to the program and container stored under
    /// `digest` — two `Arc` bumps, no event copy, regardless of pinball
    /// size.
    pub fn get(&self, digest: PinballDigest) -> Option<(Arc<Program>, Arc<PinballContainer>)> {
        let stripe = self.stripe(digest).lock().expect("store stripe lock");
        stripe
            .get(&digest)
            .map(|s| (Arc::clone(&s.program), Arc::clone(&s.container)))
    }

    /// The program stored under `digest`, without cloning the container.
    pub fn program_of(&self, digest: PinballDigest) -> Option<Arc<Program>> {
        let stripe = self.stripe(digest).lock().expect("store stripe lock");
        stripe.get(&digest).map(|s| Arc::clone(&s.program))
    }

    /// Distinct pinballs stored, summed across stripes.
    pub fn len(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("store stripe lock").len() as u64)
            .sum()
    }

    /// Whether the store holds no pinballs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::assemble;
    use pinplay::{record_whole_program, Pinball};

    fn tiny() -> (Arc<Program>, Pinball) {
        let program: Arc<Program> = Arc::new(
            assemble(
                r"
            .text
            .func main
                movi r1, 5
                halt
            .endfunc
        ",
            )
            .expect("assembles"),
        );
        let rec = record_whole_program(
            &program,
            &mut minivm::RoundRobin::new(8),
            &mut minivm::LiveEnv::new(0),
            10_000,
            "store-test",
        )
        .expect("records");
        (program, rec.pinball)
    }

    #[test]
    fn insert_dedupes_and_lookup_round_trips() {
        let (program, pinball) = tiny();
        let container = Arc::new(PinballContainer::new(pinball));
        let digest = container.digest();
        let store = PinballStore::new(8);
        assert!(store.get(digest).is_none());
        assert!(!store.insert_if_absent(digest, Arc::clone(&program), Arc::clone(&container)));
        assert!(store.insert_if_absent(digest, Arc::clone(&program), Arc::clone(&container)));
        assert_eq!(store.len(), 1);
        let (got_program, got_container) = store.get(digest).expect("stored");
        assert!(Arc::ptr_eq(&got_program, &program), "same program handle");
        assert!(
            Arc::ptr_eq(&got_container, &container),
            "lookup shares the stored container, no clone"
        );
        assert_eq!(got_container.digest(), digest);
        assert!(store.program_of(digest).is_some());
    }

    #[test]
    fn distinct_digests_spread_across_stripes() {
        let (program, pinball) = tiny();
        let container = Arc::new(PinballContainer::new(pinball));
        let store = PinballStore::new(4);
        // Synthetic digests exercise every stripe; the container bytes are
        // irrelevant to striping.
        for d in 0..16u64 {
            store.insert_if_absent(
                PinballDigest(d),
                Arc::clone(&program),
                Arc::clone(&container),
            );
        }
        assert_eq!(store.len(), 16);
        assert!(!store.is_empty());
        for d in 0..16u64 {
            assert!(store.get(PinballDigest(d)).is_some());
        }
    }
}
