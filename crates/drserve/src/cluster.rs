//! Fleet membership and digest routing: consistent hashing, gossip, and
//! cache-peer forwarding.
//!
//! A single drserve node answers a warm slice in microseconds but pays
//! the full trace-collection and index-build cost cold — and that warm
//! state dies at the process boundary. This module makes the warm state
//! *fleet-wide*: every node knows the **owner** of any pinball digest via
//! a [`HashRing`] (consistent hashing with virtual nodes, so membership
//! changes remap only ~1/N of the keyspace), and non-owners forward
//! digest-keyed work to the owner over the ordinary wire protocol,
//! caching the canonical answer locally so repeat questions never cross
//! the wire again. The result: exactly one `DepIndex` build per (pinball,
//! options) across the whole fleet, no matter which node a client asks.
//!
//! **Membership** is a gossiped peer map. Each node starts from seed
//! addresses ([`crate::ServeConfig::peers`]) and runs periodic
//! anti-entropy: once per interval it bumps its own heartbeat and
//! exchanges full views ([`crate::Request::Gossip`] ↔
//! [`crate::Response::PeerView`]) with one peer, merging by the
//! incarnation/heartbeat precedence documented on
//! [`NodeInfo`]. Failure detection is
//! twofold: a connect or stream error marks the peer dead immediately
//! (gossip spreads the claim), and a heartbeat that stops progressing
//! times the peer out. A false positive revives on the next heartbeat
//! it hears; a node that sees *itself* declared dead bumps its
//! incarnation, so a restart rejoins cleanly under a fresh identity.
//!
//! **Forwarding** reuses [`Client`] + [`RetryPolicy`] over pooled,
//! timeout-bounded TCP connections — one per peer, shared by the worker
//! shards and the gossip thread. Forwarded ops are the peer-to-peer
//! requests (`PeerSlice`, `PeerRelog`, `FetchStored`), which the receiver
//! always executes locally: transient ring disagreement can cost an extra
//! hop's *error*, never a forwarding cycle. Every in-flight failure
//! surfaces as the typed, retryable
//! [`ServeError::Peer`].
//!
//! **Clients** don't have to forward at all: [`FleetClient`] fetches the
//! peer map once ([`crate::Request::PeerMap`]), builds the same ring, and
//! sends every digest-keyed request straight to its owner — zero
//! forwarding hops on the hot path — following
//! [`Redirect`](crate::Response::Redirect) answers when its map is stale.

use std::collections::HashMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant, SystemTime};

use minivm::Program;
use pinplay::{Pinball, PinballContainer, PinballDigest};
use slicer::{Criterion, SliceOptions};

use crate::client::{
    Client, ClientError, PeerMapReply, RelogReply, RetryPolicy, SliceReply, Uploaded,
};
use crate::proto::{NodeInfo, RecvError, Response, ServeError, ServeStats, SessionId, SliceAt};
use crate::server::ServeConfig;

/// SplitMix64 finalizer: a cheap, well-distributed bijection on `u64`.
/// Used to place both ring points and digests on the ring, so structured
/// inputs (sequential digests, similar addresses) still spread uniformly.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// FNV-1a over the address bytes — the per-node seed for its ring points.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A consistent-hash ring over pinball digests with virtual nodes.
///
/// Each member contributes `virtual_nodes` points at
/// `mix64(fnv1a(addr) ^ mix64(v))`; a digest is owned by the member whose
/// point is the first at or clockwise-after `mix64(digest)`. The ring is
/// a pure function of the sorted member set and the virtual-node count,
/// so every node (and every [`FleetClient`]) that agrees on membership
/// agrees on ownership. With `V` virtual nodes the keyspace imbalance is
/// bounded near `1/N + O(1/√(NV))`, and adding or removing one member
/// remaps only that member's ~`1/N` share — both pinned by proptests.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring point, index into nodes)`, sorted by point.
    points: Vec<(u64, u32)>,
    nodes: Vec<String>,
}

impl HashRing {
    /// Builds a ring over `nodes` (deduplicated, order-insensitive) with
    /// `virtual_nodes` points per member (min 1).
    pub fn new(mut nodes: Vec<String>, virtual_nodes: usize) -> HashRing {
        nodes.sort();
        nodes.dedup();
        let v = virtual_nodes.max(1);
        let mut points = Vec::with_capacity(nodes.len() * v);
        for (ix, addr) in nodes.iter().enumerate() {
            let base = fnv1a(addr.as_bytes());
            for vn in 0..v {
                points.push((mix64(base ^ mix64(vn as u64 + 1)), ix as u32));
            }
        }
        points.sort_unstable();
        HashRing { points, nodes }
    }

    /// The member that owns `digest`, or `None` on an empty ring.
    pub fn owner(&self, digest: PinballDigest) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let h = mix64(digest.0);
        let ix = self.points.partition_point(|&(p, _)| p < h);
        let (_, node) = self.points[if ix == self.points.len() { 0 } else { ix }];
        Some(&self.nodes[node as usize])
    }

    /// The sorted, deduplicated member list.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Exact keyspace share of every member: the fraction of the `u64`
    /// circle whose owner lookup lands on it. Computed from ring-arc
    /// lengths, not sampling, so the balance proptest is deterministic.
    pub fn shares(&self) -> Vec<(String, f64)> {
        let mut arc = vec![0u128; self.nodes.len()];
        if let Some(&(last, _)) = self.points.last() {
            let mut prev = last;
            for &(p, node) in &self.points {
                // Keys in (prev, p] belong to this point; the first point
                // picks up the wraparound arc from the last one.
                arc[node as usize] += u128::from(p.wrapping_sub(prev));
                prev = p;
            }
        }
        self.nodes
            .iter()
            .zip(arc)
            .map(|(n, a)| (n.clone(), a as f64 / 2f64.powi(64)))
            .collect()
    }
}

/// A fresh incarnation nonce: strictly increasing across restarts of the
/// same address (wall-clock nanoseconds), `max`-combined with any prior
/// value when refuting a death claim.
fn fresh_incarnation() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1)
        .max(1)
}

/// What the node knows about one peer: its gossiped info plus local
/// failure-detection state.
struct PeerEntry {
    info: NodeInfo,
    /// When this node last saw evidence of life (direct contact, or a
    /// merged heartbeat advance). `None` for seeds never heard from.
    last_heard: Option<Instant>,
}

/// Membership + ring, mutated together so ownership lookups always see a
/// ring consistent with the peer map.
struct Members {
    peers: HashMap<String, PeerEntry>,
    ring: HashRing,
}

impl Members {
    fn rebuild(&mut self, advertise: &str, virtual_nodes: usize) {
        let mut alive: Vec<String> = self
            .peers
            .values()
            .filter(|p| p.info.alive)
            .map(|p| p.info.addr.clone())
            .collect();
        alive.push(advertise.to_string());
        self.ring = HashRing::new(alive, virtual_nodes);
    }
}

/// One pooled peer connection, lazily dialed and dropped on any
/// transport error so the next use re-dials.
type ConnSlot = Arc<Mutex<Option<Client<TcpStream>>>>;

/// Node-global membership summary for the stats rollup.
pub(crate) struct ClusterSummary {
    pub(crate) alive: u64,
    pub(crate) dead: u64,
    pub(crate) rounds: u64,
}

/// This node's view of its fleet: the gossiped peer map, the consistent-
/// hash ring derived from it, and the pooled peer connections forwarding
/// rides on. Owned by the [`crate::Service`]; one per process.
pub struct Cluster {
    advertise: String,
    virtual_nodes: usize,
    gossip_interval: Duration,
    peer_fail_after: Duration,
    connect_timeout: Duration,
    op_timeout: Duration,
    incarnation: AtomicU64,
    heartbeat: AtomicU64,
    gossip_rounds: AtomicU64,
    members: Mutex<Members>,
    conns: Mutex<HashMap<String, ConnSlot>>,
    stop: Arc<AtomicBool>,
    gossip_thread: Mutex<Option<JoinHandle<()>>>,
}

impl Cluster {
    /// Builds the membership state (seeds start dead-until-heard) and
    /// spawns the gossip thread. `pinballs` supplies the local store
    /// summary gossiped in this node's [`NodeInfo`].
    pub(crate) fn start(
        advertise: String,
        seeds: Vec<String>,
        config: &ServeConfig,
        pinballs: Box<dyn Fn() -> u64 + Send + Sync>,
    ) -> Arc<Cluster> {
        let mut peers = HashMap::new();
        for seed in seeds {
            if seed == advertise || seed.is_empty() {
                continue;
            }
            peers.insert(
                seed.clone(),
                PeerEntry {
                    info: NodeInfo {
                        addr: seed,
                        incarnation: 0,
                        heartbeat: 0,
                        alive: false,
                        pinballs: 0,
                    },
                    last_heard: None,
                },
            );
        }
        let virtual_nodes = config.virtual_nodes.max(1);
        let mut members = Members {
            peers,
            ring: HashRing::new(Vec::new(), virtual_nodes),
        };
        members.rebuild(&advertise, virtual_nodes);
        let cluster = Arc::new(Cluster {
            advertise,
            virtual_nodes,
            gossip_interval: config.gossip_interval.max(Duration::from_millis(10)),
            peer_fail_after: config.peer_fail_after.max(Duration::from_millis(50)),
            connect_timeout: config.peer_connect_timeout.max(Duration::from_millis(10)),
            op_timeout: config.peer_op_timeout.max(Duration::from_millis(100)),
            incarnation: AtomicU64::new(fresh_incarnation()),
            heartbeat: AtomicU64::new(0),
            gossip_rounds: AtomicU64::new(0),
            members: Mutex::new(members),
            conns: Mutex::new(HashMap::new()),
            stop: Arc::new(AtomicBool::new(false)),
            gossip_thread: Mutex::new(None),
        });
        let handle = {
            let cluster = Arc::clone(&cluster);
            thread::spawn(move || gossip_loop(&cluster, &pinballs))
        };
        *cluster.gossip_thread.lock().expect("gossip handle lock") = Some(handle);
        cluster
    }

    /// Stops and joins the gossip thread. Idempotent.
    pub(crate) fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self
            .gossip_thread
            .lock()
            .expect("gossip handle lock")
            .take()
        {
            let _ = handle.join();
        }
    }

    /// The owner of `digest` when it is *not* this node.
    pub(crate) fn remote_owner(&self, digest: PinballDigest) -> Option<String> {
        let members = self.members.lock().expect("members lock");
        match members.ring.owner(digest) {
            Some(addr) if addr != self.advertise => Some(addr.to_string()),
            _ => None,
        }
    }

    /// Alive peers (this node excluded), owner of `prefer` first — the
    /// candidate order for fetch-through and re-warm.
    pub(crate) fn fetch_candidates(&self, digest: PinballDigest) -> Vec<String> {
        let members = self.members.lock().expect("members lock");
        let owner = members
            .ring
            .owner(digest)
            .filter(|a| *a != self.advertise)
            .map(str::to_string);
        let mut out: Vec<String> = Vec::new();
        if let Some(owner) = owner {
            out.push(owner);
        }
        for p in members.peers.values() {
            if p.info.alive && !out.contains(&p.info.addr) {
                out.push(p.info.addr.clone());
            }
        }
        out
    }

    /// This node's current view — self first, then every known peer.
    pub(crate) fn local_view(&self, pinballs: u64) -> Vec<NodeInfo> {
        let members = self.members.lock().expect("members lock");
        let mut view = Vec::with_capacity(1 + members.peers.len());
        view.push(NodeInfo {
            addr: self.advertise.clone(),
            incarnation: self.incarnation.load(Ordering::SeqCst),
            heartbeat: self.heartbeat.load(Ordering::SeqCst),
            alive: true,
            pinballs,
        });
        view.extend(members.peers.values().map(|p| p.info.clone()));
        view
    }

    /// The [`Response::PeerView`] this node serves for `Gossip`/`PeerMap`.
    pub(crate) fn peer_view(&self, pinballs: u64) -> Response {
        Response::PeerView {
            self_addr: self.advertise.clone(),
            virtual_nodes: self.virtual_nodes as u64,
            nodes: self.local_view(pinballs),
        }
    }

    /// Node-global counters for the stats rollup.
    pub(crate) fn summary(&self) -> ClusterSummary {
        let members = self.members.lock().expect("members lock");
        let alive = 1 + members.peers.values().filter(|p| p.info.alive).count() as u64;
        let dead = members.peers.len() as u64 + 1 - alive;
        ClusterSummary {
            alive,
            dead,
            rounds: self.gossip_rounds.load(Ordering::Relaxed),
        }
    }

    /// Merges an incoming view under the incarnation/heartbeat precedence
    /// rules ([`NodeInfo`]). `direct_from` names a peer this view arrived
    /// from over a live connection — direct contact is proof of life.
    pub(crate) fn merge(&self, view: &[NodeInfo], direct_from: Option<&str>) {
        let now = Instant::now();
        let mut members = self.members.lock().expect("members lock");
        let mut changed = false;
        for n in view {
            if n.addr == self.advertise {
                // Refute a death claim about ourselves: a fresh
                // incarnation outranks every circulating dead entry.
                if !n.alive && n.incarnation >= self.incarnation.load(Ordering::SeqCst) {
                    self.incarnation
                        .fetch_max(n.incarnation.max(fresh_incarnation()) + 1, Ordering::SeqCst);
                }
                continue;
            }
            if n.addr.is_empty() {
                continue;
            }
            match members.peers.get_mut(&n.addr) {
                None => {
                    changed |= n.alive;
                    members.peers.insert(
                        n.addr.clone(),
                        PeerEntry {
                            info: n.clone(),
                            last_heard: n.alive.then_some(now),
                        },
                    );
                }
                Some(entry) => {
                    let cur = &mut entry.info;
                    if n.incarnation > cur.incarnation {
                        changed |= cur.alive != n.alive;
                        *cur = n.clone();
                        entry.last_heard = Some(now);
                    } else if n.incarnation == cur.incarnation {
                        if n.heartbeat > cur.heartbeat {
                            // Heartbeat progress: fresher evidence, adopt
                            // its liveness verdict (this is what revives a
                            // false positive).
                            changed |= cur.alive != n.alive;
                            cur.heartbeat = n.heartbeat;
                            cur.pinballs = n.pinballs;
                            cur.alive = n.alive;
                            entry.last_heard = Some(now);
                        } else if n.heartbeat == cur.heartbeat && !n.alive && cur.alive {
                            // Same evidence, dead claim wins: only
                            // heartbeat progress revives.
                            cur.alive = false;
                            changed = true;
                        }
                    }
                }
            }
        }
        if let Some(addr) = direct_from {
            if let Some(entry) = members.peers.get_mut(addr) {
                entry.last_heard = Some(now);
                if !entry.info.alive {
                    entry.info.alive = true;
                    changed = true;
                }
            }
        }
        if changed {
            members.rebuild(&self.advertise, self.virtual_nodes);
        }
    }

    /// Marks a peer dead after a transport failure, so routing moves off
    /// it immediately instead of waiting out the heartbeat timeout.
    fn mark_dead(&self, addr: &str) {
        let mut members = self.members.lock().expect("members lock");
        if let Some(entry) = members.peers.get_mut(addr) {
            if entry.info.alive {
                entry.info.alive = false;
                members.rebuild(&self.advertise, self.virtual_nodes);
            }
        }
    }

    /// Times out peers whose heartbeat stopped progressing.
    fn sweep(&self) {
        let mut members = self.members.lock().expect("members lock");
        let mut changed = false;
        for entry in members.peers.values_mut() {
            if entry.info.alive
                && entry
                    .last_heard
                    .is_none_or(|at| at.elapsed() > self.peer_fail_after)
            {
                entry.info.alive = false;
                changed = true;
            }
        }
        if changed {
            members.rebuild(&self.advertise, self.virtual_nodes);
        }
    }

    /// The next gossip partner: rotates over alive peers plus seeds never
    /// contacted (so bootstrap keeps retrying a down seed).
    fn pick_target(&self, round: u64) -> Option<String> {
        let members = self.members.lock().expect("members lock");
        let candidates: Vec<&String> = members
            .peers
            .iter()
            .filter(|(_, p)| p.info.alive || p.info.incarnation == 0)
            .map(|(addr, _)| addr)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        // Deterministic rotation; mix64 decorrelates it from the
        // candidate count so two nodes with the same list don't sync up.
        let ix =
            (mix64(round ^ self.incarnation.load(Ordering::SeqCst)) as usize) % candidates.len();
        Some(candidates[ix].clone())
    }

    fn dial(&self, addr: &str) -> Result<Client<TcpStream>, ServeError> {
        let peer_err = |reason: String| ServeError::Peer {
            addr: addr.to_string(),
            reason,
        };
        let sock_addr = addr
            .to_socket_addrs()
            .map_err(|e| peer_err(format!("resolve: {e}")))?
            .next()
            .ok_or_else(|| peer_err("resolve: no address".to_string()))?;
        let stream = TcpStream::connect_timeout(&sock_addr, self.connect_timeout)
            .map_err(|e| peer_err(format!("connect: {e}")))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.op_timeout));
        let _ = stream.set_write_timeout(Some(self.op_timeout));
        // Busy at the owner (its shard queue or pool is full) is absorbed
        // by a short bounded retry before surfacing to our client.
        Ok(Client::new(stream).with_retry(RetryPolicy::new(3, 100)))
    }

    /// Runs `f` on the pooled connection to `addr`, dialing if needed.
    /// Transport failures drop the connection, mark the peer dead, and
    /// surface as the retryable [`ServeError::Peer`]; typed server errors
    /// pass through with the connection kept.
    fn with_conn<T>(
        &self,
        addr: &str,
        f: impl FnOnce(&mut Client<TcpStream>) -> Result<T, ClientError>,
    ) -> Result<T, ServeError> {
        let slot = {
            let mut conns = self.conns.lock().expect("peer conns lock");
            Arc::clone(conns.entry(addr.to_string()).or_default())
        };
        let mut guard = slot.lock().expect("peer conn lock");
        if guard.is_none() {
            match self.dial(addr) {
                Ok(client) => *guard = Some(client),
                Err(e) => {
                    self.mark_dead(addr);
                    return Err(e);
                }
            }
        }
        let client = guard.as_mut().expect("connection just ensured");
        match f(client) {
            Ok(v) => Ok(v),
            Err(ClientError::Server(e)) => Err(e),
            Err(e) => {
                *guard = None;
                drop(guard);
                self.mark_dead(addr);
                Err(ServeError::Peer {
                    addr: addr.to_string(),
                    reason: e.to_string(),
                })
            }
        }
    }

    /// One gossip exchange with `addr`: offer our view, merge the reply.
    fn gossip_with(&self, addr: &str, view: Vec<NodeInfo>) {
        // with_conn already marked the peer dead on transport failure.
        if let Ok(reply) = self.with_conn(addr, |c| c.gossip(view)) {
            self.merge(&reply.nodes, Some(addr));
        }
    }

    /// Forwards a resolved slice request to the digest's owner. On the
    /// owner's `UnknownPinball` (it restarted, or just took over the
    /// range), pushes our stored container once and retries — the
    /// re-warm path for rejoining owners.
    pub(crate) fn forward_slice(
        &self,
        addr: &str,
        digest: PinballDigest,
        criterion: Criterion,
        options: &SliceOptions,
        push: impl FnOnce() -> Option<(Program, Vec<u8>)>,
    ) -> Result<SliceReply, ServeError> {
        let mut push = Some(push);
        loop {
            let r = self.with_conn(addr, |c| c.peer_slice(digest, criterion, options.clone()));
            match r {
                Err(ServeError::UnknownPinball { .. }) if push.is_some() => {
                    let supply = push.take().expect("push closure present");
                    self.push_container(addr, digest, supply)?;
                }
                other => return other,
            }
        }
    }

    /// Forwards a resolved relog request, with the same push-and-retry
    /// re-warm as [`Cluster::forward_slice`].
    pub(crate) fn forward_relog(
        &self,
        addr: &str,
        digest: PinballDigest,
        criterion: Criterion,
        options: &SliceOptions,
        push: impl FnOnce() -> Option<(Program, Vec<u8>)>,
    ) -> Result<RelogReply, ServeError> {
        let mut push = Some(push);
        loop {
            let r = self.with_conn(addr, |c| c.peer_relog(digest, criterion, options.clone()));
            match r {
                Err(ServeError::UnknownPinball { .. }) if push.is_some() => {
                    let supply = push.take().expect("push closure present");
                    self.push_container(addr, digest, supply)?;
                }
                other => return other,
            }
        }
    }

    fn push_container(
        &self,
        addr: &str,
        digest: PinballDigest,
        supply: impl FnOnce() -> Option<(Program, Vec<u8>)>,
    ) -> Result<(), ServeError> {
        let Some((program, bytes)) = supply() else {
            return Err(ServeError::UnknownPinball { digest });
        };
        self.with_conn(addr, |c| c.upload_bytes(&program, bytes).map(|_| ()))
    }

    /// Forwards an upload to the digest's owner.
    pub(crate) fn forward_upload(
        &self,
        addr: &str,
        program: &Program,
        bytes: Vec<u8>,
    ) -> Result<Uploaded, ServeError> {
        self.with_conn(addr, |c| c.upload_bytes(program, bytes))
    }

    /// Probes whether a peer's *local* store holds `digest` — the
    /// transfer-dedupe check ahead of a fetch. Uses the peer-only op so
    /// the receiver never forwards it onward.
    pub(crate) fn forward_probe(
        &self,
        addr: &str,
        digest: PinballDigest,
    ) -> Result<bool, ServeError> {
        self.with_conn(addr, |c| c.peer_probe(digest))
    }

    /// Pulls a stored pinball (program + container bytes) from a peer.
    pub(crate) fn fetch_stored(
        &self,
        addr: &str,
        digest: PinballDigest,
    ) -> Result<(Program, Vec<u8>), ServeError> {
        self.with_conn(addr, |c| c.fetch_stored(digest))
    }
}

/// The gossip thread: once per interval, bump the heartbeat, time out
/// silent peers, and run one anti-entropy exchange.
fn gossip_loop(cluster: &Arc<Cluster>, pinballs: &(dyn Fn() -> u64 + Send + Sync)) {
    let tick = Duration::from_millis(10);
    loop {
        let deadline = Instant::now() + cluster.gossip_interval;
        while Instant::now() < deadline {
            if cluster.stop.load(Ordering::SeqCst) {
                return;
            }
            thread::sleep(tick.min(cluster.gossip_interval));
        }
        cluster.heartbeat.fetch_add(1, Ordering::SeqCst);
        cluster.sweep();
        let round = cluster.gossip_rounds.fetch_add(1, Ordering::Relaxed);
        if let Some(target) = cluster.pick_target(round) {
            let view = cluster.local_view(pinballs());
            cluster.gossip_with(&target, view);
        }
    }
}

/// A session opened through a [`FleetClient`]: the owning node's address
/// plus the per-node session id. Session ids are per-node counters, so
/// the address is part of the handle.
#[derive(Debug, Clone)]
pub struct FleetSession {
    /// The node the session lives on.
    pub addr: String,
    /// The session id on that node.
    pub id: SessionId,
}

/// A digest-aware fleet client: fetches the peer map once, builds the
/// same [`HashRing`] the servers use, and routes every digest-keyed
/// request straight to its owner — zero forwarding hops on the hot path.
/// Follows [`Redirect`](crate::Response::Redirect) answers (a stale map)
/// and exposes [`FleetClient::refresh`] to re-fetch the map after
/// membership changes. Against a standalone (non-fleet) node it
/// degrades to a plain single-server client.
pub struct FleetClient {
    conns: HashMap<String, Client<TcpStream>>,
    ring: HashRing,
    nodes: Vec<NodeInfo>,
    virtual_nodes: u64,
    seed: String,
}

fn io_err(e: std::io::Error) -> ClientError {
    ClientError::Transport(RecvError::Io(e.to_string()))
}

impl FleetClient {
    /// Connects to any fleet node and learns the peer map from it.
    ///
    /// # Errors
    ///
    /// Connect and transport failures as [`ClientError::Transport`].
    pub fn connect(seed: &str) -> Result<FleetClient, ClientError> {
        let mut fc = FleetClient {
            conns: HashMap::new(),
            ring: HashRing::new(Vec::new(), 1),
            nodes: Vec::new(),
            virtual_nodes: 0,
            seed: seed.to_string(),
        };
        fc.refresh()?;
        Ok(fc)
    }

    /// Re-fetches the peer map from the seed (or the first reachable
    /// known node) and rebuilds the routing ring.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] when no node answers.
    pub fn refresh(&mut self) -> Result<(), ClientError> {
        let mut candidates: Vec<String> = vec![self.seed.clone()];
        candidates.extend(
            self.nodes
                .iter()
                .filter(|n| n.alive)
                .map(|n| n.addr.clone()),
        );
        let mut last_err = None;
        for addr in candidates {
            match self.conn(&addr).and_then(|c| c.peer_map()) {
                Ok(view) => {
                    self.install(view);
                    return Ok(());
                }
                Err(e) => {
                    self.conns.remove(&addr);
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or(ClientError::Protocol("no fleet nodes known".to_string())))
    }

    fn install(&mut self, view: PeerMapReply) {
        let alive: Vec<String> = view
            .nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.addr.clone())
            .collect();
        self.virtual_nodes = view.virtual_nodes;
        self.ring = HashRing::new(alive, view.virtual_nodes.max(1) as usize);
        self.nodes = view.nodes;
        if !view.self_addr.is_empty() && view.self_addr != self.seed {
            // Key the seed connection under its advertised name so ring
            // lookups and the connection pool agree on addresses.
            if let Some(c) = self.conns.remove(&self.seed) {
                self.conns.entry(view.self_addr.clone()).or_insert(c);
            }
            self.seed = view.self_addr;
        }
    }

    /// The fleet's current peer map as last fetched.
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// The routing ring built from the peer map.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The node that owns `digest` under the current map (the seed when
    /// the fleet is a single standalone node).
    pub fn owner_of(&self, digest: PinballDigest) -> String {
        self.ring
            .owner(digest)
            .map(str::to_string)
            .unwrap_or_else(|| self.seed.clone())
    }

    fn conn(&mut self, addr: &str) -> Result<&mut Client<TcpStream>, ClientError> {
        if !self.conns.contains_key(addr) {
            let client = crate::server::connect(addr).map_err(io_err)?;
            self.conns.insert(addr.to_string(), client);
        }
        Ok(self.conns.get_mut(addr).expect("connection just inserted"))
    }

    /// Uploads container bytes to the digest's owner.
    ///
    /// # Errors
    ///
    /// As for [`Client::upload_bytes`].
    pub fn upload_bytes(
        &mut self,
        program: &Program,
        container: Vec<u8>,
    ) -> Result<Uploaded, ClientError> {
        let digest = PinballContainer::from_bytes(&container)
            .map_err(|e| ClientError::Protocol(format!("container decode: {e}")))?
            .digest();
        let owner = self.owner_of(digest);
        self.conn(&owner)?.upload_bytes(program, container)
    }

    /// Wraps a pinball in a container and uploads it to its owner.
    ///
    /// # Errors
    ///
    /// As for [`FleetClient::upload_bytes`].
    pub fn upload(
        &mut self,
        program: &Program,
        pinball: &Pinball,
    ) -> Result<Uploaded, ClientError> {
        let bytes = PinballContainer::new(pinball.clone())
            .to_bytes()
            .map_err(|e| ClientError::Protocol(format!("container encode: {e}")))?;
        self.upload_bytes(program, bytes)
    }

    /// Streams a container to the digest's owner in resumable chunks,
    /// following one [`Redirect`](crate::Response::Redirect) if the local
    /// map turns out stale.
    ///
    /// # Errors
    ///
    /// As for [`Client::upload_streamed`].
    pub fn upload_streamed(
        &mut self,
        program: &Program,
        container: &PinballContainer,
        chunks: usize,
    ) -> Result<Uploaded, ClientError> {
        let owner = self.owner_of(container.digest());
        match self
            .conn(&owner)?
            .upload_streamed(program, container, chunks)
        {
            Err(ClientError::Redirected { addr }) => {
                let moved = addr.clone();
                self.conn(&moved)?
                    .upload_streamed(program, container, chunks)
            }
            other => other,
        }
    }

    /// Opens a session on the digest's owner.
    ///
    /// # Errors
    ///
    /// As for [`Client::open`].
    pub fn open(&mut self, digest: PinballDigest) -> Result<FleetSession, ClientError> {
        let owner = self.owner_of(digest);
        let id = self.conn(&owner)?.open(digest)?;
        Ok(FleetSession { addr: owner, id })
    }

    /// Computes a slice on the session's node (the digest's owner, so the
    /// request never forwards).
    ///
    /// # Errors
    ///
    /// As for [`Client::compute_slice`].
    pub fn compute_slice(
        &mut self,
        session: &FleetSession,
        at: SliceAt,
        options: SliceOptions,
    ) -> Result<SliceReply, ClientError> {
        let addr = session.addr.clone();
        self.conn(&addr)?.compute_slice(session.id, at, options)
    }

    /// Relogs a slice pinball on the session's node.
    ///
    /// # Errors
    ///
    /// As for [`Client::relog`].
    pub fn relog(
        &mut self,
        session: &FleetSession,
        at: SliceAt,
        options: SliceOptions,
    ) -> Result<RelogReply, ClientError> {
        let addr = session.addr.clone();
        self.conn(&addr)?.relog(session.id, at, options)
    }

    /// Closes a fleet session.
    ///
    /// # Errors
    ///
    /// As for [`Client::close`].
    pub fn close(&mut self, session: &FleetSession) -> Result<(), ClientError> {
        let addr = session.addr.clone();
        self.conn(&addr)?.close(session.id)
    }

    /// Downloads a stored container from the digest's owner.
    ///
    /// # Errors
    ///
    /// As for [`Client::fetch`].
    pub fn fetch(&mut self, digest: PinballDigest) -> Result<Vec<u8>, ClientError> {
        let owner = self.owner_of(digest);
        self.conn(&owner)?.fetch(digest)
    }

    /// Asks the digest's owner whether it stores the pinball.
    ///
    /// # Errors
    ///
    /// As for [`Client::probe`].
    pub fn probe(&mut self, digest: PinballDigest) -> Result<bool, ClientError> {
        let owner = self.owner_of(digest);
        self.conn(&owner)?.probe(digest)
    }

    /// One node's stats snapshot.
    ///
    /// # Errors
    ///
    /// As for [`Client::stats`].
    pub fn stats_of(&mut self, addr: &str) -> Result<ServeStats, ClientError> {
        self.conn(addr)?.stats()
    }

    /// Stats of every alive node, keyed by address.
    ///
    /// # Errors
    ///
    /// The first node that fails to answer.
    pub fn stats_all(&mut self) -> Result<Vec<(String, ServeStats)>, ClientError> {
        let addrs: Vec<String> = if self.nodes.is_empty() {
            vec![self.seed.clone()]
        } else {
            self.nodes
                .iter()
                .filter(|n| n.alive)
                .map(|n| n.addr.clone())
                .collect()
        };
        let mut out = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let stats = self.conn(&addr)?.stats()?;
            out.push((addr, stats));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7070")).collect()
    }

    #[test]
    fn ring_is_deterministic_and_order_insensitive() {
        let mut shuffled = addrs(5);
        shuffled.reverse();
        let a = HashRing::new(addrs(5), 64);
        let b = HashRing::new(shuffled, 64);
        for d in 0..200u64 {
            assert_eq!(
                a.owner(PinballDigest(d)),
                b.owner(PinballDigest(d)),
                "ownership must not depend on member order"
            );
        }
        assert_eq!(a.nodes(), b.nodes());
    }

    #[test]
    fn empty_and_single_rings() {
        let empty = HashRing::new(Vec::new(), 64);
        assert!(empty.is_empty());
        assert_eq!(empty.owner(PinballDigest(1)), None);
        assert!(empty.shares().is_empty());
        let one = HashRing::new(vec!["a:1".to_string()], 64);
        assert_eq!(one.len(), 1);
        for d in [0u64, 1, u64::MAX] {
            assert_eq!(one.owner(PinballDigest(d)), Some("a:1"));
        }
        let shares = one.shares();
        assert!((shares[0].1 - 1.0).abs() < 1e-12, "single node owns all");
    }

    #[test]
    fn shares_sum_to_one() {
        let ring = HashRing::new(addrs(4), 128);
        let total: f64 = ring.shares().iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9, "arc shares cover the circle");
    }

    #[test]
    fn merge_precedence_incarnation_then_heartbeat() {
        let cluster = Cluster::start(
            "10.0.0.0:1".to_string(),
            Vec::new(),
            &ServeConfig {
                gossip_interval: Duration::from_secs(3600),
                ..ServeConfig::default()
            },
            Box::new(|| 0),
        );
        let node = |inc: u64, hb: u64, alive: bool| NodeInfo {
            addr: "10.0.0.9:1".to_string(),
            incarnation: inc,
            heartbeat: hb,
            alive,
            pinballs: 0,
        };
        cluster.merge(&[node(5, 1, true)], None);
        assert_eq!(cluster.summary().alive, 2);
        // Same incarnation, same heartbeat, dead claim: dead sticks.
        cluster.merge(&[node(5, 1, false)], None);
        assert_eq!(cluster.summary().alive, 1);
        // Stale alive (no heartbeat progress) does not revive.
        cluster.merge(&[node(5, 1, true)], None);
        assert_eq!(cluster.summary().alive, 1);
        // Heartbeat progress revives.
        cluster.merge(&[node(5, 2, true)], None);
        assert_eq!(cluster.summary().alive, 2);
        // Higher incarnation wins outright, even marked dead.
        cluster.merge(&[node(6, 0, false)], None);
        assert_eq!(cluster.summary().alive, 1);
        // Restart: fresh incarnation replaces the dead entry.
        cluster.merge(&[node(7, 0, true)], None);
        assert_eq!(cluster.summary().alive, 2);
        cluster.shutdown();
    }

    #[test]
    fn self_death_claim_bumps_incarnation() {
        let cluster = Cluster::start(
            "10.0.0.0:1".to_string(),
            Vec::new(),
            &ServeConfig {
                gossip_interval: Duration::from_secs(3600),
                ..ServeConfig::default()
            },
            Box::new(|| 0),
        );
        let before = cluster.incarnation.load(Ordering::SeqCst);
        cluster.merge(
            &[NodeInfo {
                addr: "10.0.0.0:1".to_string(),
                incarnation: before,
                heartbeat: 99,
                alive: false,
                pinballs: 0,
            }],
            None,
        );
        assert!(
            cluster.incarnation.load(Ordering::SeqCst) > before,
            "a node seeing itself declared dead must refute with a fresh incarnation"
        );
        cluster.shutdown();
    }
}
