//! Server-side request metrics.
//!
//! Every handled request is observed once — op name, wall-clock latency,
//! whether it errored — and the aggregate is snapshotted on demand by the
//! `Stats` request. Counters are plain atomics; per-op latency lives
//! behind a short-lived mutex keyed by the static op name.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::proto::{OpStats, ServeStats};

/// Accumulates request counts and per-operation latency.
pub struct ServeMetrics {
    started: Instant,
    requests: AtomicU64,
    errors: AtomicU64,
    per_op: Mutex<HashMap<&'static str, OpStats>>,
}

impl ServeMetrics {
    /// Starts the uptime clock.
    pub fn new() -> ServeMetrics {
        ServeMetrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            per_op: Mutex::new(HashMap::new()),
        }
    }

    /// Records one handled request.
    pub fn observe(&self, op: &'static str, elapsed: Duration, errored: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if errored {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let micros = elapsed.as_micros() as u64;
        let mut per_op = self.per_op.lock().expect("metrics lock");
        let entry = per_op.entry(op).or_default();
        entry.count += 1;
        entry.total_micros += micros;
        entry.max_micros = entry.max_micros.max(micros);
    }

    /// Snapshots the request-side numbers (ops sorted by name for stable
    /// output); the caller fills in cache/session/pinball state.
    pub fn snapshot(&self) -> ServeStats {
        let mut per_op: Vec<(String, OpStats)> = self
            .per_op
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(name, stats)| (name.to_string(), *stats))
            .collect();
        per_op.sort_by(|a, b| a.0.cmp(&b.0));
        ServeStats {
            uptime_micros: self.started.elapsed().as_micros() as u64,
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            per_op,
            ..ServeStats::default()
        }
    }
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        ServeMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_aggregate_per_op() {
        let m = ServeMetrics::new();
        m.observe("slice", Duration::from_micros(100), false);
        m.observe("slice", Duration::from_micros(300), false);
        m.observe("open", Duration::from_micros(5), true);
        let snap = m.snapshot();
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.errors, 1);
        let slice = snap.op("slice").expect("slice observed");
        assert_eq!(slice.count, 2);
        assert_eq!(slice.total_micros, 400);
        assert_eq!(slice.max_micros, 300);
        assert_eq!(slice.mean_micros(), 200);
        assert_eq!(snap.op("open").expect("open observed").count, 1);
        assert!(snap.op("seek").is_none());
    }
}
