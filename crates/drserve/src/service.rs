//! The transport-agnostic service layer: sharded request execution with
//! queue-depth admission control and small-request batching.
//!
//! [`Service`] is what [`crate::Server`] used to be, minus every byte of
//! I/O. It owns N worker *shards* (default: one per CPU), each a single
//! worker thread with its own [`SessionManager`], [`SliceCache`],
//! [`IndexCache`], [`RelogCache`], and [`ServeMetrics`] — shared-nothing,
//! so a slice computation on one shard never contends with another
//! shard's locks. The only cross-shard state is the content-addressed
//! [`PinballStore`] (lock-striped) and the `Stats` rollup.
//!
//! **Routing** is deterministic and stateless: requests naming a pinball
//! digest go to shard `digest % N`; session ids are allocated so that
//! `id % N` recovers the owning shard (see [`SessionManager::with_ids`]);
//! uploads and `Stats` round-robin (uploads only touch the global store).
//! The same digest therefore always lands on the same shard, which is
//! what keeps the single-flight index/relog caches effective: all clients
//! asking about one pinball funnel into one shard and share one build.
//!
//! **Admission control** is a per-shard depth counter checked *before*
//! the bounded queue: a submit that would exceed `queue_capacity` is
//! rejected immediately with [`ServeError::Busy`] whose
//! `retry_after_ms` hint scales with the backlog ([`retry_hint`]) —
//! load-shedding with a typed answer, never a blocked dispatcher or an
//! unbounded queue.
//!
//! **Batching**: a worker wakes up, takes everything queued (up to
//! `batch_max`), and answers the batch in one pass. Small read-only
//! requests benefit the most — every `Stats` in a batch shares one
//! metrics rollup and one *encoded response frame* (an `Arc<Vec<u8>>`
//! written verbatim to each connection), so a fleet polling stats costs
//! one snapshot + one encode per batch instead of per request.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use minivm::Program;
use pinplay::{PinballContainer, PinballDigest, StreamReader};
use slicer::{
    compute_slice_indexed, Criterion, DepIndex, GlobalTrace, SliceOptions, SliceSession,
    SlicerOptions,
};

use crate::cache::{IndexCache, RelogCache, RelogOutcome, SliceCache};
use crate::cluster::Cluster;
use crate::metrics::ServeMetrics;
use crate::pool::SessionManager;
use crate::proto::{
    self, ClusterStats, OpStats, Request, Response, ServeError, ServeStats, ShardStats, SliceAt,
    WireBreakpoint, WireSlice, RESPONSE_KIND,
};
use crate::server::ServeConfig;
use crate::store::PinballStore;

/// Computes the [`ServeError::Busy`] back-off hint for a shard whose
/// queue holds `depth` admitted requests out of `capacity`.
///
/// The hint is `base` when the queue is empty and grows linearly to
/// `5 × base` at capacity — monotonically non-decreasing in `depth`, so a
/// client can read the hint as a direct signal of how backed up its shard
/// is and space retries accordingly.
pub fn retry_hint(base_ms: u64, depth: u64, capacity: u64) -> u64 {
    let base = base_ms.max(1);
    let cap = capacity.max(1);
    base + (4 * base * depth.min(cap)) / cap
}

/// A reply traveling from a worker shard back to the transport.
// One short-lived value per in-flight request; boxing the response to
// shrink the enum would cost an allocation on every reply.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Reply {
    /// A response the transport must encode itself.
    Response(Response),
    /// An already-encoded response frame, shared across a batch; the
    /// transport writes the bytes verbatim.
    Frame(Arc<Vec<u8>>),
}

/// One queued unit of work.
struct Job {
    request: Request,
    /// Whether the submitter can write a pre-encoded [`Reply::Frame`]
    /// directly to its stream. `false` for in-process callers that need a
    /// typed [`Response`] back.
    frame_ok: bool,
    reply: Sender<Reply>,
}

/// One worker shard's private state.
pub(crate) struct Shard {
    id: usize,
    pool: SessionManager,
    cache: SliceCache,
    index_cache: IndexCache,
    relog_cache: RelogCache,
    metrics: ServeMetrics,
    /// In-progress streaming uploads, keyed by client-chosen stream id.
    /// Every op naming a stream routes `stream % N`, so a stream lives
    /// entirely on one shard; the shard's single worker thread means the
    /// mutex is uncontended in practice.
    streams: Mutex<HashMap<u64, StreamState>>,
    /// Admitted-but-not-completed requests (the admission counter).
    depth: AtomicUsize,
    peak_depth: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    /// Fleet-traffic counters (zero on a standalone node).
    cluster: ClusterCounters,
    /// Sessions serving peer-forwarded requests, keyed by digest. Kept
    /// outside the client session pool so pool eviction never invalidates
    /// a peer's in-flight work; bounded by periodic clearing (cheap —
    /// the expensive artifacts live in the shard caches).
    peer_sessions: Mutex<HashMap<PinballDigest, Arc<Mutex<drdebug::DebugSession>>>>,
}

/// Per-shard fleet counters. The node-global fields of [`ClusterStats`]
/// (liveness, gossip rounds) are attached at rollup time.
#[derive(Default)]
struct ClusterCounters {
    forwards: AtomicU64,
    forward_errors: AtomicU64,
    redirects: AtomicU64,
    peer_cache_hits: AtomicU64,
    peer_fetches: AtomicU64,
    peer_pushes: AtomicU64,
}

impl ClusterCounters {
    fn snapshot(&self) -> ClusterStats {
        ClusterStats {
            forwards: self.forwards.load(Ordering::Relaxed),
            forward_errors: self.forward_errors.load(Ordering::Relaxed),
            redirects: self.redirects.load(Ordering::Relaxed),
            peer_cache_hits: self.peer_cache_hits.load(Ordering::Relaxed),
            peer_fetches: self.peer_fetches.load(Ordering::Relaxed),
            peer_pushes: self.peer_pushes.load(Ordering::Relaxed),
            ..ClusterStats::default()
        }
    }
}

/// One in-progress streaming upload, owned by its routing shard.
struct StreamState {
    program: Arc<Program>,
    reader: StreamReader,
    /// Chunks that arrived ahead of the high-water mark, buffered until
    /// the gap before them fills.
    pending: BTreeMap<u32, Vec<u8>>,
    /// High-water mark: chunks `0..next_seq` are absorbed contiguously.
    next_seq: u32,
    /// The store digest once the stream sealed and published.
    published: Option<PinballDigest>,
    /// Incremental slicing state, invalidated when the slice options
    /// fingerprint changes.
    slicing: Option<StreamSlicing>,
}

/// The incrementally-grown trace and dependence index of one stream.
///
/// Each `SliceStream` replays the absorbed prefix to re-collect its
/// records (replay is deterministic, so previously seen records come back
/// unchanged), then extends the cached trace and appends to the cached
/// index — paying index-build cost only for the new suffix.
struct StreamSlicing {
    fingerprint: u64,
    trace: GlobalTrace,
    index: DepIndex,
}

/// The absorption-state ack shared by `BeginStream`, `AppendChunk`, and
/// `StreamStatus`.
fn stream_ack(stream: u64, st: &StreamState, already_have: bool) -> Response {
    Response::StreamAck {
        stream,
        next_seq: st.next_seq,
        pending: st.pending.keys().copied().collect(),
        events: st.reader.events_absorbed() as u64,
        already_have,
    }
}

/// State shared by every worker and every `Service` clone.
struct ServiceState {
    shards: Vec<Arc<Shard>>,
    store: PinballStore,
    started: Instant,
    config: ServeConfig,
    /// Fleet membership + forwarding, installed once at listen time when
    /// the config opts into cluster mode. `None` = standalone node.
    cluster: OnceLock<Arc<Cluster>>,
}

struct QueueHandle {
    tx: Sender<Job>,
    shard: Arc<Shard>,
    capacity: usize,
}

struct ServiceInner {
    state: Arc<ServiceState>,
    queues: Vec<QueueHandle>,
    rr: AtomicUsize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for ServiceInner {
    fn drop(&mut self) {
        // Stop gossiping first so no new forwards start mid-shutdown.
        if let Some(cluster) = self.state.cluster.get() {
            cluster.shutdown();
        }
        // Dropping the senders disconnects every worker's receive loop;
        // join so no worker outlives the service.
        self.queues.clear();
        for handle in self.workers.lock().expect("worker handles lock").drain(..) {
            let _ = handle.join();
        }
    }
}

/// The sharded, transport-agnostic request executor. Cheap to clone; all
/// clones share the shards. Dropping the last clone shuts the workers
/// down.
#[derive(Clone)]
pub struct Service {
    inner: Arc<ServiceInner>,
}

impl Service {
    /// Builds the shards and spawns one worker thread per shard.
    pub fn new(config: ServeConfig) -> Service {
        let nshards = resolved_shards(&config);
        let capacity = config.queue_capacity.max(1);
        let batch_max = config.batch_max.max(1);
        let shards: Vec<Arc<Shard>> = (0..nshards)
            .map(|id| {
                Arc::new(Shard {
                    id,
                    // Shard `id` allocates session ids n+id, 2n+id, … so
                    // `session % nshards` recovers the owning shard.
                    pool: SessionManager::with_ids(
                        config.max_sessions,
                        config.idle_timeout,
                        config.retry_after_ms,
                        nshards as u64 + id as u64,
                        nshards as u64,
                    ),
                    cache: SliceCache::new(config.cache_capacity),
                    index_cache: IndexCache::new(config.index_cache_capacity),
                    relog_cache: RelogCache::new(config.relog_cache_capacity),
                    metrics: ServeMetrics::new(),
                    streams: Mutex::new(HashMap::new()),
                    depth: AtomicUsize::new(0),
                    peak_depth: AtomicU64::new(0),
                    shed: AtomicU64::new(0),
                    batches: AtomicU64::new(0),
                    cluster: ClusterCounters::default(),
                    peer_sessions: Mutex::new(HashMap::new()),
                })
            })
            .collect();
        let state = Arc::new(ServiceState {
            shards,
            store: PinballStore::new(nshards * 4),
            started: Instant::now(),
            config,
            cluster: OnceLock::new(),
        });
        let mut queues = Vec::with_capacity(nshards);
        let mut workers = Vec::with_capacity(nshards);
        for shard in &state.shards {
            let (tx, rx) = bounded::<Job>(capacity);
            queues.push(QueueHandle {
                tx,
                shard: Arc::clone(shard),
                capacity,
            });
            let state = Arc::clone(&state);
            let shard = Arc::clone(shard);
            workers.push(thread::spawn(move || {
                worker_loop(&state, &shard, &rx, batch_max)
            }));
        }
        Service {
            inner: Arc::new(ServiceInner {
                state,
                queues,
                rr: AtomicUsize::new(0),
                workers: Mutex::new(workers),
            }),
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.inner.state.shards.len()
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.state.config
    }

    /// Joins the fleet: builds the membership state and starts the gossip
    /// thread. Idempotent — the first call wins. Called by
    /// [`crate::Server::listen`] once the bound address is known.
    pub(crate) fn enable_cluster(&self, advertise: String, seeds: Vec<String>) {
        // The gossip thread holds only a Weak back-reference, so the
        // service's shutdown (which joins that thread) can still run.
        let weak = Arc::downgrade(&self.inner.state);
        self.inner.state.cluster.get_or_init(|| {
            Cluster::start(
                advertise,
                seeds,
                &self.inner.state.config,
                Box::new(move || weak.upgrade().map_or(0, |s| s.store.len())),
            )
        });
    }

    /// Which shard a request routes to.
    fn route(&self, request: &Request) -> usize {
        let n = self.inner.state.shards.len() as u64;
        let ix = match request {
            // Peer-forwarded ops route by digest like their client-facing
            // twins, so they land on the shard whose caches hold (or will
            // hold) the answer.
            Request::OpenSession { digest }
            | Request::FetchPinball { digest }
            | Request::ProbePinball { digest }
            | Request::PeerSlice { digest, .. }
            | Request::PeerRelog { digest, .. }
            | Request::FetchStored { digest }
            | Request::PeerProbe { digest } => digest.0 % n,
            // A stream lives entirely on one shard: its reader, pending
            // chunks, and incremental index are all shard-local.
            Request::BeginStream { stream, .. }
            | Request::AppendChunk { stream, .. }
            | Request::SealStream { stream, .. }
            | Request::StreamStatus { stream }
            | Request::Tail { stream }
            | Request::SliceStream { stream, .. } => stream % n,
            Request::Break { session, .. }
            | Request::Run { session }
            | Request::Seek { session, .. }
            | Request::ComputeSlice { session, .. }
            | Request::Relog { session, .. }
            | Request::BreakList { session }
            | Request::CloseSession { session } => session % n,
            // Uploads only touch the global store, Stats rolls up every
            // shard, and gossip only touches the cluster state: spread
            // them round-robin.
            Request::UploadPinball { .. }
            | Request::Stats
            | Request::Gossip { .. }
            | Request::PeerMap => self.inner.rr.fetch_add(1, Ordering::Relaxed) as u64 % n,
        };
        ix as usize
    }

    /// Admits a request onto its shard's queue, or sheds it.
    ///
    /// On admission the returned receiver yields exactly one [`Reply`].
    /// `frame_ok` tells the worker the caller can write a pre-encoded
    /// response frame verbatim (transports can; in-process callers
    /// cannot).
    ///
    /// # Errors
    ///
    /// [`ServeError::Busy`] with a backlog-scaled retry hint when the
    /// shard's queue is at capacity — the request was never enqueued.
    pub(crate) fn submit(
        &self,
        request: Request,
        frame_ok: bool,
    ) -> Result<Receiver<Reply>, ServeError> {
        let queue = &self.inner.queues[self.route(&request)];
        let shard = &queue.shard;
        let prev = shard.depth.fetch_add(1, Ordering::AcqRel);
        if prev >= queue.capacity {
            shard.depth.fetch_sub(1, Ordering::AcqRel);
            shard.shed.fetch_add(1, Ordering::Relaxed);
            shard.metrics.observe(request.op(), Duration::ZERO, true);
            return Err(ServeError::Busy {
                retry_after_ms: retry_hint(
                    self.inner.state.config.retry_after_ms,
                    prev as u64,
                    queue.capacity as u64,
                ),
            });
        }
        shard
            .peak_depth
            .fetch_max(prev as u64 + 1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = bounded(1);
        match queue.tx.try_send(Job {
            request,
            frame_ok,
            reply: reply_tx,
        }) {
            Ok(()) => Ok(reply_rx),
            // The channel bound equals the admission capacity, so `Full`
            // is unreachable; `Disconnected` means the service is
            // shutting down.
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                shard.depth.fetch_sub(1, Ordering::AcqRel);
                Err(ServeError::Busy {
                    retry_after_ms: self.inner.state.config.retry_after_ms,
                })
            }
        }
    }

    /// Executes one request to completion, blocking the caller. Every
    /// failure — including admission shed — is a typed
    /// [`Response::Error`].
    pub fn call(&self, request: Request) -> Response {
        match self.submit(request, false) {
            Ok(rx) => match rx.recv() {
                Ok(Reply::Response(response)) => response,
                // Workers never send frames to `frame_ok: false` callers.
                Ok(Reply::Frame(_)) | Err(_) => Response::Error(ServeError::BadRequest {
                    reason: "service shut down mid-request".to_string(),
                }),
            },
            Err(e) => Response::Error(e),
        }
    }

    /// Counts one malformed frame against the metrics (transports call
    /// this when framing fails before a request exists to route).
    pub(crate) fn observe_malformed(&self) {
        let n = self.inner.state.shards.len();
        let ix = self.inner.rr.fetch_add(1, Ordering::Relaxed) % n;
        self.inner.state.shards[ix]
            .metrics
            .observe("malformed", Duration::ZERO, true);
    }

    /// Rolls every shard up into one [`ServeStats`] snapshot, with the
    /// per-shard breakdown attached.
    pub fn stats(&self) -> ServeStats {
        rollup(&self.inner.state)
    }
}

fn resolved_shards(config: &ServeConfig) -> usize {
    if config.shards > 0 {
        config.shards
    } else {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    }
}

/// One worker shard's main loop: drain a batch, answer it, repeat.
fn worker_loop(state: &ServiceState, shard: &Shard, rx: &Receiver<Job>, batch_max: usize) {
    let mut batch: Vec<Job> = Vec::with_capacity(batch_max);
    loop {
        match rx.recv() {
            Ok(job) => batch.push(job),
            Err(_) => return, // all senders gone: shutdown
        }
        while batch.len() < batch_max {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        shard.batches.fetch_add(1, Ordering::Relaxed);
        // Every `Stats` in the batch shares one rollup — and, for
        // transports that can take it, one already-encoded frame.
        let mut stats_snapshot: Option<ServeStats> = None;
        let mut stats_frame: Option<Arc<Vec<u8>>> = None;
        for job in batch.drain(..) {
            let op = job.request.op();
            let started = Instant::now();
            let reply = if matches!(job.request, Request::Stats) {
                if job.frame_ok {
                    let frame = stats_frame.get_or_insert_with(|| {
                        let stats = stats_snapshot.get_or_insert_with(|| rollup(state)).clone();
                        Arc::new(encode_response(&Response::Stats(stats)))
                    });
                    Reply::Frame(Arc::clone(frame))
                } else {
                    let stats = stats_snapshot.get_or_insert_with(|| rollup(state)).clone();
                    Reply::Response(Response::Stats(stats))
                }
            } else {
                Reply::Response(execute(state, shard, job.request))
            };
            let errored = matches!(&reply, Reply::Response(Response::Error(_)));
            shard.metrics.observe(op, started.elapsed(), errored);
            shard.depth.fetch_sub(1, Ordering::AcqRel);
            // A dropped receiver (disconnected client) is not an error.
            let _ = job.reply.send(reply);
        }
    }
}

fn encode_response(response: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    // Writing into a Vec cannot fail.
    let _ = proto::write_message(&mut buf, RESPONSE_KIND, response);
    buf
}

fn execute(state: &ServiceState, shard: &Shard, request: Request) -> Response {
    match try_execute(state, shard, request) {
        Ok(response) => response,
        Err(e) => Response::Error(e),
    }
}

fn try_execute(
    state: &ServiceState,
    shard: &Shard,
    request: Request,
) -> Result<Response, ServeError> {
    match request {
        Request::UploadPinball { program, container } => {
            let container = Arc::new(PinballContainer::from_bytes(&container)?);
            let digest = container.digest();
            let instructions = container.pinball.logged_instructions();
            let deduped = state
                .store
                .insert_if_absent(digest, Arc::new(program), container);
            Ok(Response::Uploaded {
                digest,
                instructions,
                deduped,
            })
        }
        Request::OpenSession { digest } => {
            let (program, container) = fetch_into_store(state, shard, digest)?;
            let session = shard.pool.open(digest, move || {
                drdebug::DebugSession::with_shared_container(program, container)
            })?;
            Ok(Response::SessionOpened { session })
        }
        Request::Break { session, pc, tid } => {
            let (slot, _) = shard.pool.checkout(session)?;
            let id = slot.lock().expect("session lock").add_breakpoint(pc, tid);
            Ok(Response::BreakpointSet { id })
        }
        Request::BreakList { session } => {
            let (slot, _) = shard.pool.checkout(session)?;
            let guard = slot.lock().expect("session lock");
            let mut breakpoints: Vec<WireBreakpoint> = guard
                .breakpoints()
                .map(|(id, bp)| WireBreakpoint {
                    id,
                    pc: bp.pc,
                    tid: bp.tid,
                    enabled: bp.enabled,
                })
                .collect();
            breakpoints.sort_by_key(|b| b.id);
            Ok(Response::Breakpoints {
                session,
                breakpoints,
            })
        }
        Request::Run { session } => {
            let (slot, _) = shard.pool.checkout(session)?;
            let mut guard = slot.lock().expect("session lock");
            let reason = guard.cont();
            Ok(Response::Stopped {
                reason: reason.into(),
                position: guard.position(),
            })
        }
        Request::Seek { session, target } => {
            let (slot, _) = shard.pool.checkout(session)?;
            let mut guard = slot.lock().expect("session lock");
            let reason = guard.seek_to(target);
            Ok(Response::Stopped {
                reason: reason.into(),
                position: guard.position(),
            })
        }
        Request::ComputeSlice {
            session,
            at,
            options,
        } => {
            let started = Instant::now();
            let (slot, digest) = shard.pool.checkout(session)?;
            // The criterion resolves locally even when the digest is
            // owned elsewhere — `SliceAt::Here`/`Failure` need *this*
            // session's replay position, which only this node has. The
            // owner receives the resolved criterion form.
            let criterion = resolve_criterion(&slot, at)?;
            if let Some((cluster, owner)) = remote_owner(state, digest) {
                let fingerprint = options.fingerprint();
                // A hit here is a previously forwarded answer: repeat
                // questions answer locally without touching the owner.
                if let Some(hit) = shard.cache.get(digest, criterion, fingerprint) {
                    shard
                        .cluster
                        .peer_cache_hits
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(Response::Slice {
                        slice: (*hit).clone(),
                        cached: true,
                        micros: started.elapsed().as_micros() as u64,
                    });
                }
                shard.cluster.forwards.fetch_add(1, Ordering::Relaxed);
                let reply = cluster
                    .forward_slice(
                        &owner,
                        digest,
                        criterion,
                        &options,
                        push_supply(state, digest),
                    )
                    .inspect_err(|_| {
                        shard.cluster.forward_errors.fetch_add(1, Ordering::Relaxed);
                    })?;
                let wire = Arc::new(reply.slice);
                shard
                    .cache
                    .insert(digest, criterion, fingerprint, Arc::clone(&wire));
                return Ok(Response::Slice {
                    slice: (*wire).clone(),
                    cached: false,
                    micros: started.elapsed().as_micros() as u64,
                });
            }
            let (wire, cached) = slice_local(shard, &slot, digest, criterion, options);
            Ok(Response::Slice {
                slice: (*wire).clone(),
                cached,
                micros: started.elapsed().as_micros() as u64,
            })
        }
        Request::Relog {
            session,
            at,
            options,
        } => {
            let started = Instant::now();
            let (slot, digest) = shard.pool.checkout(session)?;
            let criterion = resolve_criterion(&slot, at)?;
            if let Some((cluster, owner)) = remote_owner(state, digest) {
                let fingerprint = options.fingerprint();
                if let Some(hit) = shard.relog_cache.peek(digest, criterion, fingerprint) {
                    shard
                        .cluster
                        .peer_cache_hits
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(Response::Relogged {
                        digest: hit.digest,
                        instructions: hit.report.instructions,
                        kept: hit.report.kept,
                        excluded: hit.report.excluded,
                        cached: true,
                        micros: started.elapsed().as_micros() as u64,
                    });
                }
                shard.cluster.forwards.fetch_add(1, Ordering::Relaxed);
                let r = cluster
                    .forward_relog(
                        &owner,
                        digest,
                        criterion,
                        &options,
                        push_supply(state, digest),
                    )
                    .inspect_err(|_| {
                        shard.cluster.forward_errors.fetch_add(1, Ordering::Relaxed);
                    })?;
                // Cache the owner's verdict so repeats answer locally.
                // The slice pinball itself stays at the owner; a local
                // open/fetch of `r.digest` pulls it through the store.
                shard.relog_cache.insert(
                    digest,
                    criterion,
                    fingerprint,
                    Arc::new(RelogOutcome {
                        digest: r.digest,
                        report: drdebug::RelogReport {
                            digest: r.digest,
                            instructions: r.instructions,
                            kept: r.kept,
                            excluded: r.excluded,
                            ..drdebug::RelogReport::default()
                        },
                        bytes: 0,
                    }),
                );
                return Ok(Response::Relogged {
                    digest: r.digest,
                    instructions: r.instructions,
                    kept: r.kept,
                    excluded: r.excluded,
                    cached: false,
                    micros: started.elapsed().as_micros() as u64,
                });
            }
            let (outcome, cached) = relog_local(state, shard, &slot, digest, criterion, options);
            Ok(Response::Relogged {
                digest: outcome.digest,
                instructions: outcome.report.instructions,
                kept: outcome.report.kept,
                excluded: outcome.report.excluded,
                cached,
                micros: started.elapsed().as_micros() as u64,
            })
        }
        Request::FetchPinball { digest } => {
            let (_, container) = fetch_into_store(state, shard, digest)?;
            let bytes = container.to_bytes()?;
            Ok(Response::PinballData {
                digest,
                container: bytes,
            })
        }
        // Batched in the worker loop; this arm only serves direct calls.
        Request::Stats => Ok(Response::Stats(rollup(state))),
        Request::CloseSession { session } => {
            shard.pool.close(session)?;
            Ok(Response::Closed { session })
        }
        Request::ProbePinball { digest } => {
            let mut known = state.store.program_of(digest).is_some();
            if !known {
                // Ask the digest's owner before answering "no": the probe
                // dedupes peer transfers exactly like it dedupes uploads.
                // A dead owner degrades to "unknown" rather than erroring
                // — the worst case is a redundant transfer.
                if let Some((cluster, owner)) = remote_owner(state, digest) {
                    shard.cluster.forwards.fetch_add(1, Ordering::Relaxed);
                    match cluster.forward_probe(&owner, digest) {
                        Ok(k) => known = k,
                        Err(_) => {
                            shard.cluster.forward_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            Ok(Response::Probed { digest, known })
        }
        Request::BeginStream {
            stream,
            program,
            expect_digest,
        } => {
            // Digest-first dedupe: when the client already knows the
            // container's digest and the store holds it, the body never
            // has to cross the wire.
            if let Some(digest) = expect_digest {
                if state.store.program_of(digest).is_some() {
                    return Ok(Response::StreamAck {
                        stream,
                        next_seq: 0,
                        pending: Vec::new(),
                        events: 0,
                        already_have: true,
                    });
                }
                // Fleet mode: a digest-announced stream belongs at its
                // owner. Redirecting before any chunk arrives means the
                // body crosses the wire once, straight to where digest
                // routing will look for it.
                if let Some((_, owner)) = remote_owner(state, digest) {
                    shard.cluster.redirects.fetch_add(1, Ordering::Relaxed);
                    return Ok(Response::Redirect { addr: owner });
                }
            }
            let mut streams = shard.streams.lock().expect("streams lock");
            let st = streams.entry(stream).or_insert_with(|| StreamState {
                program: Arc::new(program),
                reader: StreamReader::new(),
                pending: BTreeMap::new(),
                next_seq: 0,
                published: None,
                slicing: None,
            });
            // Re-sending BeginStream for an existing stream is the resume
            // path: the ack carries the high-water mark, so a reconnected
            // client learns exactly which chunks to resend.
            Ok(stream_ack(stream, st, false))
        }
        Request::AppendChunk { stream, seq, bytes } => {
            let mut streams = shard.streams.lock().expect("streams lock");
            let st = streams
                .get_mut(&stream)
                .ok_or(ServeError::UnknownStream { stream })?;
            // Duplicates below the high-water mark (a reconnected client
            // blindly resending) and stragglers after sealing are
            // acknowledged idempotently without touching the reader.
            if st.published.is_none() && seq >= st.next_seq {
                if seq == st.next_seq {
                    let absorbed = st.reader.absorb(&bytes).and_then(|()| {
                        st.next_seq += 1;
                        // The new chunk may have filled the gap in front
                        // of buffered out-of-order arrivals.
                        while let Some(buffered) = st.pending.remove(&st.next_seq) {
                            st.reader.absorb(&buffered)?;
                            st.next_seq += 1;
                        }
                        Ok(())
                    });
                    if let Err(e) = absorbed {
                        // The reader holds undecodable bytes and can never
                        // make progress; drop the stream so a retry
                        // starts clean.
                        streams.remove(&stream);
                        return Err(e.into());
                    }
                } else {
                    st.pending.insert(seq, bytes);
                }
            }
            let st = streams.get(&stream).expect("stream still present");
            Ok(stream_ack(stream, st, false))
        }
        Request::SealStream { stream, footer } => {
            let mut streams = shard.streams.lock().expect("streams lock");
            let st = streams
                .get_mut(&stream)
                .ok_or(ServeError::UnknownStream { stream })?;
            if let Some(digest) = st.published {
                // Duplicate seal (the ack was lost to a reconnect):
                // answer idempotently.
                return Ok(Response::Uploaded {
                    digest,
                    instructions: st.reader.instructions_absorbed(),
                    deduped: true,
                });
            }
            if !st.pending.is_empty() {
                return Err(ServeError::BadRequest {
                    reason: format!(
                        "stream {stream} cannot seal: waiting for chunk {} \
                         ({} buffered beyond the gap)",
                        st.next_seq,
                        st.pending.len()
                    ),
                });
            }
            if let Err(e) = st.reader.absorb(&footer) {
                // Event counts or the trailer failed to validate — chunks
                // are missing or damaged, and the buffered bytes cannot
                // be repaired. Drop the stream so a retry starts clean.
                streams.remove(&stream);
                return Err(e.into());
            }
            if !st.reader.is_sealed() {
                return Err(ServeError::BadRequest {
                    reason: "footer bytes are incomplete; stream is still unsealed".to_string(),
                });
            }
            let bytes = st.reader.sealed_bytes().expect("sealed reader has bytes");
            // Re-parsing the reassembled bytes guarantees the published
            // container — and its digest — is exactly what a batch
            // upload of the same file would have stored.
            let container = Arc::new(PinballContainer::from_bytes(bytes)?);
            let digest = container.digest();
            let instructions = container.pinball.logged_instructions();
            // A stream that never announced its digest could not be
            // redirected at `BeginStream`: push the published container
            // to its owner (best effort, outside the streams lock) so
            // digest routing finds it where the ring says it lives.
            let push = remote_owner(state, digest)
                .map(|(cluster, owner)| (cluster, owner, Arc::clone(&st.program), bytes.to_vec()));
            let deduped = state
                .store
                .insert_if_absent(digest, Arc::clone(&st.program), container);
            st.published = Some(digest);
            drop(streams);
            if let Some((cluster, owner, program, bytes)) = push {
                shard.cluster.peer_pushes.fetch_add(1, Ordering::Relaxed);
                if cluster.forward_upload(&owner, &program, bytes).is_err() {
                    shard.cluster.forward_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(Response::Uploaded {
                digest,
                instructions,
                deduped,
            })
        }
        Request::StreamStatus { stream } => {
            let streams = shard.streams.lock().expect("streams lock");
            let st = streams
                .get(&stream)
                .ok_or(ServeError::UnknownStream { stream })?;
            Ok(stream_ack(stream, st, false))
        }
        Request::Tail { stream } => {
            let streams = shard.streams.lock().expect("streams lock");
            let st = streams
                .get(&stream)
                .ok_or(ServeError::UnknownStream { stream })?;
            Ok(Response::TailUpdate {
                stream,
                chunks: st.next_seq,
                events: st.reader.events_absorbed() as u64,
                instructions: st.reader.instructions_absorbed(),
                expected_events: st.reader.events_expected().unwrap_or(0),
                sealed: st.reader.is_sealed(),
                digest: st.published,
            })
        }
        Request::SliceStream {
            stream,
            at,
            options,
        } => {
            let started = Instant::now();
            let mut streams = shard.streams.lock().expect("streams lock");
            let st = streams
                .get_mut(&stream)
                .ok_or(ServeError::UnknownStream { stream })?;
            if st.reader.events_absorbed() == 0 {
                return Err(ServeError::BadRequest {
                    reason: "stream has no replay events yet; nothing to slice".to_string(),
                });
            }
            // Replay the absorbed prefix to collect its records. Replay
            // is deterministic, so the records seen on earlier requests
            // come back unchanged and the cached trace/index below only
            // pay for the new suffix.
            let container = st.reader.partial_container()?;
            let collect_opts = SlicerOptions {
                // Appends must keep prefix positions stable.
                cluster: false,
                ..SlicerOptions::default()
            };
            let session =
                SliceSession::collect(Arc::clone(&st.program), &container.pinball, collect_opts);
            let fingerprint = options.fingerprint();
            match &mut st.slicing {
                Some(s) if s.fingerprint == fingerprint => {
                    let done = s.trace.records().len();
                    s.trace.extend(session.trace().records()[done..].to_vec());
                    s.index.append(&s.trace, session.pairs(), &options);
                }
                slot => {
                    let trace = GlobalTrace::build_with(
                        session.trace().records().to_vec(),
                        collect_opts.block_size,
                        collect_opts.track_sp,
                        false,
                    );
                    let index = DepIndex::build(&trace, session.pairs(), &options);
                    *slot = Some(StreamSlicing {
                        fingerprint,
                        trace,
                        index,
                    });
                }
            }
            let slicing = st.slicing.as_ref().expect("slicing state installed");
            let criterion = match at {
                SliceAt::Criterion { criterion } => criterion,
                SliceAt::Failure => Criterion::Record {
                    id: session
                        .failure_record()
                        .map(|r| r.id)
                        .ok_or(ServeError::BadRequest {
                            reason: "trace is empty; nothing to slice".to_string(),
                        })?,
                },
                SliceAt::Here { .. } => {
                    return Err(ServeError::BadRequest {
                        reason: "SliceAt::Here needs a stopped session; \
                                 a stream is not stopped anywhere"
                            .to_string(),
                    })
                }
            };
            if slicing.trace.position(criterion.record_id()).is_none() {
                return Err(ServeError::BadRequest {
                    reason: format!(
                        "criterion record is not in the absorbed prefix \
                         ({} events so far)",
                        st.reader.events_absorbed()
                    ),
                });
            }
            let slice = compute_slice_indexed(&slicing.index, criterion);
            Ok(Response::Slice {
                slice: WireSlice::from_slice(&slice),
                cached: false,
                micros: started.elapsed().as_micros() as u64,
            })
        }
        Request::Gossip { view } => match state.cluster.get() {
            Some(cluster) => {
                cluster.merge(&view, None);
                Ok(cluster.peer_view(state.store.len()))
            }
            None => Ok(empty_peer_view()),
        },
        Request::PeerMap => match state.cluster.get() {
            Some(cluster) => Ok(cluster.peer_view(state.store.len())),
            None => Ok(empty_peer_view()),
        },
        Request::PeerSlice {
            digest,
            criterion,
            options,
        } => {
            let started = Instant::now();
            let slot = peer_session(state, shard, digest)?;
            let (wire, cached) = slice_local(shard, &slot, digest, criterion, options);
            Ok(Response::Slice {
                slice: (*wire).clone(),
                cached,
                micros: started.elapsed().as_micros() as u64,
            })
        }
        Request::PeerRelog {
            digest,
            criterion,
            options,
        } => {
            let started = Instant::now();
            let slot = peer_session(state, shard, digest)?;
            let (outcome, cached) = relog_local(state, shard, &slot, digest, criterion, options);
            Ok(Response::Relogged {
                digest: outcome.digest,
                instructions: outcome.report.instructions,
                kept: outcome.report.kept,
                excluded: outcome.report.excluded,
                cached,
                micros: started.elapsed().as_micros() as u64,
            })
        }
        Request::FetchStored { digest } => {
            // Local store only — never forwarded, so peer fetch chains
            // terminate after one hop.
            let (program, container) = state
                .store
                .get(digest)
                .ok_or(ServeError::UnknownPinball { digest })?;
            Ok(Response::StoredData {
                digest,
                program: (*program).clone(),
                container: container.to_bytes()?,
            })
        }
        Request::PeerProbe { digest } => Ok(Response::Probed {
            digest,
            known: state.store.program_of(digest).is_some(),
        }),
    }
}

/// The answer a standalone (cluster-less) node gives to gossip traffic.
fn empty_peer_view() -> Response {
    Response::PeerView {
        self_addr: String::new(),
        virtual_nodes: 0,
        nodes: Vec::new(),
    }
}

/// The cluster handle and owning peer when `digest` belongs to another
/// node. `None` on a standalone node or when this node is the owner.
fn remote_owner(state: &ServiceState, digest: PinballDigest) -> Option<(&Arc<Cluster>, String)> {
    let cluster = state.cluster.get()?;
    let owner = cluster.remote_owner(digest)?;
    Some((cluster, owner))
}

/// The container supplier a forward hands to the cluster: on the owner's
/// `UnknownPinball` (a restart, or a fresh owner after a ring change) the
/// forwarder pushes its stored copy once and retries.
fn push_supply(
    state: &ServiceState,
    digest: PinballDigest,
) -> impl FnOnce() -> Option<(Program, Vec<u8>)> + '_ {
    move || {
        let (program, container) = state.store.get(digest)?;
        let bytes = container.to_bytes().ok()?;
        Some(((*program).clone(), bytes))
    }
}

/// The session a peer-forwarded request runs under: reused per digest,
/// outside the client pool so pool eviction can't interrupt peer work.
fn peer_session(
    state: &ServiceState,
    shard: &Shard,
    digest: PinballDigest,
) -> Result<Arc<Mutex<drdebug::DebugSession>>, ServeError> {
    let mut sessions = shard.peer_sessions.lock().expect("peer sessions lock");
    if let Some(slot) = sessions.get(&digest) {
        return Ok(Arc::clone(slot));
    }
    let (program, container) = state
        .store
        .get(digest)
        .ok_or(ServeError::UnknownPinball { digest })?;
    // Crude bound: sessions are cheap to rebuild (the expensive artifacts
    // — index, slices, relogs — live in the shard caches), so wholesale
    // clearing beats LRU bookkeeping here.
    if sessions.len() >= state.config.max_sessions.max(1) * 4 {
        sessions.clear();
    }
    let slot = Arc::new(Mutex::new(drdebug::DebugSession::with_shared_container(
        program, container,
    )));
    sessions.insert(digest, Arc::clone(&slot));
    Ok(slot)
}

/// Resolves a digest to its stored program + container, pulling it from a
/// peer when the local store misses — the fetch-through behind `open` and
/// `fetch`, and the re-warm path for a node that lost its store. Tries
/// the digest's owner first, then any alive peer, probing before each
/// transfer so no body crosses the wire speculatively.
fn fetch_into_store(
    state: &ServiceState,
    shard: &Shard,
    digest: PinballDigest,
) -> Result<(Arc<Program>, Arc<PinballContainer>), ServeError> {
    if let Some(found) = state.store.get(digest) {
        return Ok(found);
    }
    let Some(cluster) = state.cluster.get() else {
        return Err(ServeError::UnknownPinball { digest });
    };
    for addr in cluster.fetch_candidates(digest) {
        if !matches!(cluster.forward_probe(&addr, digest), Ok(true)) {
            continue;
        }
        let Ok((program, bytes)) = cluster.fetch_stored(&addr, digest) else {
            continue;
        };
        let Ok(container) = PinballContainer::from_bytes(&bytes) else {
            continue;
        };
        shard.cluster.peer_fetches.fetch_add(1, Ordering::Relaxed);
        let program = Arc::new(program);
        let container = Arc::new(container);
        state
            .store
            .insert_if_absent(digest, Arc::clone(&program), Arc::clone(&container));
        // Re-read so a concurrent insert and ours converge on one copy.
        return Ok(state.store.get(digest).unwrap_or((program, container)));
    }
    Err(ServeError::UnknownPinball { digest })
}

/// Computes (or serves from the shard caches) a slice for a checked-out
/// session — the shared tail of `ComputeSlice` and `PeerSlice`.
fn slice_local(
    shard: &Shard,
    slot: &Arc<Mutex<drdebug::DebugSession>>,
    digest: PinballDigest,
    criterion: Criterion,
    options: SliceOptions,
) -> (Arc<WireSlice>, bool) {
    let fingerprint = options.fingerprint();
    if let Some(hit) = shard.cache.get(digest, criterion, fingerprint) {
        return (hit, true);
    }
    // One dependence index answers every criterion on this pinball under
    // these options. Same-digest requests always route to this shard, so
    // the shard-local cache still builds at most once across all clients
    // — and, with cluster forwarding, across the whole fleet.
    let index = shard.index_cache.get_or_build(digest, fingerprint, || {
        slot.lock().expect("session lock").dep_index_for(&options)
    });
    let slice = {
        let mut guard = slot.lock().expect("session lock");
        guard.install_dep_index(fingerprint, index);
        guard.slice_criterion(criterion, options)
    };
    let wire = Arc::new(WireSlice::from_slice(&slice));
    shard
        .cache
        .insert(digest, criterion, fingerprint, Arc::clone(&wire));
    (wire, false)
}

/// Relogs (or serves from the relog cache) — the shared tail of `Relog`
/// and `PeerRelog`. The slice pinball publishes into the global store.
fn relog_local(
    state: &ServiceState,
    shard: &Shard,
    slot: &Arc<Mutex<drdebug::DebugSession>>,
    digest: PinballDigest,
    criterion: Criterion,
    options: SliceOptions,
) -> (Arc<RelogOutcome>, bool) {
    let fingerprint = options.fingerprint();
    shard
        .relog_cache
        .get_or_build(digest, criterion, fingerprint, || {
            // Resolve the dependence index through the shard cache (one
            // build per pinball and options), relog under the session
            // lock, then publish the slice pinball into the global
            // content-addressed store so any shard can open, fetch, and
            // slice it.
            let index = shard.index_cache.get_or_build(digest, fingerprint, || {
                slot.lock().expect("session lock").dep_index_for(&options)
            });
            let (container, report) = {
                let mut guard = slot.lock().expect("session lock");
                guard.install_dep_index(fingerprint, index);
                guard.relog_criterion(criterion, options)
            };
            let slice_digest = container.digest();
            let bytes = container.to_bytes().map(|b| b.len() as u64).unwrap_or(0);
            if let Some(program) = state.store.program_of(digest) {
                state
                    .store
                    .insert_if_absent(slice_digest, program, Arc::new(container));
            }
            Arc::new(RelogOutcome {
                digest: slice_digest,
                report,
                bytes,
            })
        })
}

/// Resolves where a slice anchors into a concrete [`Criterion`].
fn resolve_criterion(
    slot: &Arc<Mutex<drdebug::DebugSession>>,
    at: SliceAt,
) -> Result<Criterion, ServeError> {
    match at {
        SliceAt::Criterion { criterion } => Ok(criterion),
        SliceAt::Failure => {
            let mut guard = slot.lock().expect("session lock");
            let id =
                guard
                    .slicer()
                    .failure_record()
                    .map(|r| r.id)
                    .ok_or(ServeError::BadRequest {
                        reason: "trace is empty; nothing to slice".to_string(),
                    })?;
            Ok(Criterion::Record { id })
        }
        SliceAt::Here { key } => {
            let mut guard = slot.lock().expect("session lock");
            let id = guard.record_at_stop().ok_or(ServeError::BadRequest {
                reason: "session is not stopped at a sliceable record".to_string(),
            })?;
            Ok(match key {
                Some(key) => Criterion::Value { id, key },
                None => Criterion::Record { id },
            })
        }
    }
}

/// Sums every shard into one rollup, attaching the per-shard breakdown.
fn rollup(state: &ServiceState) -> ServeStats {
    let mut total = ServeStats {
        uptime_micros: state.started.elapsed().as_micros() as u64,
        ..ServeStats::default()
    };
    let mut per_op: HashMap<String, OpStats> = HashMap::new();
    for shard in &state.shards {
        let snap = shard.metrics.snapshot();
        for (name, op) in &snap.per_op {
            let entry = per_op.entry(name.clone()).or_default();
            entry.count += op.count;
            entry.total_micros += op.total_micros;
            entry.max_micros = entry.max_micros.max(op.max_micros);
        }
        let s = ShardStats {
            shard: shard.id as u64,
            requests: snap.requests,
            errors: snap.errors,
            shed: shard.shed.load(Ordering::Relaxed),
            depth: shard.depth.load(Ordering::Relaxed) as u64,
            peak_depth: shard.peak_depth.load(Ordering::Relaxed),
            batches: shard.batches.load(Ordering::Relaxed),
            sessions: shard.pool.stats(),
            cache: shard.cache.stats(),
            index_cache: shard.index_cache.stats(),
            relog_cache: shard.relog_cache.stats(),
            cluster: shard.cluster.snapshot(),
        };
        total.requests += s.requests;
        total.errors += s.errors;
        total.shed += s.shed;
        add_cache(&mut total.cache, &s.cache);
        add_cache(&mut total.index_cache, &s.index_cache);
        add_cache(&mut total.relog_cache, &s.relog_cache);
        add_sessions(&mut total.sessions, &s.sessions);
        add_cluster(&mut total.cluster, &s.cluster);
        total.shards.push(s);
    }
    let mut per_op: Vec<(String, OpStats)> = per_op.into_iter().collect();
    per_op.sort_by(|a, b| a.0.cmp(&b.0));
    total.per_op = per_op;
    total.pinballs = state.store.len();
    // The traffic counters above are strictly Σ per-shard (the invariant
    // tests pin); liveness and gossip rounds are node-global.
    if let Some(cluster) = state.cluster.get() {
        let summary = cluster.summary();
        total.cluster.enabled = true;
        total.cluster.nodes_alive = summary.alive;
        total.cluster.nodes_dead = summary.dead;
        total.cluster.gossip_rounds = summary.rounds;
    }
    total
}

fn add_cluster(total: &mut ClusterStats, s: &ClusterStats) {
    total.forwards += s.forwards;
    total.forward_errors += s.forward_errors;
    total.redirects += s.redirects;
    total.peer_cache_hits += s.peer_cache_hits;
    total.peer_fetches += s.peer_fetches;
    total.peer_pushes += s.peer_pushes;
}

fn add_cache(total: &mut proto::CacheStats, s: &proto::CacheStats) {
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.entries += s.entries;
    total.bytes += s.bytes;
}

fn add_sessions(total: &mut proto::SessionStats, s: &proto::SessionStats) {
    total.open += s.open;
    total.opened_total += s.opened_total;
    total.evicted_lru += s.evicted_lru;
    total.expired_idle += s.expired_idle;
    total.rejected_busy += s.rejected_busy;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_hint_is_monotone_and_bounded() {
        let base = 50;
        let cap = 16;
        let mut last = 0;
        for depth in 0..=cap {
            let hint = retry_hint(base, depth, cap);
            assert!(hint >= last, "hint must not decrease with backlog");
            assert!((base..=5 * base).contains(&hint), "hint {hint} out of band");
            last = hint;
        }
        assert_eq!(retry_hint(base, 0, cap), base, "empty queue hints base");
        assert_eq!(retry_hint(base, cap, cap), 5 * base, "full queue hints 5x");
        // Past-capacity depths (races) clamp instead of overflowing.
        assert_eq!(retry_hint(base, cap * 10, cap), 5 * base);
        // Degenerate inputs are defensively clamped.
        assert!(retry_hint(0, 0, 0) >= 1);
    }

    #[test]
    fn stats_route_round_robins_and_digests_are_sticky() {
        let service = Service::new(ServeConfig {
            shards: 4,
            ..ServeConfig::default()
        });
        assert_eq!(service.shard_count(), 4);
        let d = pinplay::PinballDigest(10);
        let first = service.route(&Request::OpenSession { digest: d });
        for _ in 0..8 {
            assert_eq!(
                service.route(&Request::OpenSession { digest: d }),
                first,
                "same digest must always route to the same shard"
            );
        }
        assert_eq!(first, 10 % 4);
        // Session ids route to the shard that allocated them.
        for session in [4u64, 5, 6, 7, 9, 14] {
            assert_eq!(
                service.route(&Request::Run { session }),
                (session % 4) as usize
            );
        }
        // Stats spreads across shards.
        let hits: std::collections::HashSet<usize> =
            (0..8).map(|_| service.route(&Request::Stats)).collect();
        assert_eq!(hits.len(), 4, "round-robin touches every shard");
    }
}
