//! Session pool: bounded, LRU-evicting, idle-expiring.
//!
//! A [`drdebug::DebugSession`] is heavyweight — it owns a replaying VM,
//! checkpoints, and (once a slice has been requested) a collected
//! dependence trace. The pool caps how many are live at once. When a new
//! open would exceed the cap, the pool first expires sessions idle past
//! the timeout, then evicts the least-recently-used *idle* session; if
//! every slot is actively locked by a request, the open is rejected with
//! [`ServeError::Busy`] and a retry hint — backpressure, never an
//! unbounded queue.
//!
//! Sessions are handed out as `Arc<Mutex<DebugSession>>`: the caller
//! clones the `Arc` and drops the pool lock before locking the session,
//! so a long `cont()` or slice collection in one session never blocks
//! requests against other sessions. A slot whose `Arc` strong count is 1
//! is provably not mid-request and is safe to evict.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use drdebug::DebugSession;
use pinplay::PinballDigest;

use crate::proto::{ServeError, SessionId, SessionStats};

/// One pooled session.
struct Slot {
    session: Arc<Mutex<DebugSession>>,
    digest: PinballDigest,
    last_used: Instant,
}

struct PoolInner {
    slots: HashMap<SessionId, Slot>,
    next_id: SessionId,
    opened_total: u64,
    evicted_lru: u64,
    expired_idle: u64,
    rejected_busy: u64,
}

/// Bounded pool of debug sessions with LRU eviction and idle expiry.
pub struct SessionManager {
    inner: Mutex<PoolInner>,
    max_sessions: usize,
    idle_timeout: Duration,
    retry_after_ms: u64,
    id_stride: u64,
}

impl SessionManager {
    /// Creates a pool admitting at most `max_sessions` (min 1) live
    /// sessions, expiring those idle longer than `idle_timeout`.
    pub fn new(max_sessions: usize, idle_timeout: Duration, retry_after_ms: u64) -> SessionManager {
        SessionManager::with_ids(max_sessions, idle_timeout, retry_after_ms, 1, 1)
    }

    /// Like [`SessionManager::new`], but allocating session ids from the
    /// arithmetic sequence `first, first + stride, first + 2·stride, …`.
    ///
    /// A sharded server gives shard `s` of `n` the sequence starting at
    /// `n + s` with stride `n`, so every id this pool hands out satisfies
    /// `id % n == s` — the dispatcher can route a session-scoped request
    /// to the owning shard from the id alone, with no shared lookup table.
    pub fn with_ids(
        max_sessions: usize,
        idle_timeout: Duration,
        retry_after_ms: u64,
        first_id: SessionId,
        id_stride: u64,
    ) -> SessionManager {
        SessionManager {
            inner: Mutex::new(PoolInner {
                slots: HashMap::new(),
                next_id: first_id.max(1),
                opened_total: 0,
                evicted_lru: 0,
                expired_idle: 0,
                rejected_busy: 0,
            }),
            max_sessions: max_sessions.max(1),
            idle_timeout,
            retry_after_ms,
            id_stride: id_stride.max(1),
        }
    }

    /// Opens a session, building it with `make` only once admission is
    /// certain.
    ///
    /// # Errors
    ///
    /// [`ServeError::Busy`] when the pool is full and every session is
    /// mid-request (nothing evictable).
    pub fn open(
        &self,
        digest: PinballDigest,
        make: impl FnOnce() -> DebugSession,
    ) -> Result<SessionId, ServeError> {
        let mut inner = self.inner.lock().expect("pool lock");
        self.sweep_idle(&mut inner);
        if inner.slots.len() >= self.max_sessions && !self.evict_lru(&mut inner) {
            inner.rejected_busy += 1;
            return Err(ServeError::Busy {
                retry_after_ms: self.retry_after_ms,
            });
        }
        let id = inner.next_id;
        inner.next_id += self.id_stride;
        inner.opened_total += 1;
        inner.slots.insert(
            id,
            Slot {
                session: Arc::new(Mutex::new(make())),
                digest,
                last_used: Instant::now(),
            },
        );
        Ok(id)
    }

    /// Hands out the session for a request, refreshing its LRU position.
    /// The pool lock is released before the caller locks the session.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if the id was never opened, was
    /// closed, or was evicted.
    pub fn checkout(
        &self,
        id: SessionId,
    ) -> Result<(Arc<Mutex<DebugSession>>, PinballDigest), ServeError> {
        let mut inner = self.inner.lock().expect("pool lock");
        let slot = inner
            .slots
            .get_mut(&id)
            .ok_or(ServeError::UnknownSession { session: id })?;
        slot.last_used = Instant::now();
        Ok((Arc::clone(&slot.session), slot.digest))
    }

    /// The digest a session replays, without refreshing its LRU position.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] as for [`SessionManager::checkout`].
    pub fn digest_of(&self, id: SessionId) -> Result<PinballDigest, ServeError> {
        let inner = self.inner.lock().expect("pool lock");
        inner
            .slots
            .get(&id)
            .map(|s| s.digest)
            .ok_or(ServeError::UnknownSession { session: id })
    }

    /// Closes a session, freeing its slot immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if there is nothing to close.
    pub fn close(&self, id: SessionId) -> Result<(), ServeError> {
        let mut inner = self.inner.lock().expect("pool lock");
        inner
            .slots
            .remove(&id)
            .map(|_| ())
            .ok_or(ServeError::UnknownSession { session: id })
    }

    /// Counter snapshot for the `Stats` path.
    pub fn stats(&self) -> SessionStats {
        let inner = self.inner.lock().expect("pool lock");
        SessionStats {
            open: inner.slots.len() as u64,
            opened_total: inner.opened_total,
            evicted_lru: inner.evicted_lru,
            expired_idle: inner.expired_idle,
            rejected_busy: inner.rejected_busy,
        }
    }

    /// Drops every idle session whose last use is older than the timeout.
    fn sweep_idle(&self, inner: &mut PoolInner) {
        let cutoff = self.idle_timeout;
        let expired: Vec<SessionId> = inner
            .slots
            .iter()
            .filter(|(_, s)| Arc::strong_count(&s.session) == 1 && s.last_used.elapsed() >= cutoff)
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            inner.slots.remove(&id);
            inner.expired_idle += 1;
        }
    }

    /// Evicts the least recently used idle session; `false` if every
    /// session is currently checked out (strong count > 1).
    fn evict_lru(&self, inner: &mut PoolInner) -> bool {
        let victim = inner
            .slots
            .iter()
            .filter(|(_, s)| Arc::strong_count(&s.session) == 1)
            .min_by_key(|(_, s)| s.last_used)
            .map(|(id, _)| *id);
        match victim {
            Some(id) => {
                inner.slots.remove(&id);
                inner.evicted_lru += 1;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{assemble, LiveEnv, Program, RoundRobin};
    use pinplay::record_whole_program;

    fn tiny_session() -> DebugSession {
        let src = r"
            .text
            .func main
                movi r1, 5
                addi r1, r1, 1
                halt
            .endfunc
        ";
        let program: Arc<Program> = Arc::new(assemble(src).expect("assembles"));
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(0),
            10_000,
            "pool-test",
        )
        .expect("records");
        DebugSession::new(program, rec.pinball)
    }

    const D: PinballDigest = PinballDigest(1);

    #[test]
    fn open_checkout_close_roundtrip() {
        let pool = SessionManager::new(4, Duration::from_secs(300), 25);
        let id = pool.open(D, tiny_session).expect("admitted");
        let (arc, digest) = pool.checkout(id).expect("present");
        assert_eq!(digest, D);
        drop(arc);
        pool.close(id).expect("closes");
        assert!(matches!(
            pool.checkout(id),
            Err(ServeError::UnknownSession { session }) if session == id
        ));
        let s = pool.stats();
        assert_eq!((s.open, s.opened_total), (0, 1));
    }

    #[test]
    fn full_pool_evicts_lru_idle_session() {
        let pool = SessionManager::new(2, Duration::from_secs(300), 25);
        let a = pool.open(D, tiny_session).unwrap();
        let b = pool.open(D, tiny_session).unwrap();
        let (arc_b, _) = pool.checkout(b).unwrap(); // b is in use and recent
        let c = pool.open(D, tiny_session).expect("evicts a");
        assert!(matches!(
            pool.checkout(a),
            Err(ServeError::UnknownSession { .. })
        ));
        drop(arc_b);
        assert!(pool.checkout(b).is_ok());
        assert!(pool.checkout(c).is_ok());
        assert_eq!(pool.stats().evicted_lru, 1);
    }

    #[test]
    fn all_sessions_busy_is_backpressure_not_eviction() {
        let pool = SessionManager::new(1, Duration::from_secs(300), 40);
        let a = pool.open(D, tiny_session).unwrap();
        let (held, _) = pool.checkout(a).unwrap();
        let err = pool.open(D, tiny_session).unwrap_err();
        assert!(matches!(err, ServeError::Busy { retry_after_ms: 40 }));
        assert_eq!(pool.stats().rejected_busy, 1);
        drop(held);
        pool.open(D, tiny_session)
            .expect("idle session now evictable");
    }

    #[test]
    fn strided_ids_encode_their_shard() {
        // Shard 2 of 4: ids must always satisfy id % 4 == 2.
        let pool = SessionManager::with_ids(8, Duration::from_secs(300), 25, 4 + 2, 4);
        let ids: Vec<SessionId> = (0..5)
            .map(|_| pool.open(D, tiny_session).unwrap())
            .collect();
        assert_eq!(ids, vec![6, 10, 14, 18, 22]);
        assert!(ids.iter().all(|id| id % 4 == 2));
    }

    #[test]
    fn idle_sessions_expire_on_next_open() {
        let pool = SessionManager::new(4, Duration::from_millis(1), 25);
        let a = pool.open(D, tiny_session).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let _b = pool.open(D, tiny_session).unwrap();
        assert!(matches!(
            pool.checkout(a),
            Err(ServeError::UnknownSession { .. })
        ));
        assert_eq!(pool.stats().expired_idle, 1);
    }
}
