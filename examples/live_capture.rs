//! The complete Fig. 2 workflow, phase 1 included: run the program *live*,
//! fast-forward to the buggy region with a breakpoint, flip `record on`,
//! let the bug fire (finalising the pinball), then debug the captured
//! region cyclically with slicing.
//!
//! ```sh
//! cargo run --example live_capture
//! ```

use std::sync::Arc;

use drdebug::{DebugSession, LiveSession, LiveStop, StopReason};
use minivm::{assemble, LiveEnv, RoundRobin};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program with a long warm-up before the buggy part: recording from
    // the start would waste log space on the warm-up (the paper's point:
    // capture only the execution region that matters).
    let program = Arc::new(assemble(
        r"
        .data
        table: .word 3, 1, 4, 1, 5
        .text
        .func main
            movi r0, 5000        ; 0: long warm-up
        warm:
            subi r0, r0, 1       ; 1
            bgti r0, 0, warm     ; 2
        buggy_region:
            movi r5, 20          ; 3: process 20 requests
        request:
            rand r1              ; 4: pick an index (non-deterministic!)
            andi r1, r1, 7       ; 5: bug: mask allows 0..7, table has 5
            la r2, table         ; 6
            add r2, r2, r1       ; 7
            load r3, r2, 0       ; 8: out-of-bounds reads return 0
            assert r3            ; 9: crash when the entry is 'empty'
            subi r5, r5, 1       ; 10
            bgti r5, 0, request  ; 11
            halt                 ; 12
        .endfunc
        ",
    )?);

    // Phase 1: live run. Fast-forward at full speed to the buggy region.
    let mut live = LiveSession::new(
        Arc::clone(&program),
        RoundRobin::new(8),
        LiveEnv::new(2024),
        "live-capture",
    );
    let region_start = program.label("buggy_region").expect("label");
    live.add_breakpoint(region_start);
    let stop = live.cont(1_000_000);
    println!("fast-forwarded to the buggy region: {stop:?}");

    // Record on; run until the bug fires (several rand draws may pass).
    live.remove_breakpoint(region_start);
    live.record_on();
    println!("record on — capturing the region");
    let stop = live.cont(1_000_000);
    let LiveStop::Trapped(error) = stop else {
        // The masked index happened to stay in bounds this run; for the
        // demo, that means no bug to capture.
        println!("no failure this run ({stop:?}); try another seed");
        return Ok(());
    };
    println!("bug fired during recording: {error}");
    let pinball = live.captured().expect("pinball finalised").clone();
    println!(
        "captured pinball: {} instructions, {} bytes",
        pinball.logged_instructions(),
        pinball.size_bytes().expect("pinball serializes")
    );

    // Phase 2: cyclic debugging off the pinball.
    let mut dbg = DebugSession::new(Arc::clone(&program), pinball);
    for iteration in 1..=2 {
        let stop = dbg.cont();
        assert!(matches!(stop, StopReason::Trapped(_)));
        println!(
            "debug iteration {iteration}: failure reproduced, r1 = {}",
            dbg.read_reg(0, minivm::Reg(1))
        );
        dbg.restart();
    }

    // Slice the failure: the masked rand index is the root cause.
    dbg.cont();
    let slice = dbg.slice_failure().expect("slice");
    let slicer = dbg.slicer();
    let pcs = slice.pcs(slicer.trace());
    println!("\nfailure slice covers pcs: {pcs:?}");
    assert!(pcs.contains(&4), "the rand() draw is in the slice");
    assert!(pcs.contains(&5), "the bad mask is in the slice");
    println!("root cause: the index mask at pc 5 admits out-of-range indices");
    Ok(())
}
