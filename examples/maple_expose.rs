//! The Maple integration (paper §6): a hard-to-reproduce concurrency bug —
//! the pbzip2-style mutex use-after-free — is exposed by coverage-driven
//! active scheduling and recorded as a pinball that replays the crash
//! deterministically, ready for DrDebug.
//!
//! ```sh
//! cargo run --example maple_expose
//! ```

use std::sync::Arc;

use drdebug::{CommandInterpreter, DebugSession};
use minivm::{run, ExitStatus, LiveEnv, NullTool, RoundRobin};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let case = workloads::pbzip2_like();
    println!("case: {} — {}", case.name, case.description);

    // Under a plain schedule the bug hides.
    let mut exec = minivm::Executor::new(Arc::clone(&case.program));
    let r = run(
        &mut exec,
        &mut RoundRobin::new(60),
        &mut LiveEnv::new(0),
        &mut NullTool,
        5_000_000,
    );
    assert_eq!(r.status, ExitStatus::AllHalted);
    println!(
        "plain round-robin run: completed without failing ({} instructions)",
        r.steps
    );

    // Maple: profile inter-thread dependencies, actively force candidate
    // interleavings, record the one that crashes.
    let exposure = case.expose().expect("maple exposes the race");
    println!(
        "\nmaple exposed the bug after {} candidate(s): {}",
        exposure.attempts, exposure.error
    );
    println!(
        "recorded {} instructions; pinball is {} bytes",
        exposure.recording.region_instructions,
        exposure
            .recording
            .pinball
            .size_bytes()
            .expect("pinball serializes")
    );

    // The pinball replays the crash every time — hand it to the debugger.
    let session = DebugSession::new(Arc::clone(&case.program), exposure.recording.pinball);
    let mut dbg = CommandInterpreter::new(session);
    println!("\n(drdebug) continue");
    println!("{}", dbg.execute("continue"));
    println!("(drdebug) slice-failure");
    println!("{}", dbg.execute("slice-failure"));
    println!("(drdebug) statements");
    let statements = dbg.execute("statements");
    for line in statements.lines().take(12) {
        println!("{line}");
    }
    println!("...");
    Ok(())
}
