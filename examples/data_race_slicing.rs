//! The paper's Figure 5 workflow end to end: a data race makes an
//! "atomic" region's assertion fail; Maple exposes it, PinPlay records it,
//! and the backward dynamic slice of the failed assertion pinpoints the
//! racing write in the *other* thread.
//!
//! ```sh
//! cargo run --example data_race_slicing
//! ```

use std::sync::Arc;

use drdebug::{DebugSession, SliceBrowser, StopReason};
use maple::{expose_iroot, ExposeOptions};
use workloads::{fig5_exposing_iroot, fig5_race};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = fig5_race();

    // 1. Expose: force the adverse interleaving (T1's store to x lands
    //    inside T2's assumed-atomic region) and record the buggy run.
    let iroot = fig5_exposing_iroot(&program);
    let exposure = expose_iroot(&program, iroot, ExposeOptions::default())
        .expect("the fig5 race is exposable");
    println!(
        "exposed {} by forcing interleaving {}",
        exposure.error, exposure.iroot
    );

    // 2. Replay under the debugger: the assertion fails deterministically.
    let mut session = DebugSession::new(Arc::clone(&program), exposure.recording.pinball);
    let stop = session.cont();
    assert!(matches!(stop, StopReason::Trapped(_)));
    println!("replay reproduced the failure: {stop:?}");

    // 3. Slice at the failure point.
    let slice = session.slice_failure().expect("slice at the assert");
    println!(
        "\nbackward dynamic slice: {} statement instances",
        slice.len()
    );

    let slicer = session.slicer();
    let racing_store = program.label("t1_store_x").expect("label");
    assert!(
        slice.pcs(slicer.trace()).contains(&racing_store),
        "the slice captures the racing write in thread T1"
    );

    // 4. Browse the dependence graph backward from the assert, the way the
    //    KDbg GUI's Activate button does.
    let mut browser = SliceBrowser::new(&slice, slicer.trace());
    println!("\nslice listing (* = in slice, => = cursor):");
    println!("{}", browser.render_listing(&program));
    println!("navigating backward from the assert:");
    for _ in 0..4 {
        let deps = browser.deps();
        let Some(_) = deps.first() else { break };
        browser.activate(0);
        println!("  -> {}", browser.describe_cursor(&program));
    }
    println!("\nroot cause: x was modified by t1 at pc {racing_store} while t2 assumed atomicity");
    Ok(())
}
