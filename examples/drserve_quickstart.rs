//! drserve quickstart: record once, then debug the same execution from
//! many clients through a shared replay-and-slice server.
//!
//! ```sh
//! cargo run --example drserve_quickstart
//! ```
//!
//! Everything runs in this one process over the in-memory loopback
//! transport, but the bytes on the "wire" are exactly what a TCP client
//! would send (`Server::listen` / `drserve::connect` serve the same
//! protocol over sockets).

use std::sync::Arc;

use drserve::{ServeConfig, Server, SliceAt};
use minivm::{assemble, LiveEnv, RoundRobin};
use pinplay::record_whole_program;
use slicer::SliceOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Record a small racy accumulator once. The pinball captures the
    //    exact interleaving; every replay reproduces it bit-for-bit.
    let program = Arc::new(assemble(
        r"
        .data
        acc: .word 0
        .text
        .func main
            movi r1, 1
            spawn r2, worker, r1
            movi r1, 2
            spawn r3, worker, r1
            join r2
            join r3
            la r4, acc
            load r5, r4, 0
            print r5
            halt
        .endfunc
        .func worker
            movi r3, 6
        loop:
            la r1, acc
            xadd r2, r1, r0
            subi r3, r3, 1
            bgti r3, 0, loop
            halt
        .endfunc
        ",
    )?);
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(5),
        &mut LiveEnv::new(3),
        1_000_000,
        "drserve-quickstart",
    )?;
    println!(
        "recorded {} instructions",
        rec.pinball.logged_instructions()
    );

    // 2. Start a server and connect two clients. Each client is its own
    //    connection with its own pooled debug session.
    let server = Server::new(ServeConfig::default());
    let mut alice = server.loopback_client();
    let mut bob = server.loopback_client();

    // 3. Both clients upload the same recording. Uploads are
    //    content-addressed: the second one dedupes against the first.
    let up_a = alice.upload(&program, &rec.pinball)?;
    let up_b = bob.upload(&program, &rec.pinball)?;
    println!(
        "alice uploaded digest {} (deduped: {})",
        up_a.digest, up_a.deduped
    );
    println!(
        "bob   uploaded digest {} (deduped: {})",
        up_b.digest, up_b.deduped
    );
    assert_eq!(up_a.digest, up_b.digest);

    // 4. Alice debugs: open a session, seek halfway, ask why the final
    //    accumulator value is what it is (the failure slice).
    let session_a = alice.open(up_a.digest)?;
    let (_, position) = alice.seek(session_a, up_a.instructions / 2)?;
    println!("alice seeked to instruction {position}");
    let first = alice.compute_slice(session_a, SliceAt::Failure, SliceOptions::default())?;
    println!(
        "alice's slice: {} statement instances in {} us (cached: {})",
        first.slice.len(),
        first.micros,
        first.cached
    );

    // 5. Bob asks the same question about the same pinball. The cache is
    //    keyed by content — digest, criterion, options — not by session,
    //    so bob's answer comes from alice's computation, byte-identical.
    let session_b = bob.open(up_b.digest)?;
    let second = bob.compute_slice(session_b, SliceAt::Failure, SliceOptions::default())?;
    println!(
        "bob's   slice: {} statement instances in {} us (cached: {})",
        second.slice.len(),
        second.micros,
        second.cached
    );
    assert_eq!(
        first.slice.canonical_bytes(),
        second.slice.canonical_bytes(),
        "content-addressed cache serves byte-identical results"
    );

    // 6. The Stats request shows what the server did for us.
    let stats = alice.stats()?;
    println!("\n{stats}");

    alice.close(session_a)?;
    bob.close(session_b)?;
    Ok(())
}
