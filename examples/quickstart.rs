//! Quickstart: record a multi-threaded execution once, then debug it
//! cyclically — every replay observes the identical execution.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use drdebug::{DebugSession, StopReason};
use minivm::{assemble, LiveEnv, Reg, RoundRobin};
use pinplay::record_whole_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small producer/consumer program with a syscall (non-determinism!).
    let program = Arc::new(assemble(
        r"
        .data
        total: .word 0
        .text
        .func main
            movi r1, 5
            spawn r2, worker, r1
            rand r3              ; non-deterministic seed
            andi r3, r3, 0xff
            la r4, total
            xadd r5, r4, r3
            join r2
            la r4, total
            load r6, r4, 0
            print r6
            halt
        .endfunc
        .func worker
            la r1, total
            xadd r2, r1, r0
            halt
        .endfunc
        ",
    )?);

    // 1. Record: one live run is captured into a pinball.
    let recording = record_whole_program(
        &program,
        &mut RoundRobin::new(4),
        &mut LiveEnv::new(1234),
        100_000,
        "quickstart",
    )?;
    println!(
        "recorded {} instructions into a {}-byte pinball",
        recording.region_instructions,
        recording.pinball.size_bytes().expect("pinball serializes")
    );

    // 2. Debug session #1: break after the atomic add, inspect state.
    let mut session = DebugSession::new(Arc::clone(&program), recording.pinball);
    let xadd_pc = 5; // main's xadd
    session.add_breakpoint(xadd_pc, None);
    let stop = session.cont();
    println!("first session stopped: {stop:?}");
    let r3_first = session.read_reg(0, Reg(3));
    println!("  rand() result r3 = {r3_first}");

    // 3. Cyclic debugging: restart and observe the *same* values — the
    //    rand() outcome and thread interleaving are replayed from the log.
    session.restart();
    let stop2 = session.cont();
    assert_eq!(stop, stop2, "same stop on every iteration");
    assert_eq!(session.read_reg(0, Reg(3)), r3_first, "same rand() result");
    println!("second session: identical stop and identical state");

    // 4. Run to the end and check the program output replays too.
    loop {
        match session.cont() {
            StopReason::Breakpoint { .. } => continue,
            other => {
                println!("replay ended: {other:?}");
                break;
            }
        }
    }
    println!(
        "replayed program output: {:?}",
        session_exec_output(&session)
    );
    Ok(())
}

fn session_exec_output(session: &DebugSession) -> Vec<i64> {
    // The session's pinball holds the recorded exit; output is read through
    // the underlying replayed executor via the symbol table.
    session
        .read_symbol("total")
        .map(|v| vec![v])
        .unwrap_or_default()
}
