//! Execution slices (paper §4): save a slice, relog it into a *slice
//! pinball*, then replay only the slice — stepping from one slice
//! statement to the next while examining live variable values. The paper
//! notes no prior slicing tool offers this; slices elsewhere are
//! postmortem listings.
//!
//! ```sh
//! cargo run --example execution_slice_stepping
//! ```

use std::sync::Arc;

use drdebug::{SliceStep, SliceStepper};
use minivm::{assemble, LiveEnv, Reg, RoundRobin};
use pinplay::record_whole_program;
use slicer::{Criterion, SliceSession, SlicerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program where only part of the computation feeds the final value.
    let program = Arc::new(assemble(
        r"
        .text
        .func main
            movi r1, 3        ; 0: relevant
            movi r8, 100      ; 1: irrelevant bookkeeping
            muli r8, r8, 7    ; 2: irrelevant
            addi r1, r1, 4    ; 3: relevant
            addi r8, r8, 1    ; 4: irrelevant
            mul  r2, r1, r1   ; 5: relevant -> r2 = 49
            print r2          ; 6: the value under investigation
            halt
        .endfunc
        ",
    )?);

    let recording = record_whole_program(
        &program,
        &mut RoundRobin::new(8),
        &mut LiveEnv::new(0),
        10_000,
        "exec-slice",
    )?;
    let region_instructions = recording.region_instructions;

    // Collect the slicing session and slice at the print.
    let session = SliceSession::collect(
        Arc::clone(&program),
        &recording.pinball,
        SlicerOptions::default(),
    );
    let criterion = session.last_at_pc(6).expect("print executed").id;
    let slice = session.slice(Criterion::Record { id: criterion });
    println!(
        "slice: {} of {} executed instructions",
        slice.len(),
        region_instructions
    );

    // Generate the slice pinball: everything outside the slice becomes
    // exclusion regions whose side effects are injected at replay.
    let (slice_pinball, relog_stats, _) = session.make_slice_pinball(&recording.pinball, &slice);
    println!(
        "slice pinball keeps {} instructions, excludes {} (skipped during replay)",
        relog_stats.included, relog_stats.excluded
    );

    // Step through the execution slice, examining values at each statement.
    let mut stepper = SliceStepper::new(&session, &slice, &slice_pinball);
    println!("\nstepping through the execution slice:");
    loop {
        match stepper.step() {
            SliceStep::AtStatement { tid, pc, .. } => {
                let r1 = stepper.exec().read_reg(tid, Reg(1));
                let r2 = stepper.exec().read_reg(tid, Reg(2));
                println!(
                    "  stopped at {} (thread {tid}): r1={r1} r2={r2}",
                    program.describe_pc(pc)
                );
            }
            SliceStep::Finished => {
                println!("slice replay finished");
                break;
            }
            SliceStep::Trapped(e) => {
                println!("slice replay reproduced the failure: {e}");
                break;
            }
        }
    }
    // The sliced computation still produces the right value.
    assert_eq!(stepper.exec().output(), &[49]);
    println!(
        "\nfinal printed value along the slice: {:?}",
        stepper.exec().output()
    );
    Ok(())
}
