//! Property tests over randomly generated multi-threaded programs.
//!
//! The invariants checked here are the system's load-bearing guarantees:
//!
//! 1. **Replay determinism** — two replays of the same pinball produce
//!    bit-identical final state (PinPlay's repeatability guarantee);
//! 2. **Replay fidelity** — the replay retires exactly the logged number
//!    of instructions and reproduces the live run's output;
//! 3. **Global-trace validity** — the clustered merge is a topological
//!    order of program order, conflict order, and spawn order;
//! 4. **LP ≡ naive** — block skipping never changes the slice;
//! 5. **Slice faithfulness** — replaying only the slice reproduces the
//!    criterion's value.

use std::sync::Arc;

use proptest::prelude::*;

use minivm::builder::ProgramBuilder;
use minivm::{BinOp, Cond, Instr, LiveEnv, NullTool, Program, RandomSched, Reg};
use pinplay::{record_whole_program, Replayer};
use slicer::{
    compute_slice, compute_slice_naive, is_valid_topological_order, Criterion, SliceFile,
    SliceOptions, SliceSession, SlicerOptions,
};

/// One operation of a generated worker body.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `r1 = r1 op k`
    Arith(BinOp, i8),
    /// `r1 += shared[i]`
    ReadShared(u8),
    /// `shared[i] = r1`
    WriteShared(u8),
    /// `xadd shared[i], r1`
    AtomicAdd(u8),
    /// lock-protected `shared[i] += 1`
    LockedIncr(u8),
    /// `print r1`
    Print,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Xor)],
            -4i8..5
        )
            .prop_map(|(op, k)| Op::Arith(op, k)),
        (0u8..4).prop_map(Op::ReadShared),
        (0u8..4).prop_map(Op::WriteShared),
        (0u8..4).prop_map(Op::AtomicAdd),
        (0u8..4).prop_map(Op::LockedIncr),
        Just(Op::Print),
    ]
}

/// Builds a program: main spawns `bodies.len()` workers (each running its
/// op list over shared cells), joins them, then prints every shared cell.
fn build_program(bodies: &[Vec<Op>]) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let shared = b.alloc_data("shared", 4);
    let mutex = b.alloc_data("mutex", 1);

    let worker_labels: Vec<_> = (0..bodies.len()).map(|_| b.label()).collect();

    b.begin_func("main");
    // Spawn workers with their index as argument.
    for (i, &wl) in worker_labels.iter().enumerate() {
        b.ins(Instr::MovI {
            dst: Reg(1),
            imm: i as i64 + 1,
        });
        b.ins_to(
            Instr::Spawn {
                dst: Reg(2),
                entry: 0,
                arg: Reg(1),
            },
            wl,
        );
        b.ins(Instr::Mov {
            dst: Reg(i as u8 + 3),
            src: Reg(2),
        });
    }
    for i in 0..bodies.len() {
        b.ins(Instr::Join {
            tid: Reg(i as u8 + 3),
        });
    }
    for i in 0..4 {
        b.ins(Instr::MovI {
            dst: Reg(1),
            imm: (shared + i) as i64,
        });
        b.ins(Instr::Load {
            dst: Reg(2),
            base: Reg(1),
            off: 0,
        });
        b.ins(Instr::Print { src: Reg(2) });
    }
    b.ins(Instr::Halt);
    b.end_func();

    for (body, &wl) in bodies.iter().zip(&worker_labels) {
        b.begin_func(&format!("worker{}", wl == worker_labels[0]));
        b.bind(wl);
        // r1 starts as the worker index (passed in r0).
        b.ins(Instr::Mov {
            dst: Reg(1),
            src: Reg(0),
        });
        for &op in body {
            match op {
                Op::Arith(binop, k) => {
                    b.ins(Instr::BinI {
                        op: binop,
                        dst: Reg(1),
                        a: Reg(1),
                        imm: i64::from(k),
                    });
                }
                Op::ReadShared(i) => {
                    b.ins(Instr::MovI {
                        dst: Reg(2),
                        imm: (shared + u64::from(i)) as i64,
                    });
                    b.ins(Instr::Load {
                        dst: Reg(3),
                        base: Reg(2),
                        off: 0,
                    });
                    b.ins(Instr::Bin {
                        op: BinOp::Add,
                        dst: Reg(1),
                        a: Reg(1),
                        b: Reg(3),
                    });
                }
                Op::WriteShared(i) => {
                    b.ins(Instr::MovI {
                        dst: Reg(2),
                        imm: (shared + u64::from(i)) as i64,
                    });
                    b.ins(Instr::Store {
                        src: Reg(1),
                        base: Reg(2),
                        off: 0,
                    });
                }
                Op::AtomicAdd(i) => {
                    b.ins(Instr::MovI {
                        dst: Reg(2),
                        imm: (shared + u64::from(i)) as i64,
                    });
                    b.ins(Instr::AtomicAdd {
                        dst: Reg(3),
                        addr: Reg(2),
                        val: Reg(1),
                    });
                }
                Op::LockedIncr(i) => {
                    b.ins(Instr::MovI {
                        dst: Reg(4),
                        imm: mutex as i64,
                    });
                    b.ins(Instr::Lock { addr: Reg(4) });
                    b.ins(Instr::MovI {
                        dst: Reg(2),
                        imm: (shared + u64::from(i)) as i64,
                    });
                    b.ins(Instr::Load {
                        dst: Reg(3),
                        base: Reg(2),
                        off: 0,
                    });
                    b.ins(Instr::BinI {
                        op: BinOp::Add,
                        dst: Reg(3),
                        a: Reg(3),
                        imm: 1,
                    });
                    b.ins(Instr::Store {
                        src: Reg(3),
                        base: Reg(2),
                        off: 0,
                    });
                    b.ins(Instr::Unlock { addr: Reg(4) });
                }
                Op::Print => {
                    b.ins(Instr::Print { src: Reg(1) });
                }
            }
        }
        b.ins(Instr::Halt);
        b.end_func();
    }
    Arc::new(b.finish().expect("generated program is valid"))
}

fn scenario() -> impl Strategy<Value = (Vec<Vec<Op>>, u64, u64)> {
    (
        proptest::collection::vec(proptest::collection::vec(op_strategy(), 3..20), 1..4),
        any::<u64>(), // scheduler seed
        any::<u64>(), // environment seed
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn replay_is_deterministic((bodies, sched_seed, env_seed) in scenario()) {
        let program = build_program(&bodies);
        let rec = record_whole_program(
            &program,
            &mut RandomSched::new(sched_seed, 4),
            &mut LiveEnv::new(env_seed),
            1_000_000,
            "prop",
        ).expect("records");

        let run_once = || {
            let mut rep = Replayer::new(Arc::clone(&program), &rec.pinball);
            rep.run(&mut NullTool);
            (rep.exec().output().to_vec(), rep.exec().snapshot(), rep.replayed_instructions())
        };
        let a = run_once();
        let b = run_once();
        prop_assert_eq!(&a.0, &b.0, "identical output");
        prop_assert_eq!(&a.1, &b.1, "bit-identical final state");
        prop_assert_eq!(a.2, rec.pinball.logged_instructions(), "exact instruction count");
    }

    #[test]
    fn global_trace_is_topologically_valid((bodies, sched_seed, env_seed) in scenario()) {
        let program = build_program(&bodies);
        let rec = record_whole_program(
            &program,
            &mut RandomSched::new(sched_seed, 3),
            &mut LiveEnv::new(env_seed),
            1_000_000,
            "prop",
        ).expect("records");
        let session = SliceSession::collect(
            Arc::clone(&program),
            &rec.pinball,
            SlicerOptions { block_size: 64, ..SlicerOptions::default() },
        );
        // Reconstruct collection order (ids ascend with retire order).
        let mut by_id: Vec<_> = session.trace().records().to_vec();
        by_id.sort_unstable_by_key(|r| r.id);
        let order: Vec<usize> = session
            .trace()
            .records()
            .iter()
            .map(|r| by_id.binary_search_by_key(&r.id, |x| x.id).expect("present"))
            .collect();
        prop_assert!(is_valid_topological_order(&by_id, &order));
    }

    #[test]
    fn lp_equals_naive_slicing((bodies, sched_seed, env_seed) in scenario()) {
        let program = build_program(&bodies);
        let rec = record_whole_program(
            &program,
            &mut RandomSched::new(sched_seed, 5),
            &mut LiveEnv::new(env_seed),
            1_000_000,
            "prop",
        ).expect("records");
        let session = SliceSession::collect(
            Arc::clone(&program),
            &rec.pinball,
            SlicerOptions { block_size: 32, ..SlicerOptions::default() },
        );
        // Slice at the last few records with both traversals.
        let ids: Vec<u64> = session
            .trace()
            .records()
            .iter()
            .map(|r| r.id)
            .collect();
        for &id in ids.iter().rev().take(3) {
            let criterion = Criterion::Record { id };
            let lp = compute_slice(session.trace(), criterion, session.pairs(), SliceOptions::default());
            let naive = compute_slice_naive(session.trace(), criterion, session.pairs(), SliceOptions::default());
            prop_assert_eq!(&lp.records, &naive.records, "same slice membership");
            prop_assert_eq!(&lp.data_edges, &naive.data_edges, "same data edges");
            prop_assert_eq!(&lp.control_edges, &naive.control_edges, "same control edges");
        }
    }

    #[test]
    fn parallel_pipeline_slice_files_are_byte_identical((bodies, sched_seed, env_seed) in scenario()) {
        let program = build_program(&bodies);
        let rec = record_whole_program(
            &program,
            &mut RandomSched::new(sched_seed, 4),
            &mut LiveEnv::new(env_seed),
            1_000_000,
            "prop",
        ).expect("records");

        // Serial baseline vs the fully parallel pipeline: sharded streaming
        // collection, parallel block summaries, sparse traversal.
        let serial = SliceSession::collect(
            Arc::clone(&program),
            &rec.pinball,
            SlicerOptions { parallel: false, ..SlicerOptions::default() },
        );
        let parallel = SliceSession::collect(
            Arc::clone(&program),
            &rec.pinball,
            SlicerOptions { parallel: true, parallel_threshold: 0, ..SlicerOptions::default() },
        );

        let file = |session: &SliceSession, slice: &slicer::Slice| {
            let (exclusions, _) = session.exclusion_regions(slice);
            SliceFile::build("prop", slice, session.trace(), exclusions).to_bytes()
        };
        let ids: Vec<_> = serial.trace().records().iter().map(|r| r.id).collect();
        for &id in ids.iter().rev().take(3) {
            let criterion = Criterion::Record { id };
            let s = serial.slice(criterion);
            let p = parallel.slice(criterion);
            prop_assert_eq!(
                file(&serial, &s),
                file(&parallel, &p),
                "slice files must be byte-identical"
            );
        }
    }

    #[test]
    fn slice_replay_reproduces_included_prints((bodies, sched_seed, env_seed) in scenario()) {
        let program = build_program(&bodies);
        let rec = record_whole_program(
            &program,
            &mut RandomSched::new(sched_seed, 4),
            &mut LiveEnv::new(env_seed),
            1_000_000,
            "prop",
        ).expect("records");

        let session = SliceSession::collect(
            Arc::clone(&program),
            &rec.pinball,
            SlicerOptions::default(),
        );
        // Criterion: the print with the highest retire order (ids are the
        // region-relative retire sequence, so max id = last executed).
        let Some(crit) = session
            .trace()
            .records()
            .iter()
            .filter(|r| matches!(r.instr, Instr::Print { .. }))
            .max_by_key(|r| r.id)
            .map(|r| r.id)
        else { return Ok(()); };
        let slice = session.slice(Criterion::Record { id: crit });

        // Faithfulness: replaying only the slice must print exactly the
        // recorded values of the prints included in the slice, in their
        // recorded execution order.
        let mut expected: Vec<(u64, i64)> = slice
            .records
            .iter()
            .filter_map(|&id| {
                let r = session.trace().record(id)?;
                if !matches!(r.instr, Instr::Print { .. }) {
                    return None;
                }
                let (_, v) = r.use_keys(false).next()?;
                Some((r.id, v))
            })
            .collect();
        expected.sort_unstable();
        let expected: Vec<i64> = expected.into_iter().map(|(_, v)| v).collect();

        let (slice_pb, _, _) = session.make_slice_pinball(&rec.pinball, &slice);
        let mut rep = Replayer::new(Arc::clone(&program), &slice_pb);
        rep.run(&mut NullTool);
        prop_assert_eq!(
            rep.exec().output(),
            &expected[..],
            "slice-only replay prints exactly the recorded values of the \
             slice's print statements"
        );
    }

    #[test]
    fn pinball_serialization_roundtrip((bodies, sched_seed, env_seed) in scenario()) {
        let program = build_program(&bodies);
        let rec = record_whole_program(
            &program,
            &mut RandomSched::new(sched_seed, 4),
            &mut LiveEnv::new(env_seed),
            1_000_000,
            "prop",
        ).expect("records");
        let bytes = rec.pinball.to_bytes().expect("serializes");
        let back = pinplay::Pinball::from_bytes(&bytes).expect("roundtrips");
        prop_assert_eq!(back, rec.pinball);
    }
}

// Keep one deterministic smoke test outside proptest so failures are easy
// to bisect.
#[test]
fn generator_produces_runnable_programs() {
    let bodies = vec![
        vec![Op::Arith(BinOp::Add, 3), Op::LockedIncr(0), Op::Print],
        vec![Op::ReadShared(0), Op::AtomicAdd(1), Op::WriteShared(2)],
    ];
    let program = build_program(&bodies);
    let rec = record_whole_program(
        &program,
        &mut RandomSched::new(7, 4),
        &mut LiveEnv::new(7),
        1_000_000,
        "smoke",
    )
    .expect("records");
    assert!(rec.region_instructions > 10);
    // Unused import silencer: Cond is used by generated branch code in
    // future extensions.
    let _ = Cond::Eq;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Programs whose only shared-memory accesses are atomic RMWs or
    /// lock-protected increments are race-free under any schedule; adding
    /// plain read/write ops may race. The detector must never flag the
    /// former.
    #[test]
    fn synchronised_programs_never_race(
        bodies in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![
                    (prop_oneof![Just(BinOp::Add), Just(BinOp::Xor)], -4i8..5)
                        .prop_map(|(op, k)| Op::Arith(op, k)),
                    (0u8..4).prop_map(Op::AtomicAdd),
                    (0u8..4).prop_map(Op::LockedIncr),
                ],
                3..15,
            ),
            1..4,
        ),
        seed in any::<u64>(),
    ) {
        let program = build_program(&bodies);
        // NOTE: main's final prints read the shared cells, but only after
        // joining every worker — also race-free.
        let races = maple::find_races(&program, seed, seed, 1_000_000);
        prop_assert!(races.is_empty(), "false positive: {races:?}");
    }
}
