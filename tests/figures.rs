//! Integration tests for the paper's worked examples (Figs. 5, 7, 8):
//! the precision claims of §5, checked end to end through the public API.

use std::sync::Arc;

use maple::{expose_iroot, ExposeOptions};
use minivm::{LiveEnv, RoundRobin};
use pinplay::record_whole_program;
use slicer::{Criterion, SliceOptions, SliceSession, SlicerOptions};
use workloads::{fig5_exposing_iroot, fig5_race, fig7_switch, fig8_save_restore};

/// Fig. 5: the slice of the failed atomicity assertion captures the racing
/// write in the other thread — "the dynamic slice captures exactly the
/// root cause of the concurrency bug".
#[test]
fn fig5_slice_captures_inter_thread_root_cause() {
    let program = fig5_race();
    let exposure = expose_iroot(
        &program,
        fig5_exposing_iroot(&program),
        ExposeOptions::default(),
    )
    .expect("race exposable");

    let session = SliceSession::collect(
        Arc::clone(&program),
        &exposure.recording.pinball,
        SlicerOptions::default(),
    );
    let failure = session.failure_record().expect("trace non-empty");
    assert!(matches!(failure.instr, minivm::Instr::Assert { .. }));
    let slice = session.slice(Criterion::Record { id: failure.id });

    let pcs = slice.pcs(session.trace());
    let racing_store = program.label("t1_store_x").unwrap();
    assert!(pcs.contains(&racing_store), "racing write in slice");
    // The chain behind the racing write (y = x + 1 etc.) is included too.
    assert!(pcs.contains(&program.label("t2_load1").unwrap()));
    assert!(pcs.contains(&program.label("t2_load2").unwrap()));
    // And the inter-thread data edge exists in the dependence graph.
    let crossing = slice.data_edges.iter().any(|e| {
        let user = session.trace().record(e.user).unwrap();
        let def = session.trace().record(e.def).unwrap();
        user.tid != def.tid
    });
    assert!(crossing, "slice has an inter-thread dependence edge");
}

/// Fig. 7: without CFG refinement the case body's control dependence on
/// the switch dispatch is missed; with refinement it is found, pulling the
/// switch (and the input read feeding it) into the slice.
#[test]
fn fig7_refinement_recovers_switch_control_dependence() {
    let program = fig7_switch();
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(8),
        &mut LiveEnv::with_inputs(0, [0, 1]),
        10_000,
        "fig7",
    )
    .expect("records");

    let slice_with = |refine: bool| {
        let session = SliceSession::collect(
            Arc::clone(&program),
            &rec.pinball,
            SlicerOptions {
                refine_indirect: refine,
                ..SlicerOptions::default()
            },
        );
        let crit = session
            .last_at_pc(program.label("use_w").unwrap())
            .expect("w used")
            .id;
        let s = session.slice(Criterion::Record { id: crit });
        let pcs = s.pcs(session.trace());
        (s.len(), pcs)
    };

    let (refined_len, refined_pcs) = slice_with(true);
    let (imprecise_len, imprecise_pcs) = slice_with(false);

    let switch = program.label("switch_jmp").unwrap();
    assert!(
        refined_pcs.contains(&switch),
        "refined slice includes the switch dispatch (CD recovered)"
    );
    assert!(
        !imprecise_pcs.contains(&switch),
        "unrefined slice misses the control dependence (the Fig. 7 problem)"
    );
    assert!(refined_len > imprecise_len);
}

/// Fig. 8 / §5.2: the unpruned slice of `w = e + e` drags in the
/// save/restore pair, the guard, and the input read; pruning removes all
/// of it, leaving the true definition.
#[test]
fn fig8_pruning_removes_spurious_context() {
    let program = fig8_save_restore();
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(8),
        &mut LiveEnv::with_inputs(0, [1]),
        10_000,
        "fig8",
    )
    .expect("records");
    let session =
        SliceSession::collect(Arc::clone(&program), &rec.pinball, SlicerOptions::default());
    assert_eq!(session.pairs().len(), 1, "Q's save/restore pair verified");

    let crit = session
        .last_at_pc(program.label("compute_w").unwrap())
        .expect("w computed")
        .id;
    let pruned = session.slice_with(
        Criterion::Record { id: crit },
        SliceOptions {
            prune_save_restore: true,
            ..SliceOptions::new()
        },
    );
    let unpruned = session.slice_with(
        Criterion::Record { id: crit },
        SliceOptions {
            prune_save_restore: false,
            ..SliceOptions::new()
        },
    );

    let p = pruned.pcs(session.trace());
    let u = unpruned.pcs(session.trace());
    let l = |name: &str| program.label(name).unwrap();

    // Paper's third column: the imprecise slice.
    assert!(u.contains(&l("q_restore")));
    assert!(u.contains(&l("q_save")));
    assert!(u.contains(&l("guard")), "spurious control context");
    assert!(u.contains(&l("read_c")), "spurious input chain");
    // Paper's fourth column: the refined slice.
    assert!(p.contains(&l("set_e")), "true definition kept");
    assert!(!p.contains(&l("q_restore")));
    assert!(!p.contains(&l("q_save")));
    assert!(!p.contains(&l("guard")));
    assert!(!p.contains(&l("read_c")));
    assert!(pruned.len() < unpruned.len());
    assert_eq!(pruned.stats.bypasses, 1);
}

/// The Fig. 8 slice is not just smaller — it is still *correct*: replaying
/// only the pruned slice reproduces the printed value of w.
#[test]
fn fig8_pruned_slice_still_replays_correctly() {
    let program = fig8_save_restore();
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(8),
        &mut LiveEnv::with_inputs(0, [1]),
        10_000,
        "fig8",
    )
    .expect("records");
    let session =
        SliceSession::collect(Arc::clone(&program), &rec.pinball, SlicerOptions::default());
    let crit = session
        .trace()
        .records()
        .iter()
        .filter(|r| matches!(r.instr, minivm::Instr::Print { .. }))
        .max_by_key(|r| r.id)
        .expect("print executed")
        .id;
    let slice = session.slice(Criterion::Record { id: crit });
    let (slice_pb, _, _) = session.make_slice_pinball(&rec.pinball, &slice);
    let mut rep = pinplay::Replayer::new(Arc::clone(&program), &slice_pb);
    rep.run(&mut minivm::NullTool);
    assert_eq!(rep.exec().output(), &[14], "w = 7 + 7 along the slice");
}
