//! Cross-thread execution-slice stepping: the §4 workflow on the Fig. 5
//! race, verifying the stepper walks slice statements of *both* threads in
//! the recorded global order with live, correct state at every stop.

use std::sync::Arc;

use drdebug::{SliceStep, SliceStepper};
use maple::{expose_iroot, ExposeOptions};
use slicer::{Criterion, SliceSession, SlicerOptions};
use workloads::{fig5_exposing_iroot, fig5_race};

#[test]
fn stepper_interleaves_both_threads_in_recorded_order() {
    let program = fig5_race();
    let exposure = expose_iroot(
        &program,
        fig5_exposing_iroot(&program),
        ExposeOptions::default(),
    )
    .expect("fig5 exposable");
    let session = SliceSession::collect(
        Arc::clone(&program),
        &exposure.recording.pinball,
        SlicerOptions::default(),
    );
    let failure = session.failure_record().expect("trace").id;
    let slice = session.slice(Criterion::Record { id: failure });
    let (slice_pb, _, _) = session.make_slice_pinball(&exposure.recording.pinball, &slice);

    let mut stepper = SliceStepper::new(&session, &slice, &slice_pb);
    let mut stops: Vec<(u32, u32, u64)> = Vec::new(); // (tid, pc, record)
    let terminal = loop {
        match stepper.step() {
            SliceStep::AtStatement { tid, pc, record } => stops.push((tid, pc, record)),
            other => break other,
        }
    };
    // The slice replay ends at the reproduced assertion failure.
    assert!(matches!(terminal, SliceStep::Trapped(_)), "{terminal:?}");

    // Both threads' slice statements were visited...
    let tids: std::collections::HashSet<u32> = stops.iter().map(|&(t, _, _)| t).collect();
    assert!(tids.contains(&0) && tids.contains(&1), "stops: {stops:?}");

    // ...in the recorded global order (record ids are retire order).
    let records: Vec<u64> = stops.iter().map(|&(_, _, r)| r).collect();
    let mut sorted = records.clone();
    sorted.sort_unstable();
    assert_eq!(records, sorted, "stops follow the recorded interleaving");

    // Every stop is a slice member; the racing store is among them.
    for &(_, _, r) in &stops {
        assert!(slice.records.contains(&r));
    }
    let racing = program.label("t1_store_x").unwrap();
    assert!(
        stops.iter().any(|&(tid, pc, _)| tid == 1 && pc == racing),
        "the stepper stops at the racing write in the other thread"
    );
}

#[test]
fn stepper_state_is_live_and_consistent_at_each_stop() {
    let program = fig5_race();
    let exposure = expose_iroot(
        &program,
        fig5_exposing_iroot(&program),
        ExposeOptions::default(),
    )
    .expect("fig5 exposable");
    let session = SliceSession::collect(
        Arc::clone(&program),
        &exposure.recording.pinball,
        SlicerOptions::default(),
    );
    let failure = session.failure_record().expect("trace").id;
    let slice = session.slice(Criterion::Record { id: failure });
    let (slice_pb, _, _) = session.make_slice_pinball(&exposure.recording.pinball, &slice);

    // At every stop, the just-retired statement's recorded def values must
    // equal what the live slice-replay state now holds — "examining the
    // values of variables at each point" gives the *recorded* values.
    let mut stepper = SliceStepper::new(&session, &slice, &slice_pb);
    let mut checked = 0;
    while let SliceStep::AtStatement { record, .. } = stepper.step() {
        let rec = session.trace().record(record).expect("record");
        for (key, recorded) in rec.def_keys(false) {
            let live = match key {
                slicer::LocKey::Reg(t, r) => stepper.exec().read_reg(t, r),
                slicer::LocKey::Mem(a) => stepper.exec().read_mem(a),
            };
            assert_eq!(live, recorded, "at {}: {key} diverged", rec.describe());
            checked += 1;
        }
    }
    assert!(checked > 5, "checked {checked} def values");
}
