//! End-to-end DrDebug pipelines for the three Table 1 bug case studies:
//! expose → record region → deterministic replay → slice the failure →
//! generate slice pinball → replay the execution slice. The crash must
//! reproduce at every stage, and the slice must contain the root cause.

use std::sync::Arc;

use drdebug::{DebugSession, StopReason};
use maple::ActiveScheduler;
use minivm::{LiveEnv, NullTool};
use pinplay::{record_region, RecordedExit, ReplayStatus, Replayer};

use workloads::{all_bugs, BugCase};

fn full_pipeline(case: &BugCase) {
    // 1. Expose with the known adverse interleaving.
    let exposure = maple::expose_iroot(
        &case.program,
        case.exposing_iroot(),
        maple::ExposeOptions::default(),
    )
    .unwrap_or_else(|| panic!("{}: exposable", case.name));

    // 2. Record the buggy region (root cause -> failure) under the same
    //    deterministic active scheduler.
    let recording = record_region(
        &case.program,
        &mut ActiveScheduler::new(case.exposing_iroot()),
        &mut LiveEnv::new(0),
        case.buggy_region(),
        10_000_000,
        case.name,
    )
    .unwrap_or_else(|e| panic!("{}: region capture: {e}", case.name));
    let RecordedExit::Trap(error) = recording.pinball.exit else {
        panic!("{}: region must end at the trap", case.name);
    };
    assert_eq!(error, exposure.error, "{}: same failure", case.name);

    // 3. The region replays the crash deterministically, twice.
    for _ in 0..2 {
        let mut rep = Replayer::new(Arc::clone(&case.program), &recording.pinball);
        assert_eq!(
            rep.run(&mut NullTool),
            ReplayStatus::Trapped(error),
            "{}: deterministic reproduction",
            case.name
        );
    }

    // 4. Slice at the failure point; the root cause must be in the slice.
    let mut session = DebugSession::new(Arc::clone(&case.program), recording.pinball.clone());
    assert!(matches!(session.cont(), StopReason::Trapped(_)));
    let slice = session.slice_failure().expect("slice at failure");
    let root_in_slice = {
        let slicer = session.slicer();
        // pbzip2's failure (mutex use-after-free) data-depends on the
        // poison store; mozilla's assert depends on the destroy store;
        // aget's assert depends on the racy updates. All are within the
        // slice's program points.
        let pcs = slice.pcs(slicer.trace());
        pcs.contains(&case.root_pc())
            || case
                .program
                .label("bug_root")
                .is_some_and(|pc| pcs.contains(&pc))
    };
    assert!(root_in_slice, "{}: root cause captured in slice", case.name);

    // 5. Execution slice: the slice pinball must also reproduce the crash
    //    (the failing instruction and its causes are all in the slice).
    let idx = session.save_slice(slice);
    let slice_pb = session.make_slice_pinball(idx);
    assert!(
        slice_pb.logged_instructions() <= recording.pinball.logged_instructions(),
        "{}: slice pinball is no larger than the region",
        case.name
    );
    let mut rep = Replayer::new(Arc::clone(&case.program), &slice_pb);
    assert_eq!(
        rep.run(&mut NullTool),
        ReplayStatus::Trapped(error),
        "{}: the execution slice reproduces the failure",
        case.name
    );
}

#[test]
fn pbzip2_pipeline() {
    full_pipeline(&workloads::pbzip2_like());
}

#[test]
fn aget_pipeline() {
    full_pipeline(&workloads::aget_like());
}

#[test]
fn mozilla_pipeline() {
    full_pipeline(&workloads::mozilla_like());
}

#[test]
fn buggy_regions_are_smaller_than_whole_program() {
    for case in all_bugs() {
        let buggy = record_region(
            &case.program,
            &mut ActiveScheduler::new(case.exposing_iroot()),
            &mut LiveEnv::new(0),
            case.buggy_region(),
            10_000_000,
            case.name,
        )
        .expect("buggy region");
        let whole = record_region(
            &case.program,
            &mut ActiveScheduler::new(case.exposing_iroot()),
            &mut LiveEnv::new(0),
            case.whole_region(),
            10_000_000,
            case.name,
        )
        .expect("whole region");
        assert!(
            buggy.region_instructions < whole.region_instructions,
            "{}: buggy region ({}) must be shorter than whole program ({})",
            case.name,
            buggy.region_instructions,
            whole.region_instructions
        );
    }
}
