//! Top-level re-exports for the DrDebug reproduction workspace: see the
//! member crates (`minivm`, `pinplay`, `slicer`, `maple`, `drdebug`,
//! `workloads`) for the actual functionality; this package hosts the
//! runnable examples and the cross-crate integration tests.

pub use drdebug;
pub use maple;
pub use minivm;
pub use pinplay;
pub use repro_cfg;
pub use slicer;
pub use workloads;
