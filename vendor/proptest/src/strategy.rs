//! Value-generation strategies (the core of the proptest stand-in).

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking; `generate`
/// produces a final value directly from the deterministic per-case RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe strategy handle produced by [`Strategy::boxed`].
pub type BoxedStrategy<V> = Box<dyn DynStrategy<Value = V>>;

/// Object-safe mirror of [`Strategy`] (no generic methods).
pub trait DynStrategy {
    /// The type of value produced.
    type Value;
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.as_ref().generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for the full value range of `T`; see [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let offset = rng.next_u64() % span;
                (self.start as $wide).wrapping_add(offset as $wide) as $t
            }
        }
    )*};
}

range_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Mapped strategy; see [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Wraps the given arms; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Vec-producing strategy; see [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
