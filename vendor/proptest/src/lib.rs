//! Vendored offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace uses: the `proptest!`
//! test macro (with `#![proptest_config(...)]`), `prop_oneof!`,
//! `prop_assert!`/`prop_assert_eq!`, `Just`, `any::<T>()`, integer-range
//! strategies, tuple strategies, `prop_map`, and `collection::vec`.
//!
//! Differences from real proptest, deliberate for an offline build:
//!
//! * **No shrinking.** A failing case reports its deterministic seed
//!   instead of a minimized input. Failures are reproducible because the
//!   per-case RNG seed depends only on the test name and case index.
//! * **No persistence files.** Every run executes the same case set.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `size` and
    /// elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// The usual imports: `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: both sides equal `{:?}`",
            __l
        );
    }};
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests. Each `pat in strategy` argument is drawn
/// freshly per case; the body runs once per case and may use
/// `prop_assert*!` or `return Ok(())`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __runner = $crate::test_runner::TestRunner::new(__config);
                __runner.run(stringify!($name), |__rng| {
                    $(let $pat =
                        $crate::strategy::Strategy::generate(&$strategy, __rng);)+
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __outcome
                });
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in any::<i64>(), b in any::<i64>()) {
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }

        #[test]
        fn ranges_respected(x in 3u8..9, y in -4i8..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..5).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(
            v in crate::collection::vec(0u32..100, 2..6),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn early_return_ok_is_supported(flag in any::<bool>()) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Doc comments and configs are accepted together.
        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u8..10).prop_map(|x| x as i32),
                Just(-1i32),
                (10u8..20).prop_map(|x| i32::from(x) * 2),
            ],
        ) {
            prop_assert!(v == -1 || (0..10).contains(&v) || (20..40).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_seed() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in any::<u64>()) {
                prop_assert!(false, "forced failure for x = {x}");
            }
        }
        always_fails();
    }
}
