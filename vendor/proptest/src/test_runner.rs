//! Deterministic case runner and configuration.

/// Per-test configuration; only `cases` is honoured by the stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case: the message produced by a `prop_assert*!`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given reason.
    pub fn fail(reason: String) -> TestCaseError {
        TestCaseError(reason)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic per-case random source handed to strategies
/// (SplitMix64; independent of the vendored `rand` crate so the two stubs
/// have no coupling).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Drives a property over its configured number of cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with the given configuration.
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner { config }
    }

    /// Runs `property` once per case with a deterministic RNG derived from
    /// the test name and case index, panicking (test failure) on the first
    /// case that returns `Err` or panics.
    ///
    /// # Panics
    ///
    /// Panics with the case's seed and failure message when a case fails,
    /// mirroring how real proptest reports an unshrunk failure.
    pub fn run<F>(&self, name: &str, mut property: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name.as_bytes());
        for case in 0..self.config.cases {
            let seed = base ^ (u64::from(case)).wrapping_mul(0xA076_1D64_78BD_642F);
            let mut rng = TestRng::new(seed);
            if let Err(e) = property(&mut rng) {
                panic!(
                    "proptest case {case}/{total} of `{name}` failed \
                     (deterministic seed {seed:#x}): {e}",
                    total = self.config.cases,
                );
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}
