//! Vendored offline stand-in for `crossbeam`.
//!
//! Provides [`channel`]: multi-producer multi-consumer channels with the
//! `crossbeam-channel` API shape this workspace uses (`bounded`,
//! `unbounded`, blocking `send`/`recv`, `try_recv`, iteration, disconnect
//! semantics on drop). Built on `std::sync::{Mutex, Condvar}` — not
//! lock-free like real crossbeam, but semantically equivalent and fast
//! enough for the replay/slicing pipelines that stream trace records
//! through it.

pub mod channel {
    //! MPMC channels (stand-in for `crossbeam-channel`).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        /// `None` = unbounded. A bound of 0 is treated as a bound of 1
        /// (rendezvous channels are not needed by this workspace).
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Creates a channel buffering at most `cap` messages; `send` blocks
    /// when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    /// Creates a channel with an unbounded buffer; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    pub enum TrySendError<T> {
        /// The channel is bounded and currently full; the message is
        /// handed back.
        Full(T),
        /// Every receiver has been dropped; the message is handed back.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty, but senders remain.
        Empty,
        /// Channel empty and every sender dropped.
        Disconnected,
    }

    /// The sending half of a channel. Clonable (multi-producer).
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Delivers `msg`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message back if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.chan.inner.lock().expect("channel lock");
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                match inner.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.chan.not_full.wait(inner).expect("channel lock");
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Delivers `msg` without blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when a bounded channel has no room;
        /// [`TrySendError::Disconnected`] when every receiver has been
        /// dropped. The message is handed back in both cases.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.chan.inner.lock().expect("channel lock");
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = inner.cap {
                if inner.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.inner.lock().expect("channel lock").senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.chan.inner.lock().expect("channel lock");
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                // Wake receivers blocked on an empty queue so they observe
                // the disconnect.
                self.chan.not_empty.notify_all();
            }
        }
    }

    /// The receiving half of a channel. Clonable (multi-consumer).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Takes the next message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and every sender
        /// has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.chan.inner.lock().expect("channel lock");
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.chan.not_empty.wait(inner).expect("channel lock");
            }
        }

        /// Takes the next message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when no message is ready;
        /// [`TryRecvError::Disconnected`] when no message can ever arrive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.chan.inner.lock().expect("channel lock");
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// A blocking iterator yielding messages until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.inner.lock().expect("channel lock").receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.chan.inner.lock().expect("channel lock");
            inner.receivers -= 1;
            let last = inner.receivers == 0;
            drop(inner);
            if last {
                // Wake senders blocked on a full queue so they observe the
                // disconnect.
                self.chan.not_full.notify_all();
            }
        }
    }

    /// Borrowing message iterator; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn messages_arrive_in_order() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receiver_drops() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_send_blocks_until_recv() {
            let (tx, rx) = bounded::<u32>(2);
            let producer = thread::spawn(move || {
                for i in 0..1000 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.iter().collect();
            producer.join().unwrap();
            assert_eq!(got.len(), 1000);
            assert_eq!(got, (0..1000).collect::<Vec<_>>());
        }

        #[test]
        fn try_recv_reports_state() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(9).unwrap();
            assert_eq!(rx.try_recv(), Ok(9));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn try_send_reports_full_and_disconnect() {
            let (tx, rx) = bounded::<u8>(1);
            assert!(tx.try_send(1).is_ok());
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            assert_eq!(rx.try_recv(), Ok(1));
            assert!(tx.try_send(3).is_ok());
            drop(rx);
            assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
        }

        #[test]
        fn multiple_producers_all_deliver() {
            let (tx, rx) = bounded::<usize>(4);
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        for i in 0..250 {
                            tx.send(t * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            for h in handles {
                h.join().unwrap();
            }
            got.sort_unstable();
            assert_eq!(got.len(), 1000);
        }
    }
}
