//! Vendored offline stand-in for `serde`.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace ships a minimal serde replacement that covers exactly the API
//! surface the repository uses: `#[derive(Serialize, Deserialize)]` on
//! non-generic structs and enums, plus `serde_json::{to_vec, from_slice}`.
//!
//! Instead of serde's generic `Serializer`/`Deserializer` driver traits,
//! this implementation round-trips every value through a JSON-shaped
//! [`Value`] tree. That is slower than real serde but semantically
//! equivalent for this workspace (all serialized artifacts are JSON that is
//! immediately LZSS-compressed by `pinzip`), and it keeps the derive macro
//! trivial: generated code only needs field names, not field types.
//!
//! Encoding conventions match `serde_json`'s defaults so the on-disk
//! artifacts stay conventional:
//!
//! * structs → objects in field declaration order;
//! * newtype structs → the inner value, transparently;
//! * unit enum variants → `"Name"`;
//! * newtype variants → `{"Name": value}`;
//! * tuple variants → `{"Name": [..]}`;
//! * struct variants → `{"Name": {..}}`;
//! * maps → objects with stringified keys (integer keys become strings).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A JSON-shaped value: the intermediate representation every serialized
/// type passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// JSON numbers. `i128` losslessly covers both `i64` and `u64`.
    Int(i128),
    /// JSON strings.
    Str(String),
    /// JSON arrays.
    Seq(Vec<Value>),
    /// JSON objects. Insertion order is preserved so struct serialization
    /// is byte-deterministic (field declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to the JSON-shaped intermediate representation.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self`, reporting shape mismatches as [`DeError`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n).map_err(|_| {
                        DeError(format!("{n} out of range for {}", stringify!($t)))
                    }),
                    other => Err(DeError(format!(
                        "expected integer for {}, got {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

// Sets serialize as arrays. Unlike upstream serde this shim requires
// `Ord` and emits elements in sorted order, so set-bearing types encode
// byte-deterministically (HashSet iteration order is randomized).
impl<T: Serialize + Ord> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Seq(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<std::collections::HashSet<T>, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<std::collections::BTreeSet<T>, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! tuple_impl {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => Ok(($(__seq_elem::<$t>(items, $idx)?,)+)),
                    other => Err(DeError(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )*};
}

tuple_impl! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Map keys: JSON objects require string keys, so integer-keyed maps
/// stringify their keys (matching `serde_json`'s behaviour).
pub trait MapKey: Sized + Ord {
    /// The string form used as the JSON object key.
    fn to_key(&self) -> String;
    /// Parses the string form back.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<String, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! int_key_impl {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<$t, DeError> {
                s.parse().map_err(|_| {
                    DeError(format!("bad {} map key: {s:?}", stringify!($t)))
                })
            }
        }
    )*};
}

int_key_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<K, V>, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError(format!("expected object, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Helpers for derive-generated code
// ---------------------------------------------------------------------------
//
// The derive macro is written without a Rust parser, so the code it emits
// leans on type inference: `__de_field(v, "name")?` picks up the field's
// type from the struct literal it sits in. None of these helpers are part
// of the public API contract; they exist for the macro output only.

/// Extracts and deserializes a named struct field.
pub fn __de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(field) => T::from_value(field).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => Err(DeError(format!("missing field `{name}`"))),
    }
}

/// Like [`__de_field`], but a missing field yields `T::default()`
/// (the `#[serde(default)]` attribute).
pub fn __de_field_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(field) => T::from_value(field).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => Ok(T::default()),
    }
}

/// Extracts and deserializes one element of a tuple payload.
pub fn __seq_elem<T: Deserialize>(items: &[Value], idx: usize) -> Result<T, DeError> {
    match items.get(idx) {
        Some(item) => T::from_value(item),
        None => Err(DeError(format!("missing tuple element {idx}"))),
    }
}

/// Splits an externally tagged enum value into `(variant_name, payload)`.
/// Unit variants are bare strings (no payload); all others are single-entry
/// objects.
pub fn __variant(v: &Value) -> Result<(&str, Option<&Value>), DeError> {
    match v {
        Value::Str(name) => Ok((name, None)),
        Value::Map(entries) if entries.len() == 1 => Ok((&entries[0].0, Some(&entries[0].1))),
        other => Err(DeError(format!("expected enum variant, got {other:?}"))),
    }
}

/// Unwraps the payload of a non-unit variant, failing when the input was a
/// bare variant-name string.
pub fn __payload<'v>(payload: Option<&'v Value>, variant: &str) -> Result<&'v Value, DeError> {
    payload.ok_or_else(|| DeError(format!("variant `{variant}` expects a payload")))
}

/// Interprets a tuple-variant payload as its element array.
pub fn __payload_seq<'v>(
    payload: Option<&'v Value>,
    variant: &str,
) -> Result<&'v [Value], DeError> {
    match __payload(payload, variant)? {
        Value::Seq(items) => Ok(items),
        other => Err(DeError(format!(
            "variant `{variant}` expects a tuple payload, got {other:?}"
        ))),
    }
}

/// Builds the value of a newtype enum variant.
pub fn __ser_variant(name: &str, payload: Value) -> Value {
    Value::Map(vec![(name.to_string(), payload)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_round_trips_preserve_extremes() {
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert_eq!(i64::from_value(&v.to_value()).unwrap(), v);
        }
        for v in [0u64, u64::MAX] {
            assert_eq!(u64::from_value(&v.to_value()).unwrap(), v);
        }
    }

    #[test]
    fn out_of_range_integers_fail() {
        assert!(u8::from_value(&Value::Int(256)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn map_keys_stringify() {
        let mut m = BTreeMap::new();
        m.insert(7u64, 9i64);
        let v = m.to_value();
        assert_eq!(v.get("7"), Some(&Value::Int(9)));
        assert_eq!(BTreeMap::<u64, i64>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn fixed_arrays_round_trip() {
        let a = [1i64, 2, 3];
        let v = a.to_value();
        assert_eq!(<[i64; 3]>::from_value(&v).unwrap(), a);
        assert!(<[i64; 4]>::from_value(&v).is_err());
    }
}
