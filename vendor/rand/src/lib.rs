//! Vendored offline stand-in for `rand` 0.8.
//!
//! Provides the slice of the rand API this workspace uses: seedable
//! [`rngs::StdRng`], [`Rng::gen`], and [`Rng::gen_range`] over integer
//! ranges. The generator is SplitMix64 — statistically solid for test-input
//! generation and scheduling jitter, and fully deterministic from the seed,
//! which is the property the record/replay tests actually depend on.
//!
//! Note the stream differs from real rand's ChaCha-based `StdRng`; nothing
//! in this workspace depends on the specific stream, only on determinism.

use std::ops::Range;

/// Random number generators (mirrors `rand::rngs`).
pub mod rngs {
    /// The standard deterministic generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed }
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniformly random value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range, as real rand does.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn from_rng<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! standard_impl {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_rng<R: Rng>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn from_rng<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable with [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draws a value uniformly from `[range.start, range.end)`.
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! uniform_impl {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(
                    range.start < range.end,
                    "gen_range called with empty range"
                );
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                let offset = rng.next_u64() % span;
                (range.start as $wide).wrapping_add(offset as $wide) as $t
            }
        }
    )*};
}

uniform_impl!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let s: usize = rng.gen_range(0..3);
            assert!(s < 3);
            let i: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn negative_range_spans_work() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_neg = false;
        for _ in 0..200 {
            let v: i8 = rng.gen_range(-4..5);
            assert!((-4..5).contains(&v));
            seen_neg |= v < 0;
        }
        assert!(seen_neg, "range should cover negative values");
    }
}
