//! Vendored offline stand-in for `criterion`.
//!
//! Provides the benchmark-group API surface the `bench` crate uses and
//! performs real wall-clock measurement: each `bench_function` runs a
//! warm-up pass, then `sample_size` timed samples, and prints the median,
//! minimum, and mean sample time (plus throughput when configured). There
//! is no statistical analysis, plotting, or result persistence — the goal
//! is honest comparative numbers from `cargo bench` in an offline build.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into().0, sample_size, None, f);
        self
    }
}

/// A named set of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how much work one iteration performs, enabling a
    /// per-second rate in the output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures `f`, labelled by `id`, within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Measures `f` with a borrowed input, labelled by `id`, within this
    /// group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility; prints nothing).
    pub fn finish(self) {}
}

/// A benchmark label, optionally parameterized (`name/param`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A label of the form `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Units of work per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Times the closure handed to it; provided to `bench_function` callbacks.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` once, timing it. Called once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed = start.elapsed();
        drop(black_box(out));
    }
}

/// True when the harness was invoked as `cargo bench -- --test`: run each
/// benchmark once to prove it executes, skipping warm-up and sampling.
/// Mirrors upstream criterion's smoke-test mode, which CI uses to keep
/// benches compiling and running without paying for full measurement.
fn smoke_test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_benchmark<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
    };
    if smoke_test_mode() {
        f(&mut bencher);
        println!("{label:<50} smoke-tested (1 iteration, --test mode)");
        return;
    }
    // Warm-up: one untimed run.
    f(&mut bencher);

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        samples.push(bencher.elapsed);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;

    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            let mbps = n as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
            format!("  {mbps:.1} MiB/s")
        }
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            let eps = n as f64 / median.as_secs_f64();
            format!("  {eps:.0} elem/s")
        }
        _ => String::new(),
    };
    println!("{label:<50} median {median:>12?}  min {min:>12?}  mean {mean:>12?}{rate}");
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::new("sum", 64), |b| {
            runs += 1;
            b.iter(|| (0..64u64).sum::<u64>())
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
