//! Vendored offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses — non-generic structs (named, tuple,
//! unit) and enums whose variants are unit, tuple, or struct shaped — plus
//! the `#[serde(default)]` field attribute.
//!
//! The registry-less build environment rules out `syn`/`quote`, so the item
//! is parsed directly from its `proc_macro::TokenStream`. That is feasible
//! because the generated code never needs field *types*: the companion
//! `serde` crate's helper functions (`__de_field`, `__seq_elem`, ...) let
//! type inference recover them from the surrounding struct/variant literal.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored trait) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the vendored trait) for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// `struct S { .. }`
    Struct(Vec<Field>),
    /// `struct S(T, ..);` — arity recorded; a 1-tuple is a newtype.
    Tuple(usize),
    /// `struct S;`
    Unit,
    /// `enum E { .. }`
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `#[serde(default)]` was present on the field.
    default: bool,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

/// A cursor over a flat token-tree list.
struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Consumes a `#[...]` attribute if one is next, returning its bracket
    /// group's textual content (e.g. `serde ( default )`).
    fn eat_attribute(&mut self) -> Option<String> {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == '#' {
                self.next();
                match self.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        return Some(g.stream().to_string());
                    }
                    other => panic!("malformed attribute after `#`: {other:?}"),
                }
            }
        }
        None
    }

    /// Consumes `pub`, `pub(...)`, or nothing.
    fn eat_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected {what}, got {other:?}"),
        }
    }

    /// Skips tokens (a type, a discriminant expression, ...) until a `,` at
    /// top level, tracking `<`/`>` nesting because generic-argument commas
    /// are not field separators. Consumes the comma. Delimited groups are
    /// single trees, so their inner commas are naturally invisible here.
    fn skip_until_comma(&mut self) {
        let mut angle: i32 = 0;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    while c.eat_attribute().is_some() {}
    c.eat_visibility();
    let keyword = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("item name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic type `{name}`");
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("expected `struct` or `enum`, got `{other}`"),
    };
    Item { name, kind }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    while !c.at_end() {
        let mut default = false;
        while let Some(attr) = c.eat_attribute() {
            // The bracket content is `serde(default)` (token-spaced); strip
            // whitespace so the check is formatting-independent.
            let flat: String = attr.chars().filter(|ch| !ch.is_whitespace()).collect();
            if flat.starts_with("serde(") && flat.contains("default") {
                default = true;
            }
        }
        c.eat_visibility();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        c.skip_until_comma();
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    if c.at_end() {
        return 0;
    }
    let mut count = 0;
    while !c.at_end() {
        while c.eat_attribute().is_some() {}
        c.eat_visibility();
        if c.at_end() {
            break; // trailing comma
        }
        c.skip_until_comma();
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    while !c.at_end() {
        while c.eat_attribute().is_some() {}
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name");
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                Shape::Struct(fields)
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        c.skip_until_comma();
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
        }
        Kind::Unit => format!("::serde::Value::Str(\"{name}\".to_string())"),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| gen_serialize_arm(name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_serialize_arm(enum_name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.shape {
        Shape::Unit => format!("{enum_name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"),
        Shape::Tuple(1) => format!(
            "{enum_name}::{vn}(__f0) => ::serde::__ser_variant(\"{vn}\", \
             ::serde::Serialize::to_value(__f0)),"
        ),
        Shape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let elems: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{enum_name}::{vn}({binds}) => ::serde::__ser_variant(\"{vn}\", \
                 ::serde::Value::Seq(vec![{elems}])),",
                binds = binds.join(", "),
                elems = elems.join(", ")
            )
        }
        Shape::Struct(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vn} {{ {binds} }} => ::serde::__ser_variant(\"{vn}\", \
                 ::serde::Value::Map(vec![{entries}])),",
                binds = binds.join(", "),
                entries = entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits: Vec<String> = fields.iter().map(gen_field_init).collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__seq_elem(__items, {i})?"))
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Seq(__items) => \
                 ::std::result::Result::Ok({name}({elems})),\n\
                 __other => ::std::result::Result::Err(::serde::DeError(format!(\
                 \"expected tuple for {name}, got {{__other:?}}\"))),\n\
                 }}",
                elems = elems.join(", ")
            )
        }
        Kind::Unit => format!(
            "match __v {{\n\
             ::serde::Value::Str(__s) if __s == \"{name}\" => \
             ::std::result::Result::Ok({name}),\n\
             __other => ::std::result::Result::Err(::serde::DeError(format!(\
             \"expected \\\"{name}\\\", got {{__other:?}}\"))),\n\
             }}"
        ),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| gen_deserialize_arm(name, v))
                .collect();
            format!(
                "let (__variant, __payload) = ::serde::__variant(__v)?;\n\
                 match __variant {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(::serde::DeError(format!(\
                 \"unknown {name} variant `{{__other}}`\"))),\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<{name}, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_field_init(f: &Field) -> String {
    if f.default {
        format!(
            "{n}: ::serde::__de_field_default(__v, \"{n}\")?",
            n = f.name
        )
    } else {
        format!("{n}: ::serde::__de_field(__v, \"{n}\")?", n = f.name)
    }
}

fn gen_deserialize_arm(enum_name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.shape {
        Shape::Unit => format!("\"{vn}\" => ::std::result::Result::Ok({enum_name}::{vn}),"),
        Shape::Tuple(1) => format!(
            "\"{vn}\" => ::std::result::Result::Ok({enum_name}::{vn}(\
             ::serde::Deserialize::from_value(::serde::__payload(__payload, \"{vn}\")?)?)),"
        ),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__seq_elem(__items, {i})?"))
                .collect();
            format!(
                "\"{vn}\" => {{ let __items = ::serde::__payload_seq(__payload, \"{vn}\")?; \
                 ::std::result::Result::Ok({enum_name}::{vn}({elems})) }}",
                elems = elems.join(", ")
            )
        }
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let base = gen_field_init(f);
                    base.replace("(__v,", "(__fields,")
                })
                .collect();
            format!(
                "\"{vn}\" => {{ let __fields = ::serde::__payload(__payload, \"{vn}\")?; \
                 ::std::result::Result::Ok({enum_name}::{vn} {{ {inits} }}) }}",
                inits = inits.join(", ")
            )
        }
    }
}
