//! Vendored offline stand-in for `serde_json`.
//!
//! Serializes the vendored `serde` crate's [`serde::Value`] tree to compact
//! JSON text and parses it back. Only what the workspace uses is provided:
//! [`to_vec`], [`to_string`], [`from_slice`], and [`from_str`]. Numbers are
//! integers (`i128` internally, covering the full `i64`/`u64` ranges used
//! by pinballs and slice files); floats are not produced by any serialized
//! type in this workspace and are rejected on input.
//!
//! Output is byte-deterministic: objects preserve insertion order (struct
//! field declaration order, sorted map keys), with no whitespace — the
//! property the slicer's differential tests rely on when comparing
//! serialized `SliceFile`s.

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON bytes.
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces; the `Result`
/// mirrors the real `serde_json` signature.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(|e| Error(e.0))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found `{:?}`",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected input at byte {}: {:?}",
                self.pos,
                other.map(|c| c as char)
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(Error(format!(
                "float at byte {start}: this workspace serializes integers only"
            )));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|e| Error(format!("bad number `{text}`: {e}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error(format!("bad \\u escape `{hex}`")))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("bad codepoint {code}")))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|c| c as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` in array, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` in object, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let bytes = to_vec(&(-42i64)).unwrap();
        assert_eq!(bytes, b"-42");
        assert_eq!(from_slice::<i64>(&bytes).unwrap(), -42);
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "a \"quoted\"\nline\twith \\ and unicode: ∞".to_string();
        let bytes = to_vec(&s).unwrap();
        assert_eq!(from_slice::<String>(&bytes).unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, -5i64), (2, 7)];
        let bytes = to_vec(&v).unwrap();
        assert_eq!(bytes, b"[[1,-5],[2,7]]");
        assert_eq!(from_slice::<Vec<(u64, i64)>>(&bytes).unwrap(), v);
    }

    #[test]
    fn whitespace_tolerated_on_input() {
        let v: Vec<i64> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<i64>("1.5").is_err());
        assert!(from_str::<Vec<i64>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<i64>("1 2").is_err());
    }
}
